"""Lazy, deterministic world model behind the paper-scale ecosystem scan.

:func:`~repro.ecosystem.internet.build_internet` materializes every wild
domain, registry zone, and SMTP host up front — fine for a ~300-target
world, hopeless for the paper's Alexa top one million.  This module holds
the *law* of that world in a form that can be evaluated per ``(seed,
rank)`` on demand:

* the ranked target list is derived per rank (the study's email targets
  first, then pronounceable filler domains derived in seed-keyed chunks);
* each rank's DL-1 candidate grid gets its registration draw from a
  rank-keyed counter-based stream, with the squatter quality law (edit
  type, fat-finger, visual distance) evaluated only where it can matter —
  candidate *strings* are only built for the few that register;
* registered candidates draw owner, support, MX, DNS, and WHOIS state
  from a rank-keyed uniform stream, and the zmap-style probe observation
  from another.

Every stream is a pure function of ``(seed, purpose, rank)``: uniforms
come from a Philox counter-based generator whose key is
``derive_seed(seed, purpose)`` and whose 256-bit counter starts at
``[0, 0, 0, rank]``.  Counter-based streams make the derivation
*shard-independent* — any partition of the rank space produces identical
per-rank results, which is the property the sharded scanner's digest
tests pin down — and repositioning one reused bit generator costs ~2us
where constructing a fresh ``default_rng`` per rank costs ~16us.
``build_internet`` is a materializer of this same law, so a lazily
scanned world and an eagerly built one agree on ground truth.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.targets import EMAIL_TARGETS
from repro.core.typogen import (
    DOMAIN_ALPHABET,
    TypoCandidate,
    registrable_domain,
    split_domain,
)
from repro.core.distances import (
    char_visual_cost,
    fat_finger_for_edit,
    visual_distance_for_edit,
)
from repro.core.keyboard import qwerty_adjacency
from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.internet import (
    _CESSPOOL_NAMESERVERS,
    _NORMAL_NAMESERVERS,
    _PRONOUNCEABLE_ONSETS,
    _PRONOUNCEABLE_VOWELS,
    _RESELLER_SUPPORT_MIX,
    AlexaEntry,
    InternetConfig,
    OwnerType,
    SQUATTER_MX_POOL,
    SmtpSupport,
)
from repro.ecosystem.whois import PRIVACY_PROXIES, RegistrantPersona, make_registrant
from repro.util.perf import PerfRegistry
from repro.util.rand import SeededRng, derive_seed

__all__ = ["DomainState", "WorldModel", "PARKED_MX_HOSTS", "WEB_MX_HOSTS"]

#: The dark mail hosts bulk squatters park non-mail inventory on, matching
#: the hosts ``build_internet`` materializes.
PARKED_MX_HOSTS: Tuple[str, ...] = tuple(
    f"parked-mx-{i}.example" for i in range(3))
WEB_MX_HOSTS: Tuple[str, ...] = tuple(
    f"web-mx-{i}.example" for i in range(3))

_EDIT_TYPE_QUALITY = {
    "deletion": 6.0,
    "transposition": 5.0,
    "substitution": 1.0,
    "addition": 0.45,
}

#: owner classes by the small integer code the hot path switches on
_OWNER_BY_CODE: Tuple[OwnerType, ...] = (
    OwnerType.DEFENSIVE, OwnerType.LEGITIMATE, OwnerType.BULK_SQUATTER,
    OwnerType.MEDIUM_SQUATTER, OwnerType.SMALL_SQUATTER)
_OWNER_VALUE_BY_CODE: Tuple[str, ...] = tuple(
    owner.value for owner in _OWNER_BY_CODE)
_SUPPORT_VALUE: Dict[SmtpSupport, str] = {s: s.value for s in SmtpSupport}

#: SMTP support by the small integer code the hot path switches on —
#: records carry codes so the streaming fold never hashes an enum
_SUPPORT_BY_CODE: Tuple[SmtpSupport, ...] = (
    SmtpSupport.NO_DNS, SmtpSupport.NO_INFO, SmtpSupport.NO_EMAIL,
    SmtpSupport.PLAIN, SmtpSupport.STARTTLS_ERRORS, SmtpSupport.STARTTLS_OK)
_SUPPORT_CODE: Dict[SmtpSupport, int] = {
    s: i for i, s in enumerate(_SUPPORT_BY_CODE)}
_SUPPORT_VALUE_BY_CODE: Tuple[str, ...] = tuple(
    s.value for s in _SUPPORT_BY_CODE)


@dataclass(frozen=True)
class DomainState:
    """Ground truth about one registered ctypo, derived — not stored.

    Carries everything ``build_internet`` needs to materialize the domain
    (zone records, SMTP server flags, WHOIS record) and everything the
    streaming scanner needs to emulate the probe.
    """

    domain: str
    target: str
    rank: int
    edit_op: str
    edit_index: int
    edit_char: str
    owner_id: str
    owner_type: OwnerType
    profile: str                    # "collector" | "reseller" | ""
    support: SmtpSupport            # ground truth (Table 4 category)
    mx_domain: Optional[str]        # explicit MX host, None => A-record only
    has_address: bool               # domain itself carries an A record
    nameserver: str
    private_whois: bool
    privacy_proxy: Optional[str]
    whois_fields_filled: int
    #: small-squatter / legitimate recipient policy: "catch_all",
    #: "reject_unknown", "domain", or None when no listener exists
    longtail_policy: Optional[str]

    @property
    def is_squatting(self) -> bool:
        return self.owner_type in (OwnerType.BULK_SQUATTER,
                                   OwnerType.MEDIUM_SQUATTER,
                                   OwnerType.SMALL_SQUATTER)

    @property
    def is_bulk(self) -> bool:
        return self.owner_type in (OwnerType.BULK_SQUATTER,
                                   OwnerType.MEDIUM_SQUATTER)

    def candidate(self) -> TypoCandidate:
        """The generator-equivalent :class:`TypoCandidate` for this ctypo."""
        label, _ = split_domain(self.target)
        return TypoCandidate(
            domain=self.domain, target=self.target, edit_type=self.edit_op,
            edit_index=self.edit_index,
            fat_finger=fat_finger_for_edit(label, self.edit_op,
                                           self.edit_index, self.edit_char),
            visual=visual_distance_for_edit(label, self.edit_op,
                                            self.edit_index, self.edit_char))


# -- rank-keyed uniform streams ------------------------------------------------


def _rank_uniforms(seed: int, purpose: str, rank: int,
                   count: int) -> np.ndarray:
    """The canonical uniform stream of ``(seed, purpose, rank)``.

    One-shot reference form of the law; :class:`_RankKeyedStream` produces
    byte-identical output by repositioning a reused bit generator.
    """
    bitgen = np.random.Philox(key=derive_seed(seed, purpose),
                              counter=[0, 0, 0, rank])
    return np.random.Generator(bitgen).random(count)


class _RankKeyedStream:
    """A reusable Philox generator repositioned to ``counter=[0,0,0,rank]``.

    Philox is counter-based: output is a pure function of (key, counter),
    so seeking is exact and O(1).  Drawing advances the low counter word,
    leaving rank streams (separated in the high word) disjoint for 2**192
    blocks.  Resetting state on a live bit generator avoids the ~16us
    construction cost of a fresh Generator per rank.
    """

    __slots__ = ("_bitgen", "_gen", "_state", "_counter", "_buffers")

    def __init__(self, seed: int, purpose: str) -> None:
        self._bitgen = np.random.Philox(key=derive_seed(seed, purpose))
        self._gen = np.random.Generator(self._bitgen)
        self._state = self._bitgen.state
        self._counter = self._state["state"]["counter"]
        self._buffers: Dict[int, np.ndarray] = {}

    def uniforms(self, rank: int, count: int) -> np.ndarray:
        """The rank's stream prefix.  The returned array is a reused
        scratch buffer: consume it before the next ``uniforms`` call."""
        buf = self._buffers.get(count)
        if buf is None:
            buf = np.empty(count)
            self._buffers[count] = buf
        return self.uniforms_into(rank, buf)

    def uniforms_into(self, rank: int, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` (contiguous float64) with the rank's stream prefix.

        Byte-identical to :meth:`uniforms` of the same length; the
        caller-owned destination lets the feature sweep draw many ranks
        into one matrix and preselect with a single vector compare."""
        counter = self._counter
        counter[0] = 0
        counter[1] = 0
        counter[2] = 0
        counter[3] = rank
        self._state["buffer_pos"] = 4
        self._state["has_uint32"] = 0
        self._bitgen.state = self._state
        return self._gen.random(out=out)


# -- vectorised registration grid ---------------------------------------------
#
# The raw DL-1 grid of a label of length L is laid out flat as
#   [ deletions: L ][ transpositions: L-1 ][ substitutions: L*A ][ additions: (L+1)*A ]
# position-major with the alphabet innermost — exactly the order
# ``enumerate_edit_ops`` walks.  Validity/dedup masks reproduce its skip
# rules, so ``valid.sum()`` equals the generator's candidate count, and a
# flat index decodes back to ``(op, index, char)`` arithmetically.  The
# registration uniforms are drawn over the *raw* grid (invalid slots
# included), which makes the stream independent of the masks' consumers.

_ALPHA_SIZE = len(DOMAIN_ALPHABET)
_ALPHA_CODES = np.frombuffer(DOMAIN_ALPHABET.encode("ascii"), dtype=np.uint8)
_ALPHA_CODE_LIST = [ord(c) for c in DOMAIN_ALPHABET]
_HYPHEN = ord("-")
_HYPHEN_IDX = DOMAIN_ALPHABET.index("-")

#: the quality law's per-section maxima: base * fat-finger * qf <= base*1.6*1.5
_QUALITY_MAX = 6.0 * 1.6 * 1.5

_ADJ37: Optional[np.ndarray] = None
_COST37: Optional[np.ndarray] = None
_ADJ_LIST: Optional[list] = None
_COST_LIST: Optional[list] = None


def _char_tables() -> Tuple[np.ndarray, np.ndarray]:
    """(adjacency, visual-cost) matrices over the domain alphabet."""
    global _ADJ37, _COST37, _ADJ_LIST, _COST_LIST
    if _ADJ37 is None:
        adj = np.zeros((_ALPHA_SIZE, _ALPHA_SIZE), dtype=bool)
        cost = np.zeros((_ALPHA_SIZE, _ALPHA_SIZE), dtype=np.float64)
        for i, a in enumerate(DOMAIN_ALPHABET):
            neighbours = qwerty_adjacency(a)
            for j, b in enumerate(DOMAIN_ALPHABET):
                adj[i, j] = b in neighbours
                cost[i, j] = char_visual_cost(a, b)
        _ADJ37, _COST37 = adj, cost
        _ADJ_LIST, _COST_LIST = adj.tolist(), cost.tolist()
    return _ADJ37, _COST37


_CODE2IDX = np.full(128, -1, dtype=np.int64)
for _i, _c in enumerate(DOMAIN_ALPHABET):
    _CODE2IDX[ord(_c)] = _i
_CODE2IDX_LIST = _CODE2IDX.tolist()

#: per-alphabet-index character classes, for the feature sweep's
#: delta-computed lexical stats
_IDX_IS_DIGIT = [c.isdigit() for c in DOMAIN_ALPHABET]
_IDX_IS_VOWEL = [c in "aeiou" for c in DOMAIN_ALPHABET]
_IDX_IS_HYPHEN = [c == "-" for c in DOMAIN_ALPHABET]

# -- packed feature-row layout -------------------------------------------------
#
# ``WorldModel.featurize_ranks`` emits one (packed int, visual float) pair
# per wild registered ctypo; everything else a feature row needs is either
# inside the packed word or shared per rank.  Bit layout (LSB up):
#
#   op:2  index:6  char:6  digits:6  hyphens:6  vowels:6  mx:3  addr:1
#   ns:2  private:1  fields:3  policy:2  support:3  squat:1  adjacent:1
#
# 49 bits total — comfortably inside an int64, so a whole block converts
# to numpy with one ``np.array`` call and unpacks with vector shifts.
# Decoders live in :mod:`repro.features.domains`; the op codes are
# 0 deletion, 1 transposition, 2 substitution, 3 addition, the mx codes
# 0 none, 1 parked, 2 web, 3 pool, 4 self, 5 mx.<target>, and the ns
# codes 0 cesspool, 1 normal, 2 ns.<target>.

FEATURE_PACK_SHIFTS = {
    "op": 0, "index": 2, "char": 8, "digits": 14, "hyphens": 20,
    "vowels": 26, "mx": 32, "addr": 35, "ns": 36, "private": 38,
    "fields": 39, "policy": 42, "support": 44, "squat": 47,
    "adjacent": 48,
}

#: ranks per batched registration draw in the feature sweep — large
#: enough to amortize the per-slab numpy dispatch, small enough that the
#: draw matrix stays a few MB
_FEATURE_BATCH = 256

#: sentinel marking a rank whose registration draw needs the dense path
_DENSE = ("dense",)


def _position_weights(length: int) -> np.ndarray:
    """``position_weight(i, length)`` for i in 0..length (vectorised)."""
    out = np.empty(length + 1, dtype=np.float64)
    if length <= 1:
        out[:] = 1.0
        return out
    rel = np.arange(length + 1, dtype=np.float64) / (length - 1)
    out[:] = 0.85 + 0.3 * np.abs(rel - 0.5)
    out[0] = 1.3
    out[length - 1:] = 1.15
    return out


_POSW_CACHE: Dict[int, list] = {}


def _position_weight_list(length: int) -> list:
    posw = _POSW_CACHE.get(length)
    if posw is None:
        posw = _position_weights(length).tolist()
        _POSW_CACHE[length] = posw
    return posw


def _sections(length: int) -> Tuple[int, int, int, int]:
    return (length, max(0, length - 1), length * _ALPHA_SIZE,
            (length + 1) * _ALPHA_SIZE)


def _grid_total(length: int) -> int:
    n_del, n_trans, n_sub, n_add = _sections(length)
    return n_del + n_trans + n_sub + n_add


_SECTION_UPPER_CACHE: Dict[int, np.ndarray] = {}


def _section_upper(length: int) -> np.ndarray:
    """Per-slot quality upper bound (by section), for sparse preselection."""
    upper = _SECTION_UPPER_CACHE.get(length)
    if upper is None:
        n_del, n_trans, n_sub, n_add = _sections(length)
        upper = np.concatenate([
            np.full(n_del, 6.0 * 1.6 * 1.5),
            np.full(n_trans, 5.0 * 1.6 * 1.5),
            np.full(n_sub, 1.6 * 1.5),
            np.full(n_add, 0.45 * 1.6 * 1.5),
        ])
        _SECTION_UPPER_CACHE[length] = upper
    return upper


@dataclass(frozen=True)
class RankGrid:
    """The registration draw of one rank's raw DL-1 edit grid."""

    label: str
    generated: int               # valid (deduped) gtypos in the grid
    registered: np.ndarray       # flat raw-grid indices that registered
    section_sizes: Tuple[int, int, int, int]

    def decode(self, flat: int) -> Tuple[str, int, str]:
        """Flat raw-grid index -> ``(op, index, char)``."""
        n_del, n_trans, n_sub, _ = self.section_sizes
        if flat < n_del:
            return "deletion", flat, ""
        flat -= n_del
        if flat < n_trans:
            return "transposition", flat, ""
        flat -= n_trans
        if flat < n_sub:
            return ("substitution", flat // _ALPHA_SIZE,
                    DOMAIN_ALPHABET[flat % _ALPHA_SIZE])
        flat -= n_sub
        return ("addition", flat // _ALPHA_SIZE,
                DOMAIN_ALPHABET[flat % _ALPHA_SIZE])


def _grid_masks(label: str) -> Tuple[np.ndarray, np.ndarray,
                                     Tuple[int, int, int, int]]:
    """(valid mask, quality, section sizes) over the raw DL-1 grid.

    ``valid`` reproduces :func:`enumerate_edit_ops`' dedup/validity rules
    slot for slot (a property the parity tests pin down); ``quality`` is
    the squatter preference law of ``internet._typo_quality`` evaluated
    for every slot.
    """
    codes = np.frombuffer(label.encode("ascii"), dtype=np.uint8)
    idx = _CODE2IDX[codes]
    if np.any(idx < 0):
        raise ValueError(f"label {label!r} has characters outside the "
                         "domain alphabet")
    length = len(label)
    adj, cost = _char_tables()
    posw = _position_weights(length)
    inv_len = 3.0 / max(1, length)

    def quality_factor(vis: np.ndarray) -> np.ndarray:
        return np.maximum(0.2, 1.5 - vis * inv_len)

    # deletions --------------------------------------------------------------
    del_valid = np.zeros(length, dtype=bool)
    if 2 <= length <= 64:
        del_valid[:] = True
        del_valid[1:] = codes[1:] != codes[:-1]
        if codes[1] == _HYPHEN:
            del_valid[0] = False
        if codes[length - 2] == _HYPHEN:
            del_valid[length - 1] = False
    doubled = np.zeros(length, dtype=bool)
    doubled[:-1] |= codes[:-1] == codes[1:]
    doubled[1:] |= codes[1:] == codes[:-1]
    del_vis = np.where(doubled, 0.3, 0.9) * posw[:length]
    del_q = 6.0 * 1.6 * quality_factor(del_vis)

    # transpositions ---------------------------------------------------------
    n_trans = max(0, length - 1)
    trans_valid = np.zeros(n_trans, dtype=bool)
    if n_trans and length <= 63:
        trans_valid[:] = codes[:-1] != codes[1:]
        if codes[1] == _HYPHEN:
            trans_valid[0] = False
        if codes[length - 2] == _HYPHEN:
            trans_valid[n_trans - 1] = False
    trans_q = 5.0 * 1.6 * quality_factor(0.5 * posw[:n_trans])

    # substitutions (position-major, alphabet innermost) ---------------------
    same_char = _ALPHA_CODES[None, :] == codes[:, None]        # (L, A)
    sub_valid = ~same_char
    if length > 63:
        sub_valid[:] = False
    else:
        hyphen_col = _ALPHA_CODES == _HYPHEN
        sub_valid[0, hyphen_col] = False
        sub_valid[length - 1, hyphen_col] = False
    sub_adj = adj[idx]                                          # (L, A)
    sub_vis = cost[idx] * posw[:length, None]
    sub_q = np.where(sub_adj, 1.6, 1.0) * quality_factor(sub_vis)

    # additions --------------------------------------------------------------
    prev_eq = np.zeros((length + 1, _ALPHA_SIZE), dtype=bool)
    prev_eq[1:] = same_char
    next_eq = np.zeros((length + 1, _ALPHA_SIZE), dtype=bool)
    next_eq[:length] = same_char
    prev_adj = np.zeros((length + 1, _ALPHA_SIZE), dtype=bool)
    prev_adj[1:] = sub_adj
    next_adj = np.zeros((length + 1, _ALPHA_SIZE), dtype=bool)
    next_adj[:length] = sub_adj
    add_ff1 = prev_eq | prev_adj | next_eq | next_adj
    add_doubles = prev_eq | next_eq
    add_valid = ~prev_eq                       # run dedup: same as earlier slot
    if length + 1 > 63:
        add_valid[:] = False
    else:
        hyphen_col = _ALPHA_CODES == _HYPHEN
        add_valid[0, hyphen_col] = False
        add_valid[length, hyphen_col] = False
    add_vis = np.where(add_doubles, 0.3, 1.0) * posw[:, None]
    add_q = (0.45 * np.where(add_ff1, 1.6, 1.0) * quality_factor(add_vis))

    quality = np.concatenate([del_q, trans_q, sub_q.ravel(), add_q.ravel()])
    valid = np.concatenate([del_valid, trans_valid, sub_valid.ravel(),
                            add_valid.ravel()])
    return valid, quality, _sections(length)


def _generated_count(label: str) -> int:
    """``len(enumerate_edit_ops(label))`` in O(L), no grid materialized.

    Mirrors the generator's validity/dedup rules section by section; the
    parity tests pin it against the enumerator and against
    ``_grid_masks(label)[0].sum()``.
    """
    length = len(label)
    c = label
    if 2 <= length <= 62 and "-" not in c:
        # hyphen-free closed form: only the adjacent-duplicate dedup
        # bites, once in the deletion section and once in transpositions
        dups = 0
        prev = c[0]
        for ch in c[1:]:
            if ch == prev:
                dups += 1
            prev = ch
        return 74 * length + 32 - 2 * dups
    total = 0
    if 2 <= length <= 64:                       # deletions
        for i in range(length):
            if i > 0 and c[i] == c[i - 1]:
                continue
            if i == 0 and c[1] == "-":
                continue
            if i == length - 1 and c[length - 2] == "-":
                continue
            total += 1
    if 2 <= length <= 63:                       # transpositions
        n_trans = length - 1
        for i in range(n_trans):
            if c[i] == c[i + 1]:
                continue
            if i == 0 and c[1] == "-":
                continue
            if i == n_trans - 1 and c[length - 2] == "-":
                continue
            total += 1
    if length <= 63:                            # substitutions
        for i in range(length):
            slots = _ALPHA_SIZE - 1             # minus the original char
            if (i == 0 or i == length - 1) and c[i] != "-":
                slots -= 1                      # boundary hyphen
            total += slots
    if length + 1 <= 63:                        # additions
        for i in range(length + 1):
            slots = _ALPHA_SIZE
            if i >= 1:
                slots -= 1                      # run dedup vs previous char
            if i == 0:
                slots -= 1                      # leading hyphen
            elif i == length and c[length - 1] != "-":
                slots -= 1                      # trailing hyphen
            total += slots
    return total


#: per-length (threshold, hit-mask) scratch pair for the sparse preselect
_PRESELECT_SCRATCH: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _grid_draw(label: str, reg_p: float,
               uniforms: np.ndarray) -> Tuple[int, List[int]]:
    """(generated count, registered flat indices) of one rank's raw grid."""
    return _generated_count(label), _registered_flats(label, reg_p, uniforms)


def _registered_flats(label: str, reg_p: float,
                      uniforms: np.ndarray) -> List[int]:
    """The registered flat indices of one rank's raw grid.

    Dense regime (the 0.95 probability cap can bind): evaluate the full
    validity/quality masks.  Sparse regime (every slot's probability is
    below the cap): preselect ``u < reg_p * section_max`` — a strict
    superset of the registrations — then confirm the few survivors with
    the scalar law.  Both paths compute the identical registered set; the
    parity tests pin that.  Split from :func:`_grid_draw` so the chunked
    scan loop can pair it with precomputed generated counts.
    """
    length = len(label)
    if reg_p * _QUALITY_MAX >= 0.95:
        valid, quality, _ = _grid_masks(label)
        probability = np.minimum(0.95, reg_p * quality)
        return np.nonzero(valid & (uniforms < probability))[0].tolist()

    scratch = _PRESELECT_SCRATCH.get(length)
    if scratch is None:
        total = _grid_total(length)
        scratch = (np.empty(total), np.empty(total, dtype=bool))
        _PRESELECT_SCRATCH[length] = scratch
    thresh, hits = scratch
    np.multiply(_section_upper(length), reg_p, out=thresh)
    np.less(uniforms, thresh, out=hits)
    cand_arr = hits.nonzero()[0]
    if not cand_arr.size:
        return []
    return _confirm_flats(label, reg_p, cand_arr.tolist(),
                          uniforms[cand_arr].tolist())


def _confirm_flats(label: str, reg_p: float, cand_flats: List[int],
                   uvals: List[float]) -> List[int]:
    """Confirm preselected raw-grid slots with the scalar quality law.

    ``cand_flats`` must be a superset of the registrations produced by
    any bound of the form ``u < reg_p * upper`` with per-section
    ``upper >= quality``; the scalar law then keeps exactly the slots the
    dense path would.  Split out of :func:`_registered_flats` so the
    feature sweep's batched (multi-rank) preselect shares the confirm
    step verbatim.
    """
    length = len(label)
    registered: List[int] = []
    if cand_flats:
        _char_tables()
        adj, cost = _ADJ_LIST, _COST_LIST
        codes = label.encode("ascii")
        idx = [_CODE2IDX_LIST[b] for b in codes]
        if min(idx) < 0:
            raise ValueError(f"label {label!r} has characters outside the "
                             "domain alphabet")
        posw = _position_weight_list(length)
        inv_len = 3.0 / max(1, length)
        n_del = length
        n_trans = length - 1 if length > 1 else 0
        sub_base = n_del + n_trans
        add_base = sub_base + length * _ALPHA_SIZE
        for flat, u in zip(cand_flats, uvals):
            if flat < n_del:
                i = flat
                if length < 2 or length > 64:
                    continue
                if i > 0 and codes[i] == codes[i - 1]:
                    continue
                if i == 0 and codes[1] == _HYPHEN:
                    continue
                if i == length - 1 and codes[length - 2] == _HYPHEN:
                    continue
                doubled = ((i < length - 1 and codes[i] == codes[i + 1])
                           or (i > 0 and codes[i] == codes[i - 1]))
                vis = (0.3 if doubled else 0.9) * posw[i]
                q = 6.0 * 1.6 * max(0.2, 1.5 - vis * inv_len)
            elif flat < sub_base:
                i = flat - n_del
                if length > 63:
                    continue
                if codes[i] == codes[i + 1]:
                    continue
                if i == 0 and codes[1] == _HYPHEN:
                    continue
                if i == n_trans - 1 and codes[length - 2] == _HYPHEN:
                    continue
                q = 5.0 * 1.6 * max(0.2, 1.5 - (0.5 * posw[i]) * inv_len)
            elif flat < add_base:
                rem = flat - sub_base
                i, a = divmod(rem, _ALPHA_SIZE)
                if length > 63:
                    continue
                ch = _ALPHA_CODE_LIST[a]
                if ch == codes[i]:
                    continue
                if a == _HYPHEN_IDX and (i == 0 or i == length - 1):
                    continue
                row = idx[i]
                vis = cost[row][a] * posw[i]
                q = ((1.6 if adj[row][a] else 1.0)
                     * max(0.2, 1.5 - vis * inv_len))
            else:
                rem = flat - add_base
                i, a = divmod(rem, _ALPHA_SIZE)
                if length + 1 > 63:
                    continue
                ch = _ALPHA_CODE_LIST[a]
                if i >= 1 and ch == codes[i - 1]:
                    continue
                if a == _HYPHEN_IDX and (i == 0 or i == length):
                    continue
                next_eq = i < length and ch == codes[i]
                ff1 = (next_eq or (i >= 1 and adj[idx[i - 1]][a])
                       or (i < length and adj[idx[i]][a]))
                vis = (0.3 if next_eq else 1.0) * posw[i]
                q = (0.45 * (1.6 if ff1 else 1.0)
                     * max(0.2, 1.5 - vis * inv_len))
            if u < reg_p * q:
                registered.append(flat)
    return registered


def _confirm_decoded(lidx: List[int], posw: List[float], reg_p: float,
                     cand_flats: List[int],
                     uvals: Optional[List[float]],
                     base_digits: int, base_hyphens: int,
                     base_vowels: int) -> List[tuple]:
    """Confirm candidate slots and decode the survivors in one pass.

    The feature sweep's fused twin of :func:`_confirm_flats`: the same
    validity + quality law decides registration (``uvals is None`` skips
    the uniform test for already-registered flats from the dense path),
    but instead of flat indices it returns ``(pack_lex, vis, op, index,
    char)`` per kept slot — the lexical half of the packed feature word
    (op, index, char, digit/hyphen/vowel counts, adjacency bit, see
    ``FEATURE_PACK_SHIFTS``) plus the visual cost, so the record walk
    never re-decodes.  ``lidx`` is the label's alphabet-index list; the
    parity tests pin the kept set against :func:`_confirm_flats` and the
    decoded fields against the scalar reference featurizer.
    """
    length = len(lidx)
    decoded: List[tuple] = []
    if not cand_flats:
        return decoded
    adj, cost = _ADJ_LIST, _COST_LIST
    is_digit, is_vowel = _IDX_IS_DIGIT, _IDX_IS_VOWEL
    is_hyphen = _IDX_IS_HYPHEN
    hyphen_i = _HYPHEN_IDX
    inv_len = 3.0 / max(1, length)
    n_del = length
    n_trans = length - 1 if length > 1 else 0
    sub_base = n_del + n_trans
    add_base = sub_base + length * _ALPHA_SIZE
    check = uvals is not None
    append = decoded.append
    for k, flat in enumerate(cand_flats):
        if flat < n_del:
            i = flat
            if length < 2 or length > 64:
                continue
            if i > 0 and lidx[i] == lidx[i - 1]:
                continue
            if i == 0 and lidx[1] == hyphen_i:
                continue
            if i == length - 1 and lidx[length - 2] == hyphen_i:
                continue
            rm = lidx[i]
            doubled = ((i < length - 1 and rm == lidx[i + 1])
                       or (i > 0 and rm == lidx[i - 1]))
            vis = (0.3 if doubled else 0.9) * posw[i]
            if check and uvals[k] >= (reg_p * 6.0 * 1.6
                                      * max(0.2, 1.5 - vis * inv_len)):
                continue
            op = 0
            a = 0
            adjacent = 1 << 48
            digits = base_digits - (1 if is_digit[rm] else 0)
            hyphens = base_hyphens - (1 if is_hyphen[rm] else 0)
            vowels = base_vowels - (1 if is_vowel[rm] else 0)
        elif flat < sub_base:
            i = flat - n_del
            if length > 63:
                continue
            if lidx[i] == lidx[i + 1]:
                continue
            if i == 0 and lidx[1] == hyphen_i:
                continue
            if i == n_trans - 1 and lidx[length - 2] == hyphen_i:
                continue
            vis = 0.5 * posw[i]
            if check and uvals[k] >= (reg_p * 5.0 * 1.6
                                      * max(0.2, 1.5 - vis * inv_len)):
                continue
            op = 1
            a = 0
            adjacent = 1 << 48
            digits = base_digits
            hyphens = base_hyphens
            vowels = base_vowels
        elif flat < add_base:
            i, a = divmod(flat - sub_base, _ALPHA_SIZE)
            if length > 63:
                continue
            rm = lidx[i]
            if a == rm:
                continue
            if a == hyphen_i and (i == 0 or i == length - 1):
                continue
            vis = cost[rm][a] * posw[i]
            adj_f = adj[rm][a]
            if check and uvals[k] >= (reg_p * (1.6 if adj_f else 1.0)
                                      * max(0.2, 1.5 - vis * inv_len)):
                continue
            op = 2
            adjacent = (1 << 48) if adj_f else 0
            digits = (base_digits - (1 if is_digit[rm] else 0)
                      + (1 if is_digit[a] else 0))
            hyphens = (base_hyphens - (1 if is_hyphen[rm] else 0)
                       + (1 if is_hyphen[a] else 0))
            vowels = (base_vowels - (1 if is_vowel[rm] else 0)
                      + (1 if is_vowel[a] else 0))
        else:
            i, a = divmod(flat - add_base, _ALPHA_SIZE)
            if length + 1 > 63:
                continue
            if i >= 1 and a == lidx[i - 1]:
                continue
            if a == hyphen_i and (i == 0 or i == length):
                continue
            next_eq = i < length and a == lidx[i]
            ff1 = (next_eq or (i >= 1 and adj[lidx[i - 1]][a])
                   or (i < length and adj[lidx[i]][a]))
            vis = (0.3 if next_eq else 1.0) * posw[i]
            if check and uvals[k] >= (reg_p * 0.45 * (1.6 if ff1 else 1.0)
                                      * max(0.2, 1.5 - vis * inv_len)):
                continue
            op = 3
            adjacent = (1 << 48) if ff1 else 0
            digits = base_digits + (1 if is_digit[a] else 0)
            hyphens = base_hyphens + (1 if is_hyphen[a] else 0)
            vowels = base_vowels + (1 if is_vowel[a] else 0)
        append((op | (i << 2) | (a << 8) | (digits << 14)
                | (hyphens << 20) | (vowels << 26) | adjacent,
                vis, op, i, a))
    return decoded


def _registration_grid(label: str, seed: int, rank: int,
                       config: InternetConfig) -> RankGrid:
    """The registration draw for one rank's whole candidate grid."""
    reg_p = (config.peak_registration_probability
             / (rank ** config.rank_decay))
    uniforms = _rank_uniforms(seed, "reg", rank, _grid_total(len(label)))
    generated, registered = _grid_draw(label, reg_p, uniforms)
    return RankGrid(label=label, generated=generated,
                    registered=np.asarray(registered, dtype=np.int64),
                    section_sizes=_sections(len(label)))


# -- filler targets ------------------------------------------------------------

_FILLER_CHUNK = 1024

_SYL_TABLE: Optional[List[str]] = None


def _syllable_table() -> List[str]:
    """Onset+vowel syllables, flat-indexed ``onset * n_vowels + vowel``."""
    global _SYL_TABLE
    if _SYL_TABLE is None:
        _SYL_TABLE = [onset + vowel for onset in _PRONOUNCEABLE_ONSETS
                      for vowel in _PRONOUNCEABLE_VOWELS]
    return _SYL_TABLE


def _filler_chunk(seed: int, chunk: int) -> Tuple[List[str], List[int]]:
    """(names, generated counts) for filler indices [chunk*N, (chunk+1)*N).

    Chunked so a 100k-target universe costs ~100 stream constructions
    instead of one per domain; each name stays a pure function of
    ``(seed, index)``.  The generated count rides along because every
    filler label is hyphen-free letters followed by decimal digits, so
    the closed form of :func:`_generated_count` reduces to
    ``74*L + 32 - 2*dups`` where adjacent duplicates can only occur
    inside the digit run (onset+vowel syllables never repeat a
    character across a boundary) — the chunk parity test pins this
    against the general-purpose counter.
    """
    uniforms = _rank_uniforms(seed, "fillers", chunk, _FILLER_CHUNK * 7)
    u = uniforms.reshape(_FILLER_CHUNK, 7)
    syl = _syllable_table()
    n_onsets = len(_PRONOUNCEABLE_ONSETS)
    n_vowels = len(_PRONOUNCEABLE_VOWELS)
    # columns are (u0, o1, v1, o2, v2, o3, v3); the truncating casts
    # reproduce the scalar ``min(int(u * n), n - 1)`` law exactly
    onset_i = np.minimum((u[:, 1::2] * n_onsets).astype(np.intp),
                         n_onsets - 1)
    vowel_i = np.minimum((u[:, 2::2] * n_vowels).astype(np.intp),
                         n_vowels - 1)
    flat_i = (onset_i * n_vowels + vowel_i).tolist()
    third = (u[:, 0] >= 0.5).tolist()
    base = chunk * _FILLER_CHUNK
    names: List[str] = []
    counts: List[int] = []
    append_name, append_count = names.append, counts.append
    for j in range(_FILLER_CHUNK):
        s1, s2, s3 = flat_i[j]
        label = (syl[s1] + syl[s2] + syl[s3] if third[j]
                 else syl[s1] + syl[s2])
        digits = str(base + j)
        dups = 0
        prev = ""
        for ch in digits:
            if ch == prev:
                dups += 1
            prev = ch
        append_count(74 * (len(label) + len(digits)) + 32 - 2 * dups)
        append_name(f"{label}{digits}.com")
    return names, counts


def _filler_labels(seed: int, chunk: int) -> List[str]:
    """Filler target domains for indices [chunk*N, (chunk+1)*N)."""
    return _filler_chunk(seed, chunk)[0]


# -- the world model ----------------------------------------------------------


class WorldModel:
    """Derives the simulated Internet per ``(seed, rank)`` on demand.

    ``churn`` maps rank -> generation for a world evolved by daily
    registration/expiration churn (see :mod:`repro.ecosystem.delta`):
    a churned rank's registration, wild-state, and probe streams are
    re-keyed by generation, so its DL-1 grid re-rolls — some ctypos
    expire, others register — while every generation-0 rank stays
    byte-identical to the day-0 world.
    """

    def __init__(self, seed: int, config: Optional[InternetConfig] = None,
                 probe_attempts: int = 3,
                 churn: Optional[Dict[int, int]] = None) -> None:
        self.seed = seed
        self.config = config or InternetConfig()
        self.probe_attempts = probe_attempts
        config = self.config
        #: the study's email targets occupy the head ranks; fillers are
        #: derived lazily in seed-keyed chunks below
        self._head_names: List[str] = [t.name for t in EMAIL_TARGETS]
        self._head_parts: List[Tuple[str, str]] = []
        for name in self._head_names:
            label, _ = split_domain(name)
            self._head_parts.append((label, name[len(label) + 1:]))
        self._head_gen_counts: List[int] = [
            _generated_count(label) for label, _ in self._head_parts]
        self._head_rank: Dict[str, int] = {
            name: index + 1 for index, name in enumerate(self._head_names)}
        #: filler chunks, built on demand and kept for the world's
        #: lifetime — a scan touches each chunk O(1) times (its own rank
        #: window plus collision probes from digit-edited candidates),
        #: so chunks never need rebuilding and the total stays bounded
        #: by the target universe, far below the eager builder's
        #: list+frozenset materialization
        self._chunks: Dict[int, Tuple[List[str], List[int]]] = {}
        self.chunk_builds = 0
        self._target_set: FrozenSet[str] = frozenset()
        self._target_set_size = 0
        self._churn: Optional[Dict[int, int]] = dict(churn) if churn else None
        self._streams: Dict[str, _RankKeyedStream] = {}
        # hot-path tables: cumulative weights for bisect draws, interned
        # owner-id strings, and the MX-host -> registrable-domain map
        self._bulk_cum, self._bulk_total = _cumulative(
            [1.8 ** -i for i in range(config.bulk_registrant_count)])
        self._bulk_ids = tuple(
            f"bulk-{i:02d}" for i in range(config.bulk_registrant_count))
        self._medium_ids = tuple(
            f"medium-{i:03d}" for i in range(config.medium_registrant_count))
        self._support_mixes = {
            name: (tuple(_SUPPORT_CODE[s] for s in mix),
                   *_cumulative(list(mix.values())))
            for name, mix in (
                ("squatter", config.squatter_support_mix),
                ("reseller", _RESELLER_SUPPORT_MIX),
                ("longtail", config.longtail_support_mix))}
        self._pool_hosts = tuple(h for h, _, _ in SQUATTER_MX_POOL)
        self._pool_broken = tuple(b for _, _, b in SQUATTER_MX_POOL)
        self._pool_cum, self._pool_total = _cumulative(
            [w for _, w, _ in SQUATTER_MX_POOL])
        self._mx_key = {
            host: registrable_domain(host)
            for host in (*PARKED_MX_HOSTS, *WEB_MX_HOSTS, *self._pool_hosts)}

    def _stream(self, purpose: str) -> _RankKeyedStream:
        stream = self._streams.get(purpose)
        if stream is None:
            stream = _RankKeyedStream(self.seed, purpose)
            self._streams[purpose] = stream
        return stream

    # -- the ranked target list -------------------------------------------

    def _chunk(self, chunk: int) -> Tuple[List[str], List[int]]:
        """The (names, generated counts) of one filler chunk, cached."""
        cached = self._chunks.get(chunk)
        if cached is None:
            cached = _filler_chunk(self.seed, chunk)
            self._chunks[chunk] = cached
            self.chunk_builds += 1
        return cached

    def target_domain(self, rank: int) -> str:
        """The rank-``rank`` domain of the simulated Alexa list."""
        if rank < 1:
            raise ValueError("ranks start at 1")
        head = self._head_names
        if rank <= len(head):
            return head[rank - 1]
        chunk, offset = divmod(rank - 1 - len(head), _FILLER_CHUNK)
        return self._chunk(chunk)[0][offset]

    def alexa_entry(self, rank: int) -> AlexaEntry:
        return AlexaEntry(domain=self.target_domain(rank), rank=rank,
                          monthly_visitors=5e8 / (rank ** 0.9))

    def alexa_entries(self, count: int) -> List[AlexaEntry]:
        return [self.alexa_entry(rank) for rank in range(1, count + 1)]

    def target_names(self, max_rank: int) -> FrozenSet[str]:
        """The target-domain universe of a ``max_rank``-sized world.

        Materializes ``max_rank`` names, so it is the reference form for
        small worlds and parity tests; the streaming scan uses the O(1)
        :meth:`is_target_domain` law instead.
        """
        if self._target_set_size != max_rank:
            names = list(self._head_names[:max_rank])
            chunk = 0
            while len(names) < max_rank:
                names.extend(self._chunk(chunk)[0])
                chunk += 1
            self._target_set = frozenset(names[:max_rank])
            self._target_set_size = max_rank
        return self._target_set

    def is_target_domain(self, domain: str, max_rank: int) -> bool:
        """O(1) membership in the ``max_rank`` target universe.

        Equivalent to ``domain in target_names(max_rank)`` (pinned by
        tests) without materializing the universe, so shard setup cost
        no longer scales with ``max_rank``.
        """
        return self.target_rank(domain, max_rank) is not None

    def target_rank(self, domain: str, max_rank: int) -> Optional[int]:
        """The domain's rank in the ``max_rank`` universe, or ``None``.

        The membership law inverted, with the rank recovered: a domain
        is a target iff it is one of the email-study heads, or it
        parses as ``<letters><index>.com`` where ``index`` (decimal,
        no leading zeros — ``str`` never prints them) addresses a
        filler slot inside the universe and the slot's derived name
        matches exactly.  This is the single membership oracle: the
        scan's :meth:`is_target_domain` and the query service's
        candidate index both probe it, so they can never disagree.
        """
        rank = self._head_rank.get(domain)
        if rank is not None:
            return rank if rank <= max_rank else None
        if not domain.endswith(".com"):
            return None
        label = domain[:-4]
        stem = label.rstrip("0123456789")
        nstem = len(stem)
        # no digit suffix, or a stem no 2-3 onset+vowel syllables can
        # spell (syllables are 2-3 chars, so derived stems are 4-9)
        if nstem == len(label) or nstem < 4 or nstem > 9:
            return None
        digits = label[nstem:]
        if digits[0] == "0" and len(digits) > 1:
            return None                    # str(index) has no leading zeros
        index = int(digits)
        if index >= max_rank - len(self._head_names):
            return None
        chunk, offset = divmod(index, _FILLER_CHUNK)
        cached = self._chunks.get(chunk)
        if cached is None:
            cached = self._chunk(chunk)
        if cached[0][offset] != domain:
            return None
        return len(self._head_names) + index + 1

    def evolved(self, churn: Optional[Dict[int, int]]) -> "WorldModel":
        """A world over the same ``(seed, config)`` at different churn.

        Target *identities* never churn — only per-rank registration,
        wild-state, and probe streams are generation-keyed — so the
        filler chunk cache and any materialized target set transfer to
        the new world unchanged.  This is what lets a resident index
        apply a churn delta without re-deriving the target universe.
        """
        world = WorldModel(self.seed, self.config,
                           probe_attempts=self.probe_attempts, churn=churn)
        world._chunks = self._chunks
        world.chunk_builds = self.chunk_builds
        world._target_set = self._target_set
        world._target_set_size = self._target_set_size
        return world

    def persona(self, owner_id: str) -> RegistrantPersona:
        """The stable WHOIS persona behind an owner id."""
        return make_registrant(
            SeededRng(derive_seed(self.seed, owner_id)), owner_id)

    # -- per-rank derivation ----------------------------------------------

    def target_parts(self, rank: int) -> Tuple[str, str]:
        """(label, suffix) of the rank's target domain."""
        head = self._head_parts
        if 1 <= rank <= len(head):
            return head[rank - 1]
        name = self.target_domain(rank)
        return name[:-4], "com"

    def rank_generation(self, rank: int) -> int:
        """The rank's churn generation (0 = the day-0 world)."""
        if self._churn is None:
            return 0
        return self._churn.get(rank, 0)

    def _rank_purpose(self, base: str, rank: int) -> str:
        """Stream purpose of ``base`` at the rank's churn generation."""
        generation = self.rank_generation(rank)
        return base if generation == 0 else f"{base}@{generation}"

    def rank_grid(self, rank: int) -> RankGrid:
        label, _ = self.target_parts(rank)
        reg_p = (self.config.peak_registration_probability
                 / (rank ** self.config.rank_decay))
        uniforms = self._stream(self._rank_purpose("reg", rank)).uniforms(
            rank, _grid_total(len(label)))
        generated, registered = _grid_draw(label, reg_p, uniforms)
        return RankGrid(label=label, generated=generated,
                        registered=np.asarray(registered, dtype=np.int64),
                        section_sizes=_sections(len(label)))

    def rank_states(self, rank: int) -> List[DomainState]:
        """Ground truth of every ctypo this rank registers, in grid order."""
        return list(self.iter_rank_states(rank, self.rank_grid(rank)))

    def iter_rank_states(self, rank: int,
                         grid: RankGrid) -> Iterable[DomainState]:
        """Stream the rank's registered-domain states (never a list)."""
        target = self.target_domain(rank)
        label = grid.label
        suffix = target[len(label) + 1:]
        for rec in self._iter_rank_records(rank, target, label, suffix,
                                           grid.registered.tolist()):
            (domain, owner_id, cls, profile, support, mx_domain, _mx_key,
             has_address, nameserver, private, proxy, fields, policy,
             op, index, char) = rec
            yield DomainState(
                domain=domain, target=target, rank=rank, edit_op=op,
                edit_index=index, edit_char=char, owner_id=owner_id,
                owner_type=_OWNER_BY_CODE[cls], profile=profile,
                support=_SUPPORT_BY_CODE[support], mx_domain=mx_domain,
                has_address=has_address, nameserver=nameserver,
                private_whois=private, privacy_proxy=proxy,
                whois_fields_filled=fields, longtail_policy=policy)

    def _iter_rank_records(self, rank: int, target: str, label: str,
                           suffix: str, registered: List[int]
                           ) -> Iterator[tuple]:
        """The rank's registered ctypos as plain tuples (the hot path).

        Each decision consumes exactly one uniform from the rank's "wild"
        stream, so the derivation is independent of how the consumer
        iterates.  Tuple layout: (domain, owner_id, owner class code,
        profile, support code, mx_domain, mx registrable domain,
        has_address, nameserver, private, proxy, whois fields, longtail
        policy, op, index, char); support travels as its
        ``_SUPPORT_BY_CODE`` index.
        """
        if not registered:
            return
        config = self.config
        n = len(registered)
        wu = self._stream(self._rank_purpose("wild", rank)).uniforms(
            rank, 12 * n + 4).tolist()
        wi = 0
        def_frac = config.defensive_fraction
        legit_cut = def_frac + config.legitimate_fraction
        bulk_share = config.bulk_share
        medium_cut = bulk_share + config.medium_share
        bulk_cum, bulk_total = self._bulk_cum, self._bulk_total
        bulk_ids, medium_ids = self._bulk_ids, self._medium_ids
        n_bulk, n_medium = len(bulk_ids), len(medium_ids)
        mixes = self._support_mixes
        pool_hosts, pool_broken = self._pool_hosts, self._pool_broken
        pool_cum, pool_total = self._pool_cum, self._pool_total
        mx_key_of = self._mx_key
        normal_ns, cesspool_ns = _NORMAL_NAMESERVERS, _CESSPOOL_NAMESERVERS
        n_normal, n_cesspool = len(normal_ns), len(cesspool_ns)
        proxies = PRIVACY_PROXIES
        n_proxies = len(proxies)
        catch_all = config.longtail_catch_all_rate
        reject_cut = catch_all + config.longtail_reject_all_rate
        n_del = len(label)
        n_trans = n_del - 1 if n_del > 1 else 0
        sub_base = n_del + n_trans
        add_base = sub_base + n_del * _ALPHA_SIZE
        dot_suffix = "." + suffix
        legit_count = 0
        small_count = 0
        for flat in registered:
            if flat < n_del:
                op, index, char = "deletion", flat, ""
                domain = label[:flat] + label[flat + 1:] + dot_suffix
            elif flat < sub_base:
                index = flat - n_del
                op, char = "transposition", ""
                domain = (label[:index] + label[index + 1]
                          + label[index] + label[index + 2:] + dot_suffix)
            elif flat < add_base:
                index, a = divmod(flat - sub_base, _ALPHA_SIZE)
                op, char = "substitution", DOMAIN_ALPHABET[a]
                domain = label[:index] + char + label[index + 1:] + dot_suffix
            else:
                index, a = divmod(flat - add_base, _ALPHA_SIZE)
                op, char = "addition", DOMAIN_ALPHABET[a]
                domain = label[:index] + char + label[index:] + dot_suffix

            owner_u = wu[wi]
            wi += 1
            if owner_u < def_frac:
                yield (domain, f"owner-{target}", 0, "", 5,
                       f"mx.{target}", target, False, f"ns.{target}",
                       False, None, 6, None, op, index, char)
                continue
            if owner_u < legit_cut:
                nameserver = normal_ns[min(int(wu[wi] * n_normal),
                                           n_normal - 1)]
                wi += 1
                private = wu[wi] < 0.25
                wi += 1
                proxy = None
                if private:
                    proxy = proxies[min(int(wu[wi] * n_proxies),
                                        n_proxies - 1)]
                    wi += 1
                policy = "catch_all" if wu[wi] < 0.1 else "reject_unknown"
                wi += 1
                yield (domain, f"legit-r{rank}-{legit_count}", 1, "", 5,
                       None, None, True, nameserver, private, proxy, 6,
                       policy, op, index, char)
                legit_count += 1
                continue

            # squatters --------------------------------------------------
            squatter_u = wu[wi]
            wi += 1
            if squatter_u < bulk_share:
                bulk_index = min(bisect_right(bulk_cum, wu[wi] * bulk_total),
                                 n_bulk - 1)
                wi += 1
                owner_id = bulk_ids[bulk_index]
                profile = "reseller" if bulk_index < 3 else "collector"
                cls = 2
            elif squatter_u < medium_cut:
                medium_index = min(int(wu[wi] * n_medium), n_medium - 1)
                wi += 1
                owner_id = medium_ids[medium_index]
                profile = "collector" if medium_index % 2 == 0 else "reseller"
                cls = 3
            else:
                owner_id = f"small-r{rank}-{small_count}"
                small_count += 1
                profile = "collector"
                cls = 4

            mix_names, mix_cum, mix_total = mixes[
                "longtail" if cls == 4 else
                ("reseller" if profile == "reseller" else "squatter")]
            support = mix_names[min(bisect_right(mix_cum, wu[wi] * mix_total),
                                    len(mix_names) - 1)]
            wi += 1

            if cls != 4:
                cesspool = True
            else:
                cesspool = wu[wi] < config.small_cesspool_rate
                wi += 1
            if cesspool:
                nameserver = cesspool_ns[min(int(wu[wi] * n_cesspool),
                                             n_cesspool - 1)]
            else:
                nameserver = normal_ns[min(int(wu[wi] * n_normal),
                                           n_normal - 1)]
            wi += 1

            mx_domain = None
            mx_key = None
            has_address = False
            policy = None
            if support != 0:
                if cls != 4:
                    if support == 1:
                        mx_domain = PARKED_MX_HOSTS[min(int(wu[wi] * 3), 2)]
                        wi += 1
                    elif support == 2:
                        mx_domain = WEB_MX_HOSTS[min(int(wu[wi] * 3), 2)]
                        wi += 1
                    else:
                        pool_index = min(
                            bisect_right(pool_cum, wu[wi] * pool_total),
                            len(pool_hosts) - 1)
                        wi += 1
                        mx_domain = pool_hosts[pool_index]
                        if pool_broken[pool_index]:
                            support = 4
                    mx_key = mx_key_of[mx_domain]
                else:
                    has_address = True
                    if wu[wi] < 0.1:
                        mx_domain = domain
                        mx_key = domain
                    wi += 1
                    if support != 2 and support != 1:
                        roll = wu[wi]
                        wi += 1
                        if roll < catch_all:
                            policy = "catch_all"
                        elif roll < reject_cut:
                            policy = "reject_unknown"
                        else:
                            policy = "domain"

            if cls != 4:
                privacy_rate = (0.05 if profile == "reseller"
                                else config.bulk_privacy_rate)
            elif policy == "catch_all":
                privacy_rate = 0.75
            else:
                privacy_rate = config.small_privacy_rate
            private = wu[wi] < privacy_rate
            wi += 1
            proxy = None
            fields = 6
            if private:
                proxy = proxies[min(int(wu[wi] * n_proxies), n_proxies - 1)]
                wi += 1
            elif wu[wi] >= 0.8:
                wi += 1
                fields = 2 + min(int(wu[wi] * 4), 3)
                wi += 1
            else:
                wi += 1

            yield (domain, owner_id, cls, profile, support, mx_domain,
                   mx_key, has_address, nameserver, private, proxy, fields,
                   policy, op, index, char)

    # -- the streaming scan ------------------------------------------------

    def scan_ranks(self, start_rank: int, stop_rank: int, *,
                   max_rank: Optional[int] = None,
                   exclude: Iterable[str] = (),
                   aggregates: Optional[ScanAggregates] = None,
                   retain: Optional[list] = None,
                   perf: Optional["PerfRegistry"] = None) -> ScanAggregates:
        """Scan ranks ``[start_rank, stop_rank)`` into streaming aggregates.

        ``max_rank`` is the size of the world's target universe (candidate
        strings colliding with a target domain are never wild typo
        registrations); it defaults to ``stop_rank - 1`` and must be held
        constant across the shards of one scan.  ``retain`` is the opt-in
        result sink for small scans: when given a list, each observation
        is appended as ``(DomainState, observed SmtpSupport)``; on the
        paper-scale path nothing per-result is kept.

        Setup is O(1) and the loop touches only this window's filler
        chunks: target collisions resolve through the O(1)
        :meth:`is_target_domain` law, never a materialized universe, so
        a shard's cost depends on its own width — not on ``stop_rank``
        or ``max_rank``.  ``perf`` (optional) accumulates
        ``scan.setup_seconds`` / ``scan.draw_seconds`` /
        ``scan.probe_seconds`` phase timers; when omitted the loop pays
        only a dead branch per rank.

        The probe emulation mirrors :meth:`EcosystemScanner._probe`
        against the host behaviours ``build_internet`` attaches: per
        attempt a timeout draw, then a network-error draw, then either a
        deterministic refusal (no listener) or the listening server's
        STARTTLS classification.  Hosts whose behaviour is deterministic
        (defensive mail, parked or web-only hosts) resolve without
        consuming probe uniforms.
        """
        timing = perf is not None
        entry_t = perf_counter() if timing else 0.0
        aggregates = aggregates if aggregates is not None else ScanAggregates()
        max_rank = max_rank or (stop_rank - 1)
        excluded = {domain.lower() for domain in exclude}
        check_exclude = bool(excluded)
        churn = self._churn
        probe_stream = self._stream("probe")
        attempts = self.probe_attempts
        config = self.config
        peak = config.peak_registration_probability
        decay = config.rank_decay
        reg_stream = self._stream("reg")
        small_timeout = config.longtail_timeout_probability
        small_neterr = config.longtail_network_error_probability
        support_by_code = _SUPPORT_BY_CODE
        is_target = self.is_target_domain
        head_n = len(self._head_names)
        head_parts = self._head_parts
        generated = 0
        registered_n = 0
        # categorical folds are flat index lists; dict folds only where the
        # key space is open-ended (MX domains, owners, targets)
        support_l = [0] * 6
        truth_l = [0] * 6
        owner_type_l = [0] * 5
        mx_c: Dict[str, int] = {}
        owner_dom_c: Dict[str, int] = {}
        per_target_c: Dict[str, int] = {}
        private_n = 0
        implicit_n = 0
        draw_s = 0.0
        probe_s = 0.0
        setup_s = (perf_counter() - entry_t) if timing else 0.0

        rank = start_rank
        while rank < stop_rank:
            # one block: the email-target head, or one filler chunk's
            # overlap with the scan window (chunk lookups, generated
            # counts, and name slicing amortize across the block)
            if rank <= head_n:
                base_rank = 1
                block_stop = min(stop_rank, head_n + 1)
                names = self._head_names
                counts = self._head_gen_counts
                filler = False
            else:
                chunk, _ = divmod(rank - 1 - head_n, _FILLER_CHUNK)
                names, counts = self._chunk(chunk)
                base_rank = head_n + chunk * _FILLER_CHUNK + 1
                block_stop = min(stop_rank, base_rank + _FILLER_CHUNK)
                filler = True
            for r in range(rank, block_stop):
                idx = r - base_rank
                name = names[idx]
                if filler:
                    label = name[:-4]
                    suffix = "com"
                else:
                    label, suffix = head_parts[idx]
                reg_p = peak / (r ** decay)
                if churn is not None and churn.get(r, 0):
                    generation = churn[r]
                    rank_reg = self._stream(f"reg@{generation}")
                    rank_probe = self._stream(f"probe@{generation}")
                else:
                    rank_reg = reg_stream
                    rank_probe = probe_stream
                if timing:
                    t0 = perf_counter()
                uniforms = rank_reg.uniforms(r, 76 * len(label) + 36)
                regs = _registered_flats(label, reg_p, uniforms)
                if timing:
                    draw_s += perf_counter() - t0
                generated += counts[idx]
                if not regs:
                    continue
                if timing:
                    t1 = perf_counter()
                target = name
                pu: Optional[list] = None
                pi = 0
                n = len(regs)
                scanned = 0
                for rec in self._iter_rank_records(r, target, label,
                                                   suffix, regs):
                    (domain, owner_id, cls, profile, support, mx_domain,
                     mx_key, has_address, nameserver, private, proxy,
                     fields, policy, op, index, char) = rec
                    if ((check_exclude and domain in excluded)
                            or is_target(domain, max_rank)):
                        continue
                    # probe emulation (all codes: 0 NO_DNS, 1 NO_INFO,
                    # 2 NO_EMAIL, 3 PLAIN, 4 STARTTLS_ERRORS,
                    # 5 STARTTLS_OK)
                    if support == 0:
                        observed = 0
                    elif cls == 0:
                        observed = 5
                    elif support == 2 or (cls != 4 and cls != 1
                                          and support == 1):
                        # web-parked or refused hosts answer
                        # deterministically
                        observed = support
                    else:
                        if cls == 1:
                            timeout_p, neterr_p = 0.05, 0.03
                            starttls, broken = True, False
                            listener = True
                        elif cls != 4:
                            timeout_p, neterr_p = 0.03, 0.02
                            starttls, broken = True, support == 4
                            listener = True
                        elif support == 1:
                            timeout_p, neterr_p = 0.97, 0.03
                            listener = False
                        else:
                            timeout_p, neterr_p = (small_timeout,
                                                   small_neterr)
                            starttls, broken = support != 3, support == 4
                            listener = True
                        if pu is None:
                            pu = rank_probe.uniforms(
                                r, 2 * attempts * n + 2).tolist()
                        observed = -1
                        refused = False
                        for _ in range(attempts):
                            if pu[pi] < timeout_p:
                                pi += 1
                                continue
                            pi += 1
                            if pu[pi] < neterr_p:
                                pi += 1
                                continue
                            pi += 1
                            if not listener:
                                refused = True
                                continue
                            observed = (4 if broken
                                        else (5 if starttls else 3))
                            break
                        if observed < 0:
                            observed = 2 if refused else 1
                    # fold --------------------------------------------
                    scanned += 1
                    support_l[observed] += 1
                    truth_l[support] += 1
                    if mx_key is not None:
                        mx_c[mx_key] = mx_c.get(mx_key, 0) + 1
                    elif has_address:
                        implicit_n += 1
                    if cls == 2 or cls == 3:
                        owner_dom_c[owner_id] = (
                            owner_dom_c.get(owner_id, 0) + 1)
                    owner_type_l[cls] += 1
                    if private:
                        private_n += 1
                    if retain is not None:
                        retain.append((DomainState(
                            domain=domain, target=target, rank=r,
                            edit_op=op, edit_index=index, edit_char=char,
                            owner_id=owner_id,
                            owner_type=_OWNER_BY_CODE[cls],
                            profile=profile,
                            support=support_by_code[support],
                            mx_domain=mx_domain, has_address=has_address,
                            nameserver=nameserver, private_whois=private,
                            privacy_proxy=proxy,
                            whois_fields_filled=fields,
                            longtail_policy=policy),
                            support_by_code[observed]))
                if scanned:
                    registered_n += scanned
                    per_target_c[target] = (
                        per_target_c.get(target, 0) + scanned)
                if timing:
                    probe_s += perf_counter() - t1
            rank = block_stop

        aggregates.fold_flat(
            generated, registered_n, support_l, truth_l, owner_type_l,
            _SUPPORT_VALUE_BY_CODE, _OWNER_VALUE_BY_CODE,
            mx_c, owner_dom_c, per_target_c, private_n, implicit_n)
        if timing:
            perf.add_seconds("scan.setup_seconds", setup_s)
            perf.add_seconds("scan.draw_seconds", draw_s)
            perf.add_seconds("scan.probe_seconds", probe_s)
            perf.count("scan.ranks", stop_rank - start_rank)
        return aggregates

    # -- the feature sweep -------------------------------------------------

    def _stem_syllables(self, cache: Dict[int, tuple],
                        chunk: int) -> tuple:
        """(flat syllable indices, third-syllable flags) of a filler chunk.

        The collision confirm of :meth:`featurize_ranks` only needs the
        *stem* of a candidate filler name, so it derives the chunk's
        syllable draws (pure numpy, ~60us) without paying
        :func:`_filler_chunk`'s per-name Python loop, and keeps them in a
        sweep-local cache the caller bounds.
        """
        cached = cache.get(chunk)
        if cached is None:
            uniforms = _rank_uniforms(self.seed, "fillers", chunk,
                                      _FILLER_CHUNK * 7)
            u = uniforms.reshape(_FILLER_CHUNK, 7)
            n_onsets = len(_PRONOUNCEABLE_ONSETS)
            n_vowels = len(_PRONOUNCEABLE_VOWELS)
            onset_i = np.minimum((u[:, 1::2] * n_onsets).astype(np.intp),
                                 n_onsets - 1)
            vowel_i = np.minimum((u[:, 2::2] * n_vowels).astype(np.intp),
                                 n_vowels - 1)
            cached = ((onset_i * n_vowels + vowel_i).astype(np.uint16),
                      u[:, 0] >= 0.5)
            if len(cache) >= 4096:
                cache.clear()          # keep a 10x-scale sweep bounded
            cache[chunk] = cached
        return cached

    def _featurize_batch(self, rb0: int, rb1: int, base_rank: int,
                         names: List[str], filler: bool,
                         bufh: list) -> tuple:
        """Batched registration draws + preselect for ranks ``[rb0, rb1)``.

        Draws every rank's registration stream into one reused matrix
        (rows grouped by label length) and preselects candidates with a
        single vector compare per length slab, replacing ~5 small numpy
        dispatches per rank with ~3 per 256 ranks.  Returns ``(labels,
        cands, rows, churned)``: per-rank labels; preselect outcome
        (``None`` no candidates, ``_DENSE`` run the dense scalar path on
        the stored draw row, else ``(flats, uniforms)`` for
        :func:`_confirm_flats`); each rank's draw-matrix row; and per-rank
        churn generations (``None`` for a churn-free window — churned
        ranks draw from re-keyed streams, so the caller resolves them
        rank-at-a-time and their matrix rows stay unfilled).
        """
        m = rb1 - rb0
        head_parts = self._head_parts
        labels: List[str] = []
        if filler:
            for r in range(rb0, rb1):
                labels.append(names[r - base_rank][:-4])
        else:
            for r in range(rb0, rb1):
                labels.append(head_parts[r - base_rank][0])
        churn = self._churn
        churned = ([churn.get(r, 0) for r in range(rb0, rb1)]
                   if churn is not None else None)
        order = sorted(range(m), key=lambda p: len(labels[p]))
        g_max = 76 * len(labels[order[-1]]) + 36
        buf = bufh[0]
        if buf is None or buf.shape[1] < g_max:
            buf = np.empty((_FEATURE_BATCH, g_max))
            bufh[0] = buf
        fill = self._stream("reg").uniforms_into
        rows = [0] * m
        for j, p in enumerate(order):
            rows[p] = j
            if churned is not None and churned[p]:
                continue
            fill(rb0 + p, buf[j, :76 * len(labels[p]) + 36])
        peak = self.config.peak_registration_probability
        decay = self.config.rank_decay
        # np.power can differ from the scalar ``peak / r ** decay`` law
        # in the last ulp, so both derived tests are padded to stay
        # conservative: the preselect must remain a superset (the exact
        # scalar confirm decides), and a rank flagged dense merely runs
        # the exact dense/sparse split inside _registered_flats
        reg_all = (peak * (1.0 + 1e-9)) * np.power(
            np.array(order, dtype=np.float64) + rb0, -decay)
        dense_all = reg_all * _QUALITY_MAX >= 0.95 * (1.0 - 1e-9)
        cands: List[Optional[tuple]] = [None] * m
        j0 = 0
        while j0 < m:
            length = len(labels[order[j0]])
            j1 = j0 + 1
            while j1 < m and len(labels[order[j1]]) == length:
                j1 += 1
            slab = buf[j0:j1, :76 * length + 36]
            reg_ps = reg_all[j0:j1]
            hits = slab < reg_ps[:, None] * _section_upper(length)
            dense = dense_all[j0:j1]
            if dense.any():
                hits[dense] = False
                for jj in np.nonzero(dense)[0].tolist():
                    cands[order[j0 + jj]] = _DENSE
            rows_h, cols_h = np.nonzero(hits)
            if rows_h.size:
                uv = slab[rows_h, cols_h].tolist()
                rlist = rows_h.tolist()
                clist = cols_h.tolist()
                nh = len(rlist)
                k = 0
                while k < nh:
                    row = rlist[k]
                    k2 = k + 1
                    while k2 < nh and rlist[k2] == row:
                        k2 += 1
                    cands[order[j0 + row]] = (clist[k:k2], uv[k:k2])
                    k = k2
            j0 = j1
        return labels, cands, rows, churned

    def featurize_ranks(self, start_rank: int, stop_rank: int, *,
                        max_rank: Optional[int] = None,
                        on_block=None, block_records: int = 65536,
                        perf: Optional["PerfRegistry"] = None
                        ) -> Tuple[int, int, int]:
        """Stream packed feature rows for every wild ctypo in the window.

        The columnar twin of :meth:`scan_ranks`: the same registration
        law, the same wild-state stream consumption (the parity tests pin
        every row against :meth:`iter_rank_states`), but instead of
        probing it emits one ``(packed int64, visual float)`` pair per
        wild registered ctypo plus per-rank shared context, batched into
        blocks for vectorized featurization downstream.  ``on_block``
        receives ``(rank_l, nrows_l, len_l, tdigit_l, tadj_l, packed_l,
        vis_l)`` — the first five parallel per contributing rank, the
        last two per row — whenever ``block_records`` rows accumulate.

        Returns ``(rows, excluded, generated)``; ``excluded`` counts
        registrations skipped because the candidate string collides with
        a target domain of the ``max_rank`` universe (the same wildness
        rule the scan applies, via the same membership law — confirmed
        against chunk *stems* so a deep sweep never materializes foreign
        filler chunks).  Bounded memory: per-block lists, a capped
        stem cache, and the window's own filler chunks only.
        """
        timing = perf is not None
        entry_t = perf_counter() if timing else 0.0
        max_rank = max_rank or (stop_rank - 1)
        churn = self._churn
        config = self.config
        peak = config.peak_registration_probability
        decay = config.rank_decay
        wild_stream = self._stream("wild")
        head_n = len(self._head_names)
        head_parts = self._head_parts
        head_rank = self._head_rank
        chunks_cache = self._chunks
        stem_cache: Dict[int, tuple] = {}
        stem_tbl: Dict[str, tuple] = {}
        bufh: list = [None]   # reused draw matrix across batches
        syl = _syllable_table()
        head_com = {lbl: rk for rk, (lbl, sfx0)
                    in enumerate(head_parts, start=1) if sfx0 == "com"}
        # the digit-run collision fast path assumes no head label
        # contains a digit (a filler typo that keeps digits in place
        # can then never spell a head); disable it should the target
        # list ever grow one
        prefilter_ok = not any(any(ch.isdigit() for ch in lbl)
                               for lbl, _ in head_parts)

        def_frac = config.defensive_fraction
        legit_cut = def_frac + config.legitimate_fraction
        bulk_share = config.bulk_share
        medium_cut = bulk_share + config.medium_share
        bulk_cum, bulk_total = self._bulk_cum, self._bulk_total
        n_bulk = len(self._bulk_ids)
        n_medium = len(self._medium_ids)
        mix_sq, mix_rs, mix_lt = (self._support_mixes["squatter"],
                                  self._support_mixes["reseller"],
                                  self._support_mixes["longtail"])
        pool_broken = self._pool_broken
        pool_cum, pool_total = self._pool_cum, self._pool_total
        n_pool = len(self._pool_hosts)
        catch_all = config.longtail_catch_all_rate
        reject_cut = catch_all + config.longtail_reject_all_rate
        small_cess = config.small_cesspool_rate
        bulk_privacy = config.bulk_privacy_rate
        small_privacy = config.small_privacy_rate

        code2idx = _CODE2IDX_LIST
        is_digit, is_vowel = _IDX_IS_DIGIT, _IDX_IS_VOWEL
        is_hyphen = _IDX_IS_HYPHEN
        _char_tables()
        adj_t = _ADJ_LIST
        alpha = DOMAIN_ALPHABET

        # branch-constant packed partials (see FEATURE_PACK_SHIFTS)
        pack_defensive = ((5 << 32) | (2 << 36) | (6 << 39) | (5 << 44))
        pack_legit = ((1 << 35) | (1 << 36) | (6 << 39) | (5 << 44))
        squat_bit = 1 << 47

        rank_l: List[int] = []
        nrows_l: List[int] = []
        len_l: List[int] = []
        tdigit_l: List[float] = []
        tadj_l: List[float] = []
        packed_l: List[int] = []
        vis_l: List[float] = []
        pack_append = packed_l.append
        vis_append = vis_l.append

        n_rows = 0
        n_excluded = 0
        generated = 0
        setup_s = (perf_counter() - entry_t) if timing else 0.0

        rank = start_rank
        while rank < stop_rank:
            if rank <= head_n:
                base_rank = 1
                block_stop = min(stop_rank, head_n + 1)
                names = self._head_names
                counts = self._head_gen_counts
                filler = False
            else:
                chunk, _ = divmod(rank - 1 - head_n, _FILLER_CHUNK)
                names, counts = self._chunk(chunk)
                base_rank = head_n + chunk * _FILLER_CHUNK + 1
                block_stop = min(stop_rank, base_rank + _FILLER_CHUNK)
                filler = True
            generated += sum(counts[rank - base_rank:
                                    block_stop - base_rank])
            batch = None
            batch_base = rank
            for r in range(rank, block_stop):
                p = r - batch_base
                if batch is None or p == len(batch[0]):
                    batch_base = r
                    batch = self._featurize_batch(
                        r, min(r + _FEATURE_BATCH, block_stop),
                        base_rank, names, filler, bufh)
                    p = 0
                labels_b, cands, row_of, churned = batch
                label = labels_b[p]
                L = len(label)
                if churned is not None and churned[p]:
                    generation = churned[p]
                    reg_p = peak / (r ** decay)
                    rank_wild = self._stream(f"wild@{generation}")
                    src_flats = _registered_flats(
                        label, reg_p,
                        self._stream(f"reg@{generation}").uniforms(
                            r, 76 * L + 36))
                    if not src_flats:
                        continue
                    uv = None
                else:
                    rank_wild = wild_stream
                    c = cands[p]
                    if c is None:
                        continue
                    reg_p = peak / (r ** decay)
                    if c is _DENSE:
                        src_flats = _registered_flats(
                            label, reg_p, bufh[0][row_of[p], :76 * L + 36])
                        if not src_flats:
                            continue
                        uv = None
                    else:
                        src_flats, uv = c

                # per-rank shared tables; filler labels are stem+digits
                # with the stem drawn from a bounded syllable vocabulary,
                # so stem-side stats come from a capped cache and only
                # the short digit suffix is walked per rank
                if filler:
                    dstr = str(r - head_n - 1)
                    nd = len(dstr)
                    nstem = L - nd
                    stem = label[:nstem]
                    ent = stem_tbl.get(stem)
                    if ent is None:
                        s_lidx = [code2idx[ord(ch)] for ch in stem]
                        svow = 0
                        sadj = 0
                        prev = -1
                        for a0 in s_lidx:
                            if is_vowel[a0]:
                                svow += 1
                            if prev >= 0 and adj_t[prev][a0]:
                                sadj += 1
                            prev = a0
                        if len(stem_tbl) >= 131072:
                            stem_tbl.clear()
                        ent = (s_lidx, svow, sadj)
                        stem_tbl[stem] = ent
                    s_lidx, svow, sadj = ent
                    d_lidx = [code2idx[ord(ch)] for ch in dstr]
                    lidx = s_lidx + d_lidx
                    base_digits = nd
                    base_hyphens = 0
                    base_vowels = svow
                    adj_pairs = sadj
                    prev = s_lidx[nstem - 1]
                    for a0 in d_lidx:
                        if adj_t[prev][a0]:
                            adj_pairs += 1
                        prev = a0
                    tgt_dig_frac = nd / L
                    tgt_adj_frac = adj_pairs / (L - 1)
                    # collision prefilter: only edits at or after the
                    # last stem letter can change the trailing digit
                    # run, and an unchanged run decodes to the target's
                    # own slot — never a typo match (heads always check)
                    safe_below = nstem - 1 if prefilter_ok else 0
                else:
                    lidx = [code2idx[ord(ch)] for ch in label]
                    base_digits = 0
                    base_hyphens = 0
                    base_vowels = 0
                    adj_pairs = 0
                    prev = -1
                    for a0 in lidx:
                        if is_digit[a0]:
                            base_digits += 1
                        elif is_vowel[a0]:
                            base_vowels += 1
                        elif is_hyphen[a0]:
                            base_hyphens += 1
                        if prev >= 0 and adj_t[prev][a0]:
                            adj_pairs += 1
                        prev = a0
                    tgt_dig_frac = base_digits / L
                    tgt_adj_frac = adj_pairs / (L - 1) if L > 1 else 0.0
                    safe_below = 0

                posw = _position_weight_list(L)
                decoded = _confirm_decoded(lidx, posw, reg_p, src_flats,
                                           uv, base_digits, base_hyphens,
                                           base_vowels)
                if not decoded:
                    continue
                sfx = "com" if filler else head_parts[r - base_rank][1]
                fast = filler and prefilter_ok

                n = len(decoded)
                wu = rank_wild.uniforms(r, 12 * n + 4).tolist()
                wi = 0
                rank_rows = 0

                for pack_lex, vis, op, index, a in decoded:
                    # the wild-state walk: stream consumption identical
                    # to _iter_rank_records (the parity tests pin it) ---
                    owner_u = wu[wi]
                    wi += 1
                    if owner_u < def_frac:
                        packed = pack_defensive
                    elif owner_u < legit_cut:
                        wi += 1                     # nameserver pick
                        private = wu[wi] < 0.25
                        wi += 1
                        if private:
                            wi += 1                 # proxy pick
                        policy = 1 if wu[wi] < 0.1 else 2
                        wi += 1
                        packed = (pack_legit | (policy << 42)
                                  | ((1 << 38) if private else 0))
                    else:
                        squatter_u = wu[wi]
                        wi += 1
                        if squatter_u < bulk_share:
                            bulk_index = min(
                                bisect_right(bulk_cum, wu[wi] * bulk_total),
                                n_bulk - 1)
                            wi += 1
                            reseller = bulk_index < 3
                            cls4 = False
                        elif squatter_u < medium_cut:
                            medium_index = min(int(wu[wi] * n_medium),
                                               n_medium - 1)
                            wi += 1
                            reseller = medium_index % 2 != 0
                            cls4 = False
                        else:
                            reseller = False
                            cls4 = True
                        mix_names, mix_cum, mix_total = (
                            mix_lt if cls4
                            else (mix_rs if reseller else mix_sq))
                        support = mix_names[min(
                            bisect_right(mix_cum, wu[wi] * mix_total),
                            len(mix_names) - 1)]
                        wi += 1
                        if cls4:
                            cesspool = wu[wi] < small_cess
                            wi += 1
                        else:
                            cesspool = True
                        wi += 1                     # nameserver pick
                        mx_code = 0
                        addr = 0
                        policy = 0
                        if support != 0:
                            if not cls4:
                                if support == 1:
                                    mx_code = 1
                                    wi += 1
                                elif support == 2:
                                    mx_code = 2
                                    wi += 1
                                else:
                                    pool_index = min(
                                        bisect_right(pool_cum,
                                                     wu[wi] * pool_total),
                                        n_pool - 1)
                                    wi += 1
                                    mx_code = 3
                                    if pool_broken[pool_index]:
                                        support = 4
                            else:
                                addr = 1
                                if wu[wi] < 0.1:
                                    mx_code = 4
                                wi += 1
                                if support != 2 and support != 1:
                                    roll = wu[wi]
                                    wi += 1
                                    if roll < catch_all:
                                        policy = 1
                                    elif roll < reject_cut:
                                        policy = 2
                                    else:
                                        policy = 3
                        if not cls4:
                            privacy_rate = (0.05 if reseller
                                            else bulk_privacy)
                        elif policy == 1:
                            privacy_rate = 0.75
                        else:
                            privacy_rate = small_privacy
                        private = wu[wi] < privacy_rate
                        wi += 1
                        fields = 6
                        if private:
                            wi += 1                 # proxy pick
                        elif wu[wi] >= 0.8:
                            wi += 1
                            fields = 2 + min(int(wu[wi] * 4), 3)
                            wi += 1
                        else:
                            wi += 1
                        packed = (squat_bit | (mx_code << 32) | (addr << 35)
                                  | ((0 if cesspool else 1) << 36)
                                  | ((1 << 38) if private else 0)
                                  | (fields << 39) | (policy << 42)
                                  | (support << 44))

                    # wildness: drop candidates colliding with a target.
                    # Fast path (fillers, digit-free head list): a typo
                    # can only match a filler name if it still reads as
                    # letters(4-9)+digits — edits confined to the digit
                    # run keep the stem and just move the slot (compare
                    # that slot's stem), letter/hyphen edits inside the
                    # run break the shape, and boundary edits that keep
                    # the shape decode to the target's own slot.  The
                    # few stem-changing shapes fall back to the generic
                    # membership walk, as do all head ranks.
                    if index >= safe_below:
                        if fast:
                            digits2 = None
                            generic = False
                            if op == 0:
                                if index < nstem:
                                    generic = True
                                else:
                                    kk = index - nstem
                                    d2 = dstr[:kk] + dstr[kk + 1:]
                                    if not d2:
                                        hit = head_com.get(stem)
                                        if (hit is not None
                                                and hit <= max_rank):
                                            n_excluded += 1
                                            continue
                                    elif not (d2[0] == "0" and nd > 2):
                                        digits2 = d2
                            elif op == 1:
                                if index >= nstem:
                                    kk = index - nstem
                                    d2 = (dstr[:kk] + dstr[kk + 1]
                                          + dstr[kk] + dstr[kk + 2:])
                                    if not (d2[0] == "0" and nd > 1):
                                        digits2 = d2
                            elif op == 2:
                                if index >= nstem:
                                    if is_digit[a]:
                                        kk = index - nstem
                                        d2 = (dstr[:kk] + alpha[a]
                                              + dstr[kk + 1:])
                                        if not (d2[0] == "0" and nd > 1):
                                            digits2 = d2
                                    elif index == nstem:
                                        generic = True
                                elif is_digit[a]:
                                    generic = True
                            else:
                                if index >= nstem and is_digit[a]:
                                    kk = index - nstem
                                    d2 = (dstr[:kk] + alpha[a]
                                          + dstr[kk:])
                                    if d2[0] != "0":
                                        digits2 = d2
                            if digits2 is not None:
                                index2 = int(digits2)
                                if index2 < max_rank - head_n:
                                    chunk2, off2 = divmod(
                                        index2, _FILLER_CHUNK)
                                    known = chunks_cache.get(chunk2)
                                    if known is not None:
                                        match = (known[0][off2]
                                                 == stem + digits2
                                                 + ".com")
                                    else:
                                        flat_i, third = \
                                            self._stem_syllables(
                                                stem_cache, chunk2)
                                        s1, s2, s3 = flat_i[off2]
                                        cand = (syl[s1] + syl[s2]
                                                + syl[s3]
                                                if third[off2]
                                                else syl[s1] + syl[s2])
                                        match = cand == stem
                                    if match:
                                        n_excluded += 1
                                        continue
                            if not generic:
                                pack_append(packed | pack_lex)
                                vis_append(vis)
                                rank_rows += 1
                                continue
                        if op == 0:
                            typo = label[:index] + label[index + 1:]
                        elif op == 1:
                            typo = (label[:index] + label[index + 1]
                                    + label[index] + label[index + 2:])
                        elif op == 2:
                            typo = (label[:index] + alpha[a]
                                    + label[index + 1:])
                        else:
                            typo = (label[:index] + alpha[a]
                                    + label[index:])
                        hit = head_rank.get(typo + "." + sfx)
                        if hit is not None and hit <= max_rank:
                            n_excluded += 1
                            continue
                        if sfx == "com":
                            stem2 = typo.rstrip("0123456789")
                            nstem2 = len(stem2)
                            if 4 <= nstem2 <= 9 and nstem2 < len(typo):
                                digits2 = typo[nstem2:]
                                if not (digits2[0] == "0"
                                        and len(digits2) > 1):
                                    index2 = int(digits2)
                                    if index2 < max_rank - head_n:
                                        chunk2, off2 = divmod(
                                            index2, _FILLER_CHUNK)
                                        known = chunks_cache.get(chunk2)
                                        if known is not None:
                                            match = (known[0][off2]
                                                     == typo + ".com")
                                        else:
                                            flat_i, third = \
                                                self._stem_syllables(
                                                    stem_cache, chunk2)
                                            s1, s2, s3 = flat_i[off2]
                                            cand = (syl[s1] + syl[s2]
                                                    + syl[s3]
                                                    if third[off2]
                                                    else syl[s1] + syl[s2])
                                            match = cand == stem2
                                        if match:
                                            n_excluded += 1
                                            continue

                    pack_append(packed | pack_lex)
                    vis_append(vis)
                    rank_rows += 1

                if rank_rows:
                    n_rows += rank_rows
                    rank_l.append(r)
                    nrows_l.append(rank_rows)
                    len_l.append(L)
                    tdigit_l.append(tgt_dig_frac)
                    tadj_l.append(tgt_adj_frac)
                    if len(packed_l) >= block_records and on_block is not None:
                        on_block((rank_l, nrows_l, len_l, tdigit_l,
                                  tadj_l, packed_l, vis_l))
                        rank_l, nrows_l, len_l = [], [], []
                        tdigit_l, tadj_l = [], []
                        packed_l, vis_l = [], []
                        pack_append = packed_l.append
                        vis_append = vis_l.append
            rank = block_stop

        if packed_l and on_block is not None:
            on_block((rank_l, nrows_l, len_l, tdigit_l, tadj_l,
                      packed_l, vis_l))
        if timing:
            perf.add_seconds("featurize.setup_seconds", setup_s)
            perf.add_seconds("featurize.walk_seconds",
                             perf_counter() - entry_t - setup_s)
            perf.count("featurize.ranks", stop_rank - start_rank)
            perf.count("featurize.rows", n_rows)
        return n_rows, n_excluded, generated


def _cumulative(weights: List[float]) -> Tuple[List[float], float]:
    """(inclusive cumulative sums, total) for bisect-based weighted draws."""
    cum: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cum.append(acc)
    if acc <= 0:
        raise ValueError("weights must have a positive sum")
    return cum, acc
