"""Incremental (delta) re-scans of the lazy typosquatting world.

A monitoring service re-scans the DL-1 typo space daily (the framing in
Spaulding et al.'s typosquatting-landscape survey); a full Alexa-1M
re-scan every day costs the whole universe even though registrations and
expirations touch a tiny fraction of ranks.  This module makes a re-scan
cost proportional to what *changed*:

* :class:`ChurnSchedule` derives each day's registration/expiration
  churn deterministically from ``(seed, day)`` — rank ``r`` churns on
  day ``d`` iff its day-``d`` uniform falls below the daily rate.  A
  churned rank's *generation* increments; the
  :class:`~repro.ecosystem.world.WorldModel` re-keys that rank's
  registration/wild/probe streams by generation, so its DL-1 grid
  re-rolls (some ctypos expire, others register) while every untouched
  rank stays byte-identical to day 0.
* :class:`ScanBaseline` persists a completed scan as per-rank-range
  sub-aggregates, each stamped with the *world digest* of its range (a
  hash of the churn generations inside it) — the same canonical-JSON +
  SHA-256 + atomic-write discipline as the scan checkpoint.
* :func:`delta_scan` evolves the world by N days, recomputes only the
  ranges whose world digest changed, merges with the retained ranges,
  and returns both the merged aggregates and an updated baseline.  The
  delta tests pin ``delta_scan(world@t1, baseline@t0)`` byte-identical
  to a from-scratch full scan of the day-``t1`` world.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.internet import InternetConfig
from repro.util.errors import CheckpointCorruptError, CheckpointMismatchError
from repro.util.perf import PerfRegistry

__all__ = [
    "SCAN_BASELINE_FORMAT",
    "ChurnSchedule",
    "WorldEvent",
    "WorldEvolution",
    "RangeRecord",
    "ScanBaseline",
    "DeltaScanResult",
    "build_scan_baseline",
    "delta_scan",
    "world_range_digest",
]

#: artifact format tag; bump when the on-disk schema changes
SCAN_BASELINE_FORMAT = "repro-scan-baseline@1"

_DEFAULT_RANGE_WIDTH = 1024


@dataclass(frozen=True)
class ChurnSchedule:
    """Deterministic daily registration/expiration churn.

    Day ``d``'s events are a pure function of ``(seed, d)``: rank ``r``
    churns on day ``d`` iff the ``r``-th uniform of the day-keyed
    "churn" stream falls below ``daily_rate``.  Generations accumulate
    across days, so the world at day ``N`` is independent of how many
    intermediate snapshots were taken along the way.
    """

    seed: int
    max_rank: int
    daily_rate: float = 0.004

    def __post_init__(self) -> None:
        if self.max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        if not 0.0 <= self.daily_rate <= 1.0:
            raise ValueError("daily_rate must be in [0, 1]")

    def day_events(self, day: int) -> List[int]:
        """The ranks that churn on ``day`` (1-based), ascending."""
        if day < 1:
            raise ValueError("days are 1-based")
        from repro.ecosystem.world import _rank_uniforms

        uniforms = _rank_uniforms(self.seed, "churn", day, self.max_rank)
        return (np.flatnonzero(uniforms < self.daily_rate) + 1).tolist()

    def generations(self, days: int) -> Dict[int, int]:
        """Cumulative churn map after ``days`` days: rank -> generation.

        Only churned ranks appear (generation >= 1); every absent rank
        is generation 0 — byte-identical to the day-0 world.
        """
        if days < 0:
            raise ValueError("days must be non-negative")
        if days == 0 or self.daily_rate == 0.0:
            return {}
        from repro.ecosystem.world import _rank_uniforms

        counts: Optional[np.ndarray] = None
        for day in range(1, days + 1):
            uniforms = _rank_uniforms(self.seed, "churn", day, self.max_rank)
            hits = uniforms < self.daily_rate
            counts = hits.astype(np.int64) if counts is None else counts + hits
        churned = np.flatnonzero(counts)
        return {int(position) + 1: int(counts[position])
                for position in churned}


@dataclass(frozen=True)
class WorldEvent:
    """One discrete ecosystem event applied on ``day``.

    The event churns each rank in ``[rank_lo, rank_hi]`` independently
    with probability ``rate``; whether rank ``r`` churns is a pure hash
    of ``(seed, name, r)`` (via :func:`~repro.util.rand.derive_seed`),
    so replay is byte-identical at any shard layout and independent of
    event ordering.  A churned rank's generation bumps by one — the
    same re-keying law :class:`ChurnSchedule` uses, so registrations,
    expirations, and re-registrations all fall out of the world model's
    generation streams.
    """

    name: str
    day: int
    rank_lo: int
    rank_hi: int
    rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event name must be non-empty")
        if self.day < 1:
            raise ValueError("event days are 1-based")
        if self.rank_lo < 1 or self.rank_hi < self.rank_lo:
            raise ValueError("need 1 <= rank_lo <= rank_hi")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def churned_ranks(self, seed: int) -> List[int]:
        """Ranks this event churns under ``seed`` (ascending)."""
        from repro.util.rand import derive_seed

        if self.rate <= 0.0:
            return []
        if self.rate >= 1.0:
            return list(range(self.rank_lo, self.rank_hi + 1))
        return [rank for rank in range(self.rank_lo, self.rank_hi + 1)
                if derive_seed(seed, f"event/{self.name}/{rank}") / 2**64
                < self.rate]


@dataclass(frozen=True)
class WorldEvolution:
    """Event-driven world evolution: daily churn + discrete events.

    Generalizes :class:`ChurnSchedule` — the same duck-typed surface
    (``seed`` / ``max_rank`` / ``generations(day)`` / ``day_events(day)``)
    the risk index's ``apply_delta`` / ``hot_swap`` consume, but the
    churn map at day ``d`` merges the background daily churn with every
    :class:`WorldEvent` whose day has arrived.  With ``daily_rate == 0``
    and no events it reproduces the static world exactly
    (``generations(d) == {}`` for all ``d``).
    """

    seed: int
    max_rank: int
    daily_rate: float = 0.0
    events: Tuple[WorldEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        if not 0.0 <= self.daily_rate <= 1.0:
            raise ValueError("daily_rate must be in [0, 1]")
        for event in self.events:
            if event.rank_hi > self.max_rank:
                raise ValueError(
                    f"event {event.name!r} reaches rank {event.rank_hi} "
                    f"beyond max_rank {self.max_rank}")

    def _base(self) -> ChurnSchedule:
        return ChurnSchedule(self.seed, self.max_rank, self.daily_rate)

    def day_events(self, day: int) -> List[int]:
        """Ranks that churn on ``day`` — background plus events, merged."""
        churned = set(self._base().day_events(day)
                      if self.daily_rate > 0.0 else [])
        if day < 1:
            raise ValueError("days are 1-based")
        for event in self.events:
            if event.day == day:
                churned.update(event.churned_ranks(self.seed))
        return sorted(churned)

    def generations(self, days: int) -> Dict[int, int]:
        """Cumulative churn map after ``days`` days: rank -> generation.

        Order-independent: each event contributes its own generation
        bumps on top of the background churn, so the day-``N`` world is
        a pure function of ``(seed, events with day <= N)``.
        """
        counts: Dict[int, int] = dict(self._base().generations(days))
        for event in self.events:
            if event.day <= days:
                for rank in event.churned_ranks(self.seed):
                    counts[rank] = counts.get(rank, 0) + 1
        return counts


def world_range_digest(seed: int, start_rank: int, stop_rank: int,
                       churn_map: Dict[int, int]) -> str:
    """SHA-256 of a rank range's world state (its churn generations).

    Two worlds produce identical scan aggregates over ``[start, stop)``
    whenever this digest matches: every stream a rank consumes is a pure
    function of ``(seed, purpose, rank, generation)``, and the digest
    covers exactly the generations inside the range.
    """
    events = sorted((rank, generation)
                    for rank, generation in churn_map.items()
                    if start_rank <= rank < stop_rank)
    payload = json.dumps(
        {"seed": seed, "start": start_rank, "stop": stop_rank,
         "events": events},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _jsonable(value):
    """JSON-clean projection of config values (enum keys become strings)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item)
                for key, item in sorted(value.items(),
                                        key=lambda pair: str(pair[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _config_digest(config: Optional[InternetConfig]) -> str:
    """Fingerprint of the world config baked into a baseline."""
    payload = json.dumps(_jsonable(asdict(config or InternetConfig())),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _width_ranges(max_rank: int, width: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges of ``width`` ranks covering
    ``1..max_rank`` (the last range may be shorter)."""
    if width < 1:
        raise ValueError("range_width must be >= 1")
    return [(start, min(start + width, max_rank + 1))
            for start in range(1, max_rank + 1, width)]


@dataclass(frozen=True)
class RangeRecord:
    """One persisted rank range: world digest + its sub-aggregates."""

    start_rank: int
    stop_rank: int
    world_digest: str
    aggregates: ScanAggregates

    def canonical_dict(self) -> Dict:
        return {
            "start": self.start_rank,
            "stop": self.stop_rank,
            "world_digest": self.world_digest,
            "digest": self.aggregates.digest(),
            "aggregates": self.aggregates.canonical_dict(),
        }


@dataclass(frozen=True)
class ScanBaseline:
    """A completed scan persisted as per-range sub-digests + aggregates.

    ``day`` is the churn day the baseline captures (0 = the pristine
    world); ``churn_rate`` rides along so a delta re-scan evolves the
    same world law the baseline was built against.  ``save``/``load``
    follow the checkpoint discipline: atomic tmp+fsync+rename writes,
    and loading validates the format tag, every per-range digest, and
    the merged total digest — corruption is a loud
    :class:`CheckpointCorruptError`, never a silently wrong count.
    """

    seed: int
    max_rank: int
    range_width: int
    day: int
    churn_rate: float
    config_digest: str
    ranges: Tuple[RangeRecord, ...]

    def total(self) -> ScanAggregates:
        """The merged aggregates over every range (exact addition)."""
        merged = ScanAggregates()
        for record in self.ranges:
            merged.merge(record.aggregates)
        return merged

    def total_digest(self) -> str:
        return self.total().digest()

    def canonical_dict(self) -> Dict:
        return {
            "format": SCAN_BASELINE_FORMAT,
            "seed": self.seed,
            "max_rank": self.max_rank,
            "range_width": self.range_width,
            "day": self.day,
            "churn_rate": self.churn_rate,
            "config_digest": self.config_digest,
            "total_digest": self.total_digest(),
            "ranges": [record.canonical_dict() for record in self.ranges],
        }

    def save(self, path: Union[str, Path]) -> None:
        """Atomically persist the baseline (tmp + flush + fsync + rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.canonical_dict(), sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScanBaseline":
        """Load and validate a baseline written by :meth:`save`.

        Unreadable JSON, a wrong/missing format tag, malformed ranges,
        or any digest mismatch (per-range or total) raises
        :class:`CheckpointCorruptError`.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValueError("baseline root is not an object")
        except (OSError, ValueError, UnicodeDecodeError) as error:
            raise CheckpointCorruptError(
                f"scan baseline {path} is unreadable ({error}); "
                f"rebuild it with a full scan") from error
        if data.get("format") != SCAN_BASELINE_FORMAT:
            raise CheckpointMismatchError(
                f"{path} has format {data.get('format')!r}, "
                f"expected {SCAN_BASELINE_FORMAT!r}")
        try:
            ranges = []
            for payload in data["ranges"]:
                aggregates = ScanAggregates.from_canonical_dict(
                    payload["aggregates"])
                if aggregates.digest() != payload["digest"]:
                    raise ValueError(
                        f"range [{payload['start']},{payload['stop']}) "
                        f"aggregates do not match their recorded digest")
                ranges.append(RangeRecord(
                    start_rank=int(payload["start"]),
                    stop_rank=int(payload["stop"]),
                    world_digest=str(payload["world_digest"]),
                    aggregates=aggregates))
            baseline = cls(
                seed=int(data["seed"]),
                max_rank=int(data["max_rank"]),
                range_width=int(data["range_width"]),
                day=int(data["day"]),
                churn_rate=float(data["churn_rate"]),
                config_digest=str(data["config_digest"]),
                ranges=tuple(ranges))
            if baseline.total_digest() != data["total_digest"]:
                raise ValueError("merged ranges do not match total_digest")
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise CheckpointCorruptError(
                f"scan baseline {path} is corrupt ({error}); "
                f"rebuild it with a full scan") from error
        return baseline


@dataclass(frozen=True)
class DeltaScanResult:
    """One incremental re-scan: merged totals + the evolved baseline."""

    aggregates: ScanAggregates
    baseline: ScanBaseline
    ranges_reused: int
    ranges_rescanned: int


def _scan_ranges(seed: int, max_rank: int,
                 ranges: Sequence[Tuple[int, int]],
                 churn_map: Dict[int, int],
                 config: Optional[InternetConfig],
                 jobs: Optional[int],
                 perf: Optional[PerfRegistry]) -> List[ScanAggregates]:
    """Scan each ``[start, stop)`` range of the churned world.

    Serial path reuses one :class:`WorldModel` (streams and filler
    chunks stay warm across ranges); ``jobs > 1`` fans ranges out as
    shard tasks through the same pool machinery as the sharded scan.
    """
    from repro.ecosystem.world import WorldModel

    if jobs is not None and jobs > 1 and len(ranges) > 1:
        from repro.experiment.parallel import (
            ScanShardTask,
            fold_shard_perf,
            run_scan_shard,
        )
        from repro.util.pool import parallel_map

        tasks = [ScanShardTask(seed=seed, start_rank=start, stop_rank=stop,
                               max_rank=max_rank, config=config,
                               churn=tuple(sorted(churn_map.items())),
                               collect_perf=perf is not None)
                 for start, stop in ranges]
        shards = parallel_map(run_scan_shard, tasks, jobs=jobs, perf=perf)
        for shard in shards:
            fold_shard_perf(perf, shard.perf)
        return [shard.aggregates for shard in shards]
    world = WorldModel(seed, config, churn=churn_map or None)
    return [world.scan_ranks(start, stop, max_rank=max_rank, perf=perf)
            for start, stop in ranges]


def build_scan_baseline(seed: int, max_rank: int, *,
                        range_width: int = _DEFAULT_RANGE_WIDTH,
                        day: int = 0, churn_rate: float = 0.004,
                        config: Optional[InternetConfig] = None,
                        jobs: Optional[int] = None,
                        perf: Optional[PerfRegistry] = None) -> ScanBaseline:
    """Full scan of the day-``day`` world, persisted range by range.

    The merged total is byte-identical to ``run_sharded_scan`` /
    ``WorldModel.scan_ranks`` over the same world (the delta tests pin
    this), so building a baseline costs one full scan — after which
    every re-scan pays only for churned ranges.
    """
    schedule = ChurnSchedule(seed, max_rank, churn_rate)
    churn_map = schedule.generations(day)
    ranges = _width_ranges(max_rank, range_width)
    per_range = _scan_ranges(seed, max_rank, ranges, churn_map, config,
                             jobs, perf)
    records = tuple(
        RangeRecord(start_rank=start, stop_rank=stop,
                    world_digest=world_range_digest(seed, start, stop,
                                                    churn_map),
                    aggregates=aggregates)
        for (start, stop), aggregates in zip(ranges, per_range))
    return ScanBaseline(seed=seed, max_rank=max_rank,
                        range_width=range_width, day=day,
                        churn_rate=churn_rate,
                        config_digest=_config_digest(config),
                        ranges=records)


def delta_scan(baseline: ScanBaseline, day: int, *,
               config: Optional[InternetConfig] = None,
               jobs: Optional[int] = None,
               perf: Optional[PerfRegistry] = None) -> DeltaScanResult:
    """Re-scan only the rank ranges that churned since ``baseline``.

    Evolves the baseline's world to churn day ``day``, compares each
    range's world digest against the persisted one, recomputes only the
    mismatches against the day-``day`` world, and merges with the
    retained ranges.  The merged aggregates are byte-identical to a
    from-scratch full scan of the day-``day`` world.
    """
    if _config_digest(config) != baseline.config_digest:
        raise CheckpointMismatchError(
            "baseline was built for a different world config")
    schedule = ChurnSchedule(baseline.seed, baseline.max_rank,
                             baseline.churn_rate)
    churn_map = schedule.generations(day)

    stale: List[Tuple[int, int]] = []
    digests: Dict[Tuple[int, int], str] = {}
    for record in baseline.ranges:
        key = (record.start_rank, record.stop_rank)
        digests[key] = world_range_digest(baseline.seed, record.start_rank,
                                          record.stop_rank, churn_map)
        if digests[key] != record.world_digest:
            stale.append(key)

    rescanned = dict(zip(stale, _scan_ranges(
        baseline.seed, baseline.max_rank, stale, churn_map, config,
        jobs, perf)))
    records = tuple(
        RangeRecord(start_rank=record.start_rank,
                    stop_rank=record.stop_rank,
                    world_digest=digests[(record.start_rank,
                                          record.stop_rank)],
                    aggregates=rescanned.get(
                        (record.start_rank, record.stop_rank),
                        record.aggregates))
        for record in baseline.ranges)
    evolved = ScanBaseline(
        seed=baseline.seed, max_rank=baseline.max_rank,
        range_width=baseline.range_width, day=day,
        churn_rate=baseline.churn_rate,
        config_digest=baseline.config_digest, ranges=records)
    if perf is not None:
        perf.count("delta.ranges_reused", len(records) - len(stale))
        perf.count("delta.ranges_rescanned", len(stale))
    return DeltaScanResult(
        aggregates=evolved.total(), baseline=evolved,
        ranges_reused=len(records) - len(stale),
        ranges_rescanned=len(stale))
