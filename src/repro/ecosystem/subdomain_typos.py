"""Subdomain-style typosquatting (paper §5.2, "SMTP and mail typos").

Some squatters skip the character-level game entirely and register the
*missing-dot* variants of service host names: ``smtpgmail.com`` for
``smtp.gmail.com``, ``mailgoogle.com`` for ``mail.google.com``.  The
paper found 41 SMTP-prefix and 366 mail-prefix registrations against
Alexa's top domains, privately registered — "inconsistent with trademark
protection", since defensive registrations point at the owner.

This module generates the candidate space, and analyses which candidates
a registry actually contains, mirroring the paper's counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.typogen import split_domain
from repro.dnssim import DomainRegistry
from repro.ecosystem.whois import WhoisDatabase

__all__ = ["SubdomainTypo", "generate_subdomain_typos",
           "find_registered_subdomain_typos", "SubdomainTypoReport"]

#: Service-host prefixes squatters target (the paper names smtp and mail;
#: webmail/mx/pop/imap round out the realistic candidate set).
SERVICE_PREFIXES = ("smtp", "mail", "webmail", "mx", "pop", "imap")


@dataclass(frozen=True)
class SubdomainTypo:
    """One missing-dot candidate: ``smtpgmail.com`` for ``smtp.gmail.com``."""

    domain: str          # the registrable missing-dot name
    target: str          # the legitimate base domain
    prefix: str          # which service host it mimics

    @property
    def mimicked_host(self) -> str:
        label, tld = split_domain(self.target)
        return f"{self.prefix}.{label}.{tld}"


def generate_subdomain_typos(targets: Iterable[str],
                             prefixes: Sequence[str] = SERVICE_PREFIXES
                             ) -> List[SubdomainTypo]:
    """The missing-dot candidate space over ``targets``."""
    out: List[SubdomainTypo] = []
    for target in targets:
        try:
            label, tld = split_domain(target)
        except ValueError:
            continue
        for prefix in prefixes:
            out.append(SubdomainTypo(domain=f"{prefix}{label}.{tld}",
                                     target=target, prefix=prefix))
    return out


@dataclass
class SubdomainTypoReport:
    """What the registry walk found (the paper's 41 + 366 numbers)."""

    registered: List[SubdomainTypo]
    private_count: int
    defensive_count: int   # registered by the target's own registrant

    def count_by_prefix(self) -> Dict[str, int]:
        """Registered missing-dot typos per service prefix."""
        counts: Dict[str, int] = {}
        for typo in self.registered:
            counts[typo.prefix] = counts.get(typo.prefix, 0) + 1
        return counts

    @property
    def suspicious_count(self) -> int:
        """Registered, not defensively — the paper's concern: private
        registration 'is inconsistent with trademark protection'."""
        return len(self.registered) - self.defensive_count


def find_registered_subdomain_typos(registry: DomainRegistry,
                                    whois: WhoisDatabase,
                                    targets: Iterable[str],
                                    prefixes: Sequence[str] = SERVICE_PREFIXES
                                    ) -> SubdomainTypoReport:
    """Walk the registry for missing-dot registrations of ``targets``."""
    registered: List[SubdomainTypo] = []
    private = defensive = 0
    for candidate in generate_subdomain_typos(targets, prefixes):
        registration = registry.get(candidate.domain)
        if registration is None:
            continue
        registered.append(candidate)
        record = whois.lookup(candidate.domain)
        if record is not None and record.is_private:
            private += 1
        target_registration = registry.get(candidate.target)
        if (target_registration is not None
                and registration.registrant_id
                == target_registration.registrant_id):
            defensive += 1
    return SubdomainTypoReport(registered=registered,
                               private_count=private,
                               defensive_count=defensive)
