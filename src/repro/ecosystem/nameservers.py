"""Suspicious name-server analysis (paper §5.2, "Suspicious name servers").

For every authoritative name-server operator, compute the ratio of
candidate-typo domains to all domains it serves.  The paper finds a ~4%
baseline (typos are everywhere), but a handful of operators — "cesspools"
— far exceed it, up to 89%, and those skew private-WHOIS with active
SMTP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.dnssim import DomainRegistry
from repro.ecosystem.whois import WhoisDatabase

__all__ = ["NameServerStats", "analyze_nameservers", "suspicious_nameservers"]


@dataclass(frozen=True)
class NameServerStats:
    """Typo-domain exposure of one name-server operator."""

    nameserver: str
    total_domains: int
    typo_domains: int
    private_typo_domains: int

    @property
    def typo_ratio(self) -> float:
        return self.typo_domains / self.total_domains if self.total_domains else 0.0

    @property
    def private_ratio_among_typos(self) -> float:
        if self.typo_domains == 0:
            return 0.0
        return self.private_typo_domains / self.typo_domains


def analyze_nameservers(registry: DomainRegistry, whois: WhoisDatabase,
                        ctypo_domains: Sequence[str],
                        benign_counts: Optional[Mapping[str, int]] = None
                        ) -> List[NameServerStats]:
    """Per-nameserver typo ratios over the whole registry.

    ``benign_counts`` adds aggregate benign-domain counts per operator —
    the stand-in for the rest of the .com zone file, which the paper read
    to compute each operator's denominator.
    """
    ctypos: Set[str] = {d.lower() for d in ctypo_domains}
    totals: Dict[str, int] = {}
    typo_counts: Dict[str, int] = {}
    private_counts: Dict[str, int] = {}
    for ns, count in (benign_counts or {}).items():
        totals[ns] = totals.get(ns, 0) + count

    for registration in registry:
        ns = registration.nameserver
        totals[ns] = totals.get(ns, 0) + 1
        if registration.domain in ctypos:
            typo_counts[ns] = typo_counts.get(ns, 0) + 1
            record = whois.lookup(registration.domain)
            if record is not None and record.is_private:
                private_counts[ns] = private_counts.get(ns, 0) + 1

    stats = [NameServerStats(nameserver=ns,
                             total_domains=totals[ns],
                             typo_domains=typo_counts.get(ns, 0),
                             private_typo_domains=private_counts.get(ns, 0))
             for ns in totals]
    stats.sort(key=lambda s: s.typo_ratio, reverse=True)
    return stats


def suspicious_nameservers(stats: Sequence[NameServerStats],
                           baseline_multiple: float = 4.0,
                           min_typo_domains: int = 50) -> List[NameServerStats]:
    """Operators whose typo ratio far exceeds the ecosystem baseline.

    ``baseline_multiple`` mirrors the paper's framing: the average ratio
    is ~4%, and name servers several times above it "can be viewed as
    catering to typosquatters".  ``min_typo_domains`` keeps corporate DNS
    that hosts a target's own defensive registrations (high ratio, tiny
    volume) out of the suspicious set.
    """
    total_domains = sum(s.total_domains for s in stats)
    total_typos = sum(s.typo_domains for s in stats)
    if total_domains == 0:
        return []
    baseline = total_typos / total_domains
    return [s for s in stats
            if s.typo_domains >= min_typo_domains
            and s.typo_ratio > baseline * baseline_multiple]
