"""The simulated Internet the ecosystem study scans (paper Section 5).

Builds a world with the generative processes behind the paper's findings,
so the *scans* in :mod:`repro.ecosystem.scanner` measure rather than
assume them:

* an Alexa-like ranked list of popular target domains (Zipf popularity),
  including the five projection targets and the study's email targets;
* candidate typo domains ("ctypos") registered in the wild, with
  registration probability increasing with target popularity and typo
  quality (squatters pick the good typos first);
* a heavily concentrated ownership structure: a handful of bulk
  registrants owning thousands of domains (top-14 own ~20% in the paper),
  a long tail of small squatters, defensive registrations by the targets
  themselves, and legitimate look-alike businesses;
* mail infrastructure concentration: bulk squatters park their domains'
  MX on a few privately-registered mail hosts (Table 6's ``b-io.co`` et
  al. serve 95% of accepting domains);
* "cesspool" name servers serving a far higher ratio of typo domains
  than normal DNS operators;
* an SMTP support mix matching Table 4 (many domains cannot receive mail
  at all, a third are unscannable, STARTTLS mostly works where mail is
  supported).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.targets import EMAIL_TARGETS
from repro.core.typogen import TypoCandidate, split_domain
from repro.dnssim import (
    DomainRegistry,
    RecordType,
    Registration,
    ResourceRecord,
    Zone,
)
from repro.ecosystem.whois import (
    PRIVACY_PROXIES,
    RegistrantPersona,
    WhoisDatabase,
    WhoisRecord,
)
from repro.smtpsim import HostBehavior, Network, SmtpServer, domain_policy
from repro.smtpsim.protocol import accept_all_policy
from repro.util.rand import SeededRng, derive_seed

__all__ = [
    "SmtpSupport",
    "OwnerType",
    "WildDomain",
    "InternetConfig",
    "SimulatedInternet",
    "build_internet",
    "SQUATTER_MX_POOL",
]


class SmtpSupport(enum.Enum):
    """Ground-truth SMTP capability of a wild domain (Table 4 categories)."""

    NO_DNS = "no_mx_or_a"              # registered, no MX and no A record
    NO_INFO = "no_info"                # records exist but scans get nothing
    NO_EMAIL = "no_email_support"      # host up, SMTP ports closed
    PLAIN = "smtp_no_starttls"         # SMTP works, STARTTLS not offered
    STARTTLS_ERRORS = "starttls_with_errors"
    STARTTLS_OK = "starttls_ok"

    @property
    def can_accept_mail(self) -> bool:
        return self in (SmtpSupport.PLAIN, SmtpSupport.STARTTLS_ERRORS,
                        SmtpSupport.STARTTLS_OK)


class OwnerType(enum.Enum):
    """Who registered a wild candidate typo domain, and why."""
    BULK_SQUATTER = "bulk_squatter"
    MEDIUM_SQUATTER = "medium_squatter"
    SMALL_SQUATTER = "small_squatter"
    DEFENSIVE = "defensive"        # registered by the target's owner
    LEGITIMATE = "legitimate"      # honest business at DL-1 by accident


#: The paper's Table 6 mail hosts with their share of accepting domains
#: and whether their STARTTLS implementation is broken (supplying the
#: "Supp. STARTTLS with errors" slice of Table 4 for bulk-parked domains).
SQUATTER_MX_POOL: Sequence[Tuple[str, float, bool]] = (
    ("b-io.co", 43.6, False),
    ("h-email.net", 18.5, False),
    ("mb5p.com", 10.1, False),
    ("m1bp.com", 8.7, False),
    ("mb1p.com", 7.7, True),
    ("hostedmxserver.com", 3.1, False),
    ("hope-mail.com", 2.4, True),
    ("m2bp.com", 1.3, False),
)

_CESSPOOL_NAMESERVERS = tuple(
    f"ns{i}.cheap-dns-{i}.example" for i in range(1, 9))
_NORMAL_NAMESERVERS = tuple(
    f"ns.hosting-{i:02d}.example" for i in range(1, 41))


@dataclass(frozen=True)
class AlexaEntry:
    """One row of the simulated Alexa ranking."""

    domain: str
    rank: int
    monthly_visitors: float


@dataclass
class WildDomain:
    """Ground truth about one registered ctypo in the wild."""

    domain: str
    target: str
    candidate: TypoCandidate
    owner_id: str
    owner_type: OwnerType
    support: SmtpSupport
    mx_domain: Optional[str]      # None => implicit MX via A record
    nameserver: str
    private_whois: bool
    ip: Optional[str]

    @property
    def is_squatting(self) -> bool:
        return self.owner_type in (OwnerType.BULK_SQUATTER,
                                   OwnerType.MEDIUM_SQUATTER,
                                   OwnerType.SMALL_SQUATTER)


@dataclass(frozen=True)
class InternetConfig:
    """Size and mixture knobs for the synthetic Internet."""

    num_filler_targets: int = 250
    #: registration probability for a rank-1 target's best typo; decays
    #: with rank and with typo quality.
    peak_registration_probability: float = 0.65
    rank_decay: float = 0.45
    bulk_registrant_count: int = 14
    medium_registrant_count: int = 50
    #: ownership mixture over registered squatter ctypos
    bulk_share: float = 0.18
    medium_share: float = 0.32
    defensive_fraction: float = 0.05
    legitimate_fraction: float = 0.06
    #: WHOIS privacy rates per owner class
    bulk_privacy_rate: float = 0.80
    small_privacy_rate: float = 0.35
    #: SMTP support mixtures (must sum to 1) per infrastructure class.
    #: Bulk squatters mostly park on the shared MX pool (whether STARTTLS
    #: works there is a property of the pool host, not drawn here).
    squatter_support_mix: Mapping[SmtpSupport, float] = field(
        default_factory=lambda: {
            SmtpSupport.NO_DNS: 0.06,
            SmtpSupport.NO_INFO: 0.24,
            SmtpSupport.NO_EMAIL: 0.03,
            SmtpSupport.STARTTLS_OK: 0.67,
        })
    longtail_support_mix: Mapping[SmtpSupport, float] = field(
        default_factory=lambda: {
            SmtpSupport.NO_DNS: 0.30,
            SmtpSupport.NO_INFO: 0.42,
            SmtpSupport.NO_EMAIL: 0.12,
            SmtpSupport.PLAIN: 0.002,
            SmtpSupport.STARTTLS_ERRORS: 0.098,
            SmtpSupport.STARTTLS_OK: 0.06,
        })
    #: how often a small squatter uses a cesspool DNS operator (bulk
    #: squatters always do)
    small_cesspool_rate: float = 0.12
    #: benign .com domains served per name-server operator — kept as
    #: aggregate counts (the paper read these off the .com zone file;
    #: materializing hundreds of thousands of zones would add nothing)
    benign_per_normal_nameserver: int = 8000
    benign_per_cesspool_nameserver: int = 200
    #: connection flakiness of small-squatter infrastructure (Table 5's
    #: huge timeout counts)
    longtail_timeout_probability: float = 0.72
    longtail_network_error_probability: float = 0.25
    #: how longtail mail servers treat unknown recipients: catch-all,
    #: per-domain, or bounce-everything (no catch-all configured)
    longtail_catch_all_rate: float = 0.30
    longtail_reject_all_rate: float = 0.25


#: Domain-resale inventory: registered to sell, not to collect mail.
_RESELLER_SUPPORT_MIX: Mapping[SmtpSupport, float] = {
    SmtpSupport.NO_DNS: 0.25,
    SmtpSupport.NO_INFO: 0.55,
    SmtpSupport.NO_EMAIL: 0.10,
    SmtpSupport.STARTTLS_OK: 0.10,
}

_PRONOUNCEABLE_ONSETS = ("br", "cl", "dr", "fl", "gr", "pl", "st", "tr",
                         "m", "n", "p", "r", "s", "t", "v", "z")
_PRONOUNCEABLE_VOWELS = ("a", "e", "i", "o", "u")


class SimulatedInternet:
    """The assembled world: registry, network, WHOIS, and ground truth."""

    def __init__(self, registry: DomainRegistry, network: Network,
                 whois: WhoisDatabase, alexa: List[AlexaEntry],
                 wild_domains: List[WildDomain],
                 registrants: Dict[str, RegistrantPersona],
                 nameserver_benign_counts: Optional[Dict[str, int]] = None) -> None:
        self.registry = registry
        self.network = network
        self.whois = whois
        self.alexa = alexa
        self.wild_domains = wild_domains
        self.registrants = registrants
        #: benign domains per name-server operator, kept as aggregate
        #: counts (stands in for the rest of the .com zone file)
        self.nameserver_benign_counts = nameserver_benign_counts or {}
        #: missing-dot registrations (smtpgmail.com-style, paper §5.2),
        #: populated by the builder
        self.subdomain_typo_domains: List[str] = []
        self._by_domain = {w.domain: w for w in wild_domains}
        # lookup indexes built once: rank by domain, domains by owner, and
        # the squatter subset — callers hit these in O(ctypos)-sized loops
        self._rank_by_domain = {e.domain: e.rank for e in alexa}
        self._by_owner: Dict[str, List[WildDomain]] = {}
        for w in wild_domains:
            self._by_owner.setdefault(w.owner_id, []).append(w)
        self._squatting = [w for w in wild_domains if w.is_squatting]

    def ground_truth(self, domain: str) -> Optional[WildDomain]:
        """The generative truth about one wild ctypo, or None."""
        return self._by_domain.get(domain.lower())

    def alexa_rank(self, domain: str) -> Optional[int]:
        """The simulated Alexa rank of a target domain, or None."""
        return self._rank_by_domain.get(domain)

    def squatting_domains(self) -> List[WildDomain]:
        """The ctypos owned by squatters (any size class)."""
        return list(self._squatting)

    def domains_of_owner(self, owner_id: str) -> List[WildDomain]:
        """All wild domains registered to one owner."""
        return list(self._by_owner.get(owner_id, ()))


def build_internet(rng: SeededRng,
                   config: Optional[InternetConfig] = None) -> SimulatedInternet:
    """Assemble the synthetic Internet.

    Since the paper-scale scan landed, the wild-domain law lives in
    :class:`repro.ecosystem.world.WorldModel`; this builder *materializes*
    that law — per-rank derived states become registry zones, SMTP
    servers, and WHOIS records — so a lazily scanned world and an eagerly
    built one agree on ground truth.  When one candidate string registers
    under several ranks, the lowest rank wins (the registry enforces it).
    """
    from repro.ecosystem.world import WorldModel

    config = config or InternetConfig()
    world = WorldModel(rng.seed, config)
    registry = DomainRegistry()
    network = Network(rng.child("network"))
    whois = WhoisDatabase()

    num_targets = len(EMAIL_TARGETS) + config.num_filler_targets
    alexa = world.alexa_entries(num_targets)
    _register_targets(rng, registry, network, whois, alexa)

    registrants: Dict[str, RegistrantPersona] = {}
    # The top three bulk registrants are public domain-resale businesses
    # (the paper: "companies whose business appears to be holding domain
    # names for sale ... not evidence of active malice"); the rest are
    # privately-registered collectors running the shared MX pool.
    bulk: List[Tuple[RegistrantPersona, str]] = []
    for i in range(config.bulk_registrant_count):
        registrant_id = f"bulk-{i:02d}"
        persona = world.persona(registrant_id)
        registrants[registrant_id] = persona
        bulk.append((persona, "reseller" if i < 3 else "collector"))
    for i in range(config.medium_registrant_count):
        registrant_id = f"medium-{i:03d}"
        registrants[registrant_id] = world.persona(registrant_id)

    allocator = _IpAllocator("203.0")
    mx_hosts = _materialize_squatter_mx(rng, registry, network, whois,
                                        registrants, allocator)
    _materialize_dark_mx(rng, registry, network, allocator)

    wild: List[WildDomain] = []
    for rank in range(1, num_targets + 1):
        for state in world.rank_states(rank):
            if registry.is_registered(state.domain):
                continue
            wild.append(_materialize_state(world, state, config, registry,
                                           network, whois, registrants,
                                           allocator))

    subdomain_typos = _register_subdomain_typos(
        rng.child("subdomain-typos"), config, registry, whois, alexa, bulk,
        mx_hosts)

    benign_counts: Dict[str, int] = {}
    for ns in _NORMAL_NAMESERVERS:
        benign_counts[ns] = config.benign_per_normal_nameserver
    for ns in _CESSPOOL_NAMESERVERS:
        benign_counts[ns] = config.benign_per_cesspool_nameserver

    internet = SimulatedInternet(registry, network, whois, alexa, wild,
                                 registrants,
                                 nameserver_benign_counts=benign_counts)
    internet.subdomain_typo_domains = subdomain_typos
    return internet


def _register_subdomain_typos(rng: SeededRng, config: InternetConfig,
                              registry: DomainRegistry,
                              whois: WhoisDatabase,
                              alexa: List[AlexaEntry],
                              bulk: List[Tuple[RegistrantPersona, str]],
                              mx_hosts: List[Tuple[str, float, bool]]
                              ) -> List[str]:
    """Missing-dot registrations (paper §5.2: smtpgmail.com & friends).

    Squatters register ``{prefix}{label}.{tld}`` variants of service host
    names for the most popular targets; nearly all are privately
    registered — the paper's tell that these are not defensive.
    """
    from repro.ecosystem.subdomain_typos import generate_subdomain_typos

    registered: List[str] = []
    top_targets = [entry.domain for entry in alexa[:30]]
    for candidate in generate_subdomain_typos(top_targets):
        rank = next(e.rank for e in alexa if e.domain == candidate.target)
        base_p = {"smtp": 0.5, "mail": 0.7, "mx": 0.25}.get(
            candidate.prefix, 0.15)
        if not rng.bernoulli(base_p / (rank ** 0.5)):
            continue
        if registry.is_registered(candidate.domain):
            continue
        owner, _ = rng.choice(bulk)
        zone = Zone(origin=candidate.domain)
        hosts = [h for h, _, _ in mx_hosts]
        weights = [w for _, w, _ in mx_hosts]
        zone.add(ResourceRecord(candidate.domain, RecordType.MX,
                                hosts[rng.weighted_index(weights)],
                                priority=10))
        registry.register(Registration(
            domain=candidate.domain, zone=zone,
            nameserver=rng.choice(_CESSPOOL_NAMESERVERS),
            registrant_id=owner.registrant_id))
        whois.add(WhoisRecord(domain=candidate.domain,
                              privacy_proxy=rng.choice(PRIVACY_PROXIES)))
        registered.append(candidate.domain)
    return registered


# -- builder internals -------------------------------------------------------


class _IpAllocator:
    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._next = 1

    def allocate(self) -> str:
        index = self._next
        self._next += 1
        high, low = divmod(index, 250)
        return f"{self._prefix}.{high % 250}.{low + 1}"


def _register_targets(rng: SeededRng, registry: DomainRegistry,
                      network: Network, whois: WhoisDatabase,
                      alexa: List[AlexaEntry]) -> None:
    allocator = _IpAllocator("198.18")
    for entry in alexa:
        ip = allocator.allocate()
        zone = Zone(origin=entry.domain)
        mx_host = f"mx.{entry.domain}"
        zone.add(ResourceRecord(entry.domain, RecordType.MX, mx_host,
                                priority=10))
        zone.add(ResourceRecord(mx_host, RecordType.A, ip))
        zone.add(ResourceRecord(entry.domain, RecordType.A, ip))
        registry.register(Registration(
            domain=entry.domain, zone=zone,
            nameserver=f"ns.{entry.domain}",
            registrant_id=f"owner-{entry.domain}"))
        server = SmtpServer(hostname=mx_host, ip=ip,
                            rcpt_policy=domain_policy([entry.domain]))
        network.attach(ip, server)
        whois.add(WhoisRecord(
            domain=entry.domain,
            registrant_name=f"{split_domain(entry.domain)[0].title()} Inc.",
            organization=f"{split_domain(entry.domain)[0].title()} Inc.",
            email=f"hostmaster@{entry.domain}",
            phone="+1.8005550100", fax="+1.8005550101",
            mailing_address="1 Corporate Way"))


def _materialize_squatter_mx(rng: SeededRng, registry: DomainRegistry,
                             network: Network, whois: WhoisDatabase,
                             registrants: Dict[str, RegistrantPersona],
                             allocator: _IpAllocator) -> List[Tuple[str, float, str]]:
    """Register the shared squatter mail hosts; returns (host, weight, ip)."""
    out = []
    for host, weight, starttls_broken in SQUATTER_MX_POOL:
        ip = allocator.allocate()
        zone = Zone(origin=host)
        zone.add(ResourceRecord(host, RecordType.A, ip))
        registry.register(Registration(domain=host, zone=zone,
                                       nameserver=_CESSPOOL_NAMESERVERS[0],
                                       registrant_id=f"mxop-{host}"))
        whois.add(WhoisRecord(domain=host,
                              privacy_proxy=rng.choice(PRIVACY_PROXIES)))
        server = SmtpServer(hostname=host, ip=ip,
                            rcpt_policy=accept_all_policy,
                            starttls_broken=starttls_broken)
        network.attach(ip, server,
                       behavior=HostBehavior(timeout_probability=0.03,
                                             network_error_probability=0.02))
        out.append((host, weight, starttls_broken))
    return out


def _materialize_dark_mx(rng: SeededRng, registry: DomainRegistry,
                         network: Network,
                         allocator: _IpAllocator) -> Dict[SmtpSupport, List[str]]:
    """Parked mail hosts whose scans go nowhere.

    ``NO_INFO`` hosts have an address that never answers (every probe
    times out); ``NO_EMAIL`` hosts are up but have no SMTP listener, so
    connections are refused.  Bulk squatters park non-mail domains here.
    """
    hosts: Dict[SmtpSupport, List[str]] = {
        SmtpSupport.NO_INFO: [], SmtpSupport.NO_EMAIL: []}
    for index in range(3):
        host = f"parked-mx-{index}.example"
        ip = allocator.allocate()
        zone = Zone(origin=host)
        zone.add(ResourceRecord(host, RecordType.A, ip))
        registry.register(Registration(domain=host, zone=zone,
                                       registrant_id=f"mxop-{host}"))
        network.set_behavior(ip, HostBehavior(timeout_probability=1.0))
        hosts[SmtpSupport.NO_INFO].append(host)
    for index in range(3):
        host = f"web-mx-{index}.example"
        ip = allocator.allocate()
        zone = Zone(origin=host)
        zone.add(ResourceRecord(host, RecordType.A, ip))
        registry.register(Registration(domain=host, zone=zone,
                                       registrant_id=f"mxop-{host}"))
        # no server attached: the port is closed, connections refused
        hosts[SmtpSupport.NO_EMAIL].append(host)
    return hosts


_EDIT_TYPE_QUALITY = {
    # squatters know deletion/transposition typos are the frequent ones
    # (Figure 9) and register essentially all of them for big targets
    "deletion": 6.0,
    "transposition": 5.0,
    "substitution": 1.0,
    "addition": 0.45,
}


def _typo_quality(candidate: TypoCandidate) -> float:
    """Squatters prefer frequent-mistake, invisible, fat-finger typos."""
    quality = _EDIT_TYPE_QUALITY.get(candidate.edit_type, 1.0)
    if candidate.is_fat_finger:
        quality *= 1.6
    quality *= max(0.2, 1.5 - candidate.normalized_visual * 3.0)
    return quality


def _reject_unknown_policy(recipient: str) -> Tuple[bool, str]:
    """A mail server without catch-all: every probe recipient is unknown."""
    return False, "user unknown"


_LONGTAIL_POLICIES = {
    "reject_unknown": lambda domain: _reject_unknown_policy,
    "catch_all": lambda domain: accept_all_policy,
    "domain": lambda domain: domain_policy([domain]),
}


def _materialize_state(world, state, config: InternetConfig,
                       registry: DomainRegistry, network: Network,
                       whois: WhoisDatabase,
                       registrants: Dict[str, RegistrantPersona],
                       allocator: _IpAllocator) -> WildDomain:
    """Turn one derived :class:`~repro.ecosystem.world.DomainState` into
    registry zones, SMTP hosts, and a WHOIS record."""
    domain = state.domain
    zone = Zone(origin=domain)
    ip: Optional[str] = None

    if state.owner_type is OwnerType.DEFENSIVE:
        zone.add(ResourceRecord(domain, RecordType.MX, state.mx_domain,
                                priority=10))
        registry.register(Registration(domain=domain, zone=zone,
                                       nameserver=state.nameserver,
                                       registrant_id=state.owner_id))
        target_whois = whois.lookup(state.target)
        whois.add(WhoisRecord(
            domain=domain,
            registrant_name=target_whois.registrant_name,
            organization=target_whois.organization,
            email=target_whois.email,
            phone=target_whois.phone, fax=target_whois.fax,
            mailing_address=target_whois.mailing_address))
        return _wild_from_state(state, ip)

    owner = registrants.get(state.owner_id)
    if owner is None:
        owner = world.persona(state.owner_id)
        registrants[state.owner_id] = owner

    if state.mx_domain is not None:
        zone.add(ResourceRecord(domain, RecordType.MX, state.mx_domain,
                                priority=10))
    if state.has_address:
        ip = allocator.allocate()
        zone.add(ResourceRecord(domain, RecordType.A, ip))
    registry.register(Registration(domain=domain, zone=zone,
                                   nameserver=state.nameserver,
                                   registrant_id=state.owner_id))

    if state.private_whois:
        whois.add(WhoisRecord(domain=domain,
                              privacy_proxy=state.privacy_proxy))
    elif state.whois_fields_filled >= 6:
        whois.add(owner.record_for(domain))
    else:
        whois.add(owner.record_for(
            domain, fields_filled=state.whois_fields_filled,
            rng=SeededRng(derive_seed(world.seed, f"whois-{domain}"))))

    if ip is not None:
        if state.owner_type is OwnerType.LEGITIMATE:
            # an honest business has real mailboxes: probes to made-up
            # users usually bounce, though some run catch-alls (the paper
            # found 8 legitimate look-alikes reading its honey mail)
            policy = _LONGTAIL_POLICIES[state.longtail_policy](domain)
            server = SmtpServer(hostname=domain, ip=ip, rcpt_policy=policy)
            network.attach(ip, server, behavior=HostBehavior(
                timeout_probability=0.05, network_error_probability=0.03))
        elif state.support is SmtpSupport.NO_INFO:
            # a listener might exist but scans never get through
            network.set_behavior(ip, HostBehavior(
                timeout_probability=0.97, network_error_probability=0.03))
        elif state.longtail_policy is not None:
            policy = _LONGTAIL_POLICIES[state.longtail_policy](domain)
            server = SmtpServer(
                hostname=domain, ip=ip, rcpt_policy=policy,
                supports_starttls=state.support is not SmtpSupport.PLAIN,
                starttls_broken=state.support is SmtpSupport.STARTTLS_ERRORS)
            network.attach(ip, server, behavior=HostBehavior(
                timeout_probability=config.longtail_timeout_probability,
                network_error_probability=(
                    config.longtail_network_error_probability)))
        # NO_EMAIL: the host exists but no SMTP listener is attached

    return _wild_from_state(state, ip)


def _wild_from_state(state, ip: Optional[str]) -> WildDomain:
    return WildDomain(domain=state.domain, target=state.target,
                      candidate=state.candidate(), owner_id=state.owner_id,
                      owner_type=state.owner_type, support=state.support,
                      mx_domain=state.mx_domain, nameserver=state.nameserver,
                      private_whois=state.private_whois, ip=ip)
