"""WHOIS records for the simulated Internet (paper Section 5.1).

The paper clusters typosquatting registrants by WHOIS: two domains belong
to the same entity when at least four of six fields match (registrant
name, organization, email, phone, fax, mailing address) — fake data is
fine for clustering as long as it is *consistently* fake.  Privacy-proxy
registrations replace all six fields with the proxy service's details and
are excluded from registrant clustering (but tabulated separately, e.g.
in Table 5's public/private split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.rand import SeededRng
from repro.workloads.textgen import FIRST_NAMES, LAST_NAMES

__all__ = ["WhoisRecord", "WhoisDatabase", "RegistrantPersona",
           "PRIVACY_PROXIES", "CLUSTER_FIELDS", "fields_match_count"]

#: The six fields used for registrant clustering (Halvorson et al. style).
CLUSTER_FIELDS = ("registrant_name", "organization", "email", "phone",
                  "fax", "mailing_address")

#: Well-known privacy/proxy services in the simulation.
PRIVACY_PROXIES = (
    "whoisguard.example", "domainsbyproxy.example", "privacyprotect.example",
)


@dataclass(frozen=True)
class WhoisRecord:
    """One domain's WHOIS data."""

    domain: str
    registrant_name: Optional[str] = None
    organization: Optional[str] = None
    email: Optional[str] = None
    phone: Optional[str] = None
    fax: Optional[str] = None
    mailing_address: Optional[str] = None
    privacy_proxy: Optional[str] = None   # set => a private registration
    registrar: str = "registrar.example"

    @property
    def is_private(self) -> bool:
        return self.privacy_proxy is not None

    def filled_field_count(self) -> int:
        """How many of the six cluster fields are present."""
        return sum(getattr(self, f) is not None for f in CLUSTER_FIELDS)

    def clusterable(self) -> bool:
        """The paper only clusters records with >= 4 of 6 fields filled."""
        return not self.is_private and self.filled_field_count() >= 4


def fields_match_count(a: WhoisRecord, b: WhoisRecord) -> int:
    """How many of the six cluster fields match (both filled and equal)."""
    count = 0
    for field_name in CLUSTER_FIELDS:
        value_a = getattr(a, field_name)
        value_b = getattr(b, field_name)
        if value_a is not None and value_a == value_b:
            count += 1
    return count


@dataclass(frozen=True)
class RegistrantPersona:
    """A (possibly fake) registrant identity, reused across their domains."""

    registrant_id: str
    registrant_name: str
    organization: str
    email: str
    phone: str
    fax: str
    mailing_address: str

    def record_for(self, domain: str, fields_filled: int = 6,
                   rng: Optional[SeededRng] = None) -> WhoisRecord:
        """A WHOIS record for one of this registrant's domains.

        ``fields_filled`` < 6 drops trailing fields, modelling sloppy
        registrations that the paper cannot cluster.
        """
        values: Dict[str, Optional[str]] = {
            "registrant_name": self.registrant_name,
            "organization": self.organization,
            "email": self.email,
            "phone": self.phone,
            "fax": self.fax,
            "mailing_address": self.mailing_address,
        }
        order = list(CLUSTER_FIELDS)
        if rng is not None:
            rng.shuffle(order)
        for field_name in order[fields_filled:]:
            values[field_name] = None
        return WhoisRecord(domain=domain, **values)


def make_registrant(rng: SeededRng, registrant_id: str) -> RegistrantPersona:
    """Mint a consistent registrant identity (fake but stable)."""
    first = rng.choice(FIRST_NAMES).title()
    last = rng.choice(LAST_NAMES).title()
    org = f"{last} {rng.choice(('Holdings', 'Media', 'Domains', 'Ventures', 'LLC'))}"
    return RegistrantPersona(
        registrant_id=registrant_id,
        registrant_name=f"{first} {last}",
        organization=org,
        email=f"{first.lower()}.{last.lower()}@{rng.token(6)}.example",
        phone=f"+1.{rng.randint(2000000000, 9899999999)}",
        fax=f"+1.{rng.randint(2000000000, 9899999999)}",
        mailing_address=f"{rng.randint(1, 9999)} {last} St, Suite {rng.randint(1, 400)}",
    )


class WhoisDatabase:
    """Domain → WHOIS record store with the paper's query semantics."""

    def __init__(self) -> None:
        self._records: Dict[str, WhoisRecord] = {}

    def add(self, record: WhoisRecord) -> None:
        """Store (or overwrite) one domain's WHOIS record."""
        self._records[record.domain.lower()] = record

    def lookup(self, domain: str) -> Optional[WhoisRecord]:
        """The WHOIS record of ``domain``, or None."""
        return self._records.get(domain.lower())

    def private_domains(self) -> List[str]:
        """Domains registered behind privacy proxies."""
        return sorted(d for d, r in self._records.items() if r.is_private)

    def clusterable_records(self) -> List[WhoisRecord]:
        """Records public enough to cluster (>= 4 of 6 fields)."""
        return [r for r in self._records.values() if r.clusterable()]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._records
