"""Scanning the wild typosquatting ecosystem (paper Section 5.1).

The paper's pipeline: generate all DL-1 variations of the Alexa top list,
keep the registered ones ("ctypos"), collect their MX and A records, and
probe the SMTP endpoint zmap-style to classify mail support (Table 4).
The scanner here runs the same pipeline against the simulated Internet,
discovering — not assuming — the support categories, the MX
concentration, and the candidate set the honey campaign later mails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.typogen import TypoCandidate, TypoGenerator
from repro.dnssim import Resolver
from repro.ecosystem.internet import SimulatedInternet, SmtpSupport
from repro.smtpsim.transport import ConnectOutcome

__all__ = ["ScanResult", "EcosystemScan", "EcosystemScanner"]


@dataclass(frozen=True)
class ScanResult:
    """Everything the scanner learned about one ctypo."""

    domain: str
    target: str
    candidate: TypoCandidate
    mx_hosts: Tuple[str, ...]
    addresses: Tuple[str, ...]
    used_implicit_mx: bool
    support: SmtpSupport
    nameserver: Optional[str]
    whois_private: bool

    @property
    def primary_mx_domain(self) -> Optional[str]:
        """The registrable domain of the best-priority MX (Table 6 key)."""
        if not self.mx_hosts:
            return None
        host = self.mx_hosts[0]
        labels = host.split(".")
        if len(labels) <= 2:
            return host
        return ".".join(labels[-2:])


@dataclass
class EcosystemScan:
    """A completed scan over the candidate typo space."""

    results: List[ScanResult] = field(default_factory=list)
    generated_count: int = 0   # gtypos enumerated
    registered_count: int = 0  # ctypos found registered

    def support_table(self) -> Dict[SmtpSupport, int]:
        """Table 4: count of ctypos per SMTP support category."""
        counts = {support: 0 for support in SmtpSupport}
        for result in self.results:
            counts[result.support] += 1
        return counts

    def support_percentages(self) -> Dict[SmtpSupport, float]:
        """Table 4 as percentages of all scanned ctypos."""
        total = len(self.results)
        if total == 0:
            return {support: 0.0 for support in SmtpSupport}
        return {support: 100.0 * count / total
                for support, count in self.support_table().items()}

    def accepting_results(self) -> List[ScanResult]:
        """The ctypos whose support class can accept mail."""
        return [r for r in self.results if r.support.can_accept_mail]

    def mx_domain_counts(self) -> Dict[str, int]:
        """How many ctypos each MX operator domain serves."""
        counts: Dict[str, int] = {}
        for result in self.results:
            mx = result.primary_mx_domain
            if mx is not None:
                counts[mx] = counts.get(mx, 0) + 1
        return counts

    def results_for_targets(self, targets: Sequence[str]) -> List[ScanResult]:
        """Scan results restricted to typos of the given targets."""
        wanted = set(targets)
        return [r for r in self.results if r.target in wanted]


class EcosystemScanner:
    """Runs the §5.1 methodology against a :class:`SimulatedInternet`.

    ``probe_attempts`` models zmap-style repeat probing: a single timeout
    does not condemn a host; only a host that never answers is "no info".
    """

    def __init__(self, internet: SimulatedInternet,
                 probe_attempts: int = 3) -> None:
        self._internet = internet
        self._resolver = Resolver(internet.registry)
        self._generator = TypoGenerator()
        self.probe_attempts = probe_attempts

    # -- the full pipeline ------------------------------------------------------

    def scan(self, targets: Optional[Sequence[str]] = None,
             exclude: Sequence[str] = ()) -> EcosystemScan:
        """Enumerate gtypos of ``targets``, keep ctypos, classify support.

        ``targets`` defaults to the whole simulated Alexa list; ``exclude``
        removes e.g. the study's own domains from consideration.
        """
        if targets is None:
            targets = [entry.domain for entry in self._internet.alexa]
        excluded = {d.lower() for d in exclude}
        scan = EcosystemScan()

        for target in targets:
            for candidate in self._generator.generate(target):
                scan.generated_count += 1
                domain = candidate.domain
                if domain in excluded:
                    continue
                if not self._internet.registry.is_registered(domain):
                    continue
                scan.registered_count += 1
                scan.results.append(self._scan_domain(candidate))
        return scan

    # -- per-domain probing --------------------------------------------------------

    def _scan_domain(self, candidate: TypoCandidate) -> ScanResult:
        domain = candidate.domain
        mx_hosts = tuple(self._resolver.resolve_mx(domain))
        direct_a = tuple(self._resolver.resolve_a(domain))

        registration = self._internet.registry.get(domain)
        nameserver = registration.nameserver if registration else None
        whois_record = self._internet.whois.lookup(domain)
        whois_private = bool(whois_record and whois_record.is_private)

        # RFC 5321: use MX; in its absence fall back to the A record.
        if mx_hosts:
            addresses: Tuple[str, ...] = tuple(
                address for host in mx_hosts
                for address in self._resolver.resolve_a(host))
            used_implicit = False
        else:
            addresses = direct_a
            used_implicit = True

        support = self._classify_support(mx_hosts, direct_a, addresses)
        return ScanResult(domain=domain, target=candidate.target,
                          candidate=candidate, mx_hosts=mx_hosts,
                          addresses=addresses,
                          used_implicit_mx=used_implicit and bool(direct_a),
                          support=support, nameserver=nameserver,
                          whois_private=whois_private)

    def _classify_support(self, mx_hosts: Tuple[str, ...],
                          direct_a: Tuple[str, ...],
                          addresses: Tuple[str, ...]) -> SmtpSupport:
        if not mx_hosts and not direct_a:
            return SmtpSupport.NO_DNS
        if not addresses:
            # an MX that resolves to nothing cannot be scanned
            return SmtpSupport.NO_INFO
        return self._probe(addresses[0])

    def _probe(self, ip: str) -> SmtpSupport:
        """zmap-style SMTP probe with retries."""
        network = self._internet.network
        refused = False
        for _ in range(self.probe_attempts):
            connection = network.connect(ip, port=25)
            if connection.outcome is ConnectOutcome.REFUSED:
                refused = True
                continue
            if connection.outcome in (ConnectOutcome.TIMEOUT,
                                      ConnectOutcome.NETWORK_ERROR,
                                      ConnectOutcome.OTHER_ERROR):
                continue
            return self._starttls_check(connection.server)
        return SmtpSupport.NO_EMAIL if refused else SmtpSupport.NO_INFO

    def _starttls_check(self, server) -> SmtpSupport:
        session = server.open_session()
        session.banner()
        ehlo = session.command("EHLO scanner.study.example")
        if not ehlo.is_success:
            return SmtpSupport.STARTTLS_ERRORS
        if "STARTTLS" not in ehlo.text:
            return SmtpSupport.PLAIN
        reply = session.command("STARTTLS")
        session.command("QUIT")
        if reply.code == 220:
            return SmtpSupport.STARTTLS_OK
        return SmtpSupport.STARTTLS_ERRORS
