"""Scanning the wild typosquatting ecosystem (paper Section 5.1).

The paper's pipeline: generate all DL-1 variations of the Alexa top list,
keep the registered ones ("ctypos"), collect their MX and A records, and
probe the SMTP endpoint zmap-style to classify mail support (Table 4).
The scanner here runs the same pipeline against the simulated Internet,
discovering — not assuming — the support categories, the MX
concentration, and the candidate set the honey campaign later mails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.typogen import TypoCandidate, TypoGenerator, registrable_domain
from repro.dnssim import Resolver
from repro.ecosystem.aggregates import ScanAggregates
from repro.ecosystem.internet import SimulatedInternet, SmtpSupport
from repro.smtpsim.transport import ConnectOutcome

__all__ = ["ScanResult", "EcosystemScan", "EcosystemScanner"]


@dataclass(frozen=True)
class ScanResult:
    """Everything the scanner learned about one ctypo."""

    domain: str
    target: str
    candidate: TypoCandidate
    mx_hosts: Tuple[str, ...]
    addresses: Tuple[str, ...]
    used_implicit_mx: bool
    support: SmtpSupport
    nameserver: Optional[str]
    whois_private: bool

    @property
    def primary_mx_domain(self) -> Optional[str]:
        """The registrable domain of the best-priority MX (Table 6 key).

        Uses the same public-suffix handling as ``split_domain``, so an
        MX at ``mx1.foo.co.uk`` groups under ``foo.co.uk`` — a naive
        last-two-labels split would misgroup it under ``co.uk``.
        """
        if not self.mx_hosts:
            return None
        return registrable_domain(self.mx_hosts[0])


@dataclass
class EcosystemScan:
    """A completed scan over the candidate typo space.

    The Table 4 / Table 6 counts live in streaming :class:`ScanAggregates`
    so they exist whether or not per-domain :class:`ScanResult` objects
    were retained.  Retention (the default for the in-memory scanner) is
    what the clustering and honey-campaign stages consume; the paper-scale
    streaming path switches it off.
    """

    aggregates: ScanAggregates = field(default_factory=ScanAggregates)
    results: List[ScanResult] = field(default_factory=list)
    retained: bool = True

    @property
    def generated_count(self) -> int:
        """gtypos enumerated."""
        return self.aggregates.generated_count

    @property
    def registered_count(self) -> int:
        """ctypos found registered."""
        return self.aggregates.registered_count

    def support_table(self) -> Dict[SmtpSupport, int]:
        """Table 4: count of ctypos per SMTP support category."""
        return self.aggregates.support_table()

    def support_percentages(self) -> Dict[SmtpSupport, float]:
        """Table 4 as percentages of all scanned ctypos."""
        return self.aggregates.support_percentages()

    def mx_domain_counts(self) -> Dict[str, int]:
        """How many ctypos each MX operator domain serves."""
        return dict(self.aggregates.mx_domain_counts)

    def _require_results(self, caller: str) -> None:
        if not self.retained:
            raise RuntimeError(
                f"{caller} needs per-domain results; this scan ran with "
                "retain_results=False (streaming aggregates only)")

    def accepting_results(self) -> List[ScanResult]:
        """The ctypos whose support class can accept mail."""
        self._require_results("accepting_results")
        return [r for r in self.results if r.support.can_accept_mail]

    def results_for_targets(self, targets: Sequence[str]) -> List[ScanResult]:
        """Scan results restricted to typos of the given targets."""
        self._require_results("results_for_targets")
        wanted = set(targets)
        return [r for r in self.results if r.target in wanted]


class EcosystemScanner:
    """Runs the §5.1 methodology against a :class:`SimulatedInternet`.

    ``probe_attempts`` models zmap-style repeat probing: a single timeout
    does not condemn a host; only a host that never answers is "no info".
    """

    def __init__(self, internet: SimulatedInternet,
                 probe_attempts: int = 3) -> None:
        self._internet = internet
        self._resolver = Resolver(internet.registry)
        self._generator = TypoGenerator()
        self.probe_attempts = probe_attempts

    # -- the full pipeline ------------------------------------------------------

    def scan(self, targets: Optional[Sequence[str]] = None,
             exclude: Sequence[str] = (),
             retain_results: bool = True) -> EcosystemScan:
        """Enumerate gtypos of ``targets``, keep ctypos, classify support.

        ``targets`` defaults to the whole simulated Alexa list; ``exclude``
        removes e.g. the study's own domains from consideration.  With
        ``retain_results=False`` only the streaming aggregates are kept —
        no per-domain objects survive the loop.
        """
        if targets is None:
            targets = [entry.domain for entry in self._internet.alexa]
        excluded = {d.lower() for d in exclude}
        scan = EcosystemScan(retained=retain_results)

        for target in targets:
            for candidate in self._generator.generate(target):
                scan.aggregates.add_generated()
                domain = candidate.domain
                if domain in excluded:
                    continue
                if not self._internet.registry.is_registered(domain):
                    continue
                result = self._scan_domain(candidate)
                self._fold(scan.aggregates, result)
                if retain_results:
                    scan.results.append(result)
        return scan

    def _fold(self, aggregates: ScanAggregates, result: ScanResult) -> None:
        """Fold one probed ctypo into the streaming aggregates."""
        truth = self._internet.ground_truth(result.domain)
        aggregates.add_result(
            target=result.target,
            owner_id=truth.owner_id if truth else result.domain,
            owner_type=truth.owner_type if truth else None,
            truth_support=truth.support if truth else result.support,
            observed_support=result.support,
            mx_domain=result.primary_mx_domain,
            used_implicit_mx=result.used_implicit_mx,
            whois_private=result.whois_private,
            track_owner_id=bool(truth) and truth.owner_type.value in (
                "bulk_squatter", "medium_squatter"))

    # -- per-domain probing --------------------------------------------------------

    def _scan_domain(self, candidate: TypoCandidate) -> ScanResult:
        domain = candidate.domain
        mx_hosts = tuple(self._resolver.resolve_mx(domain))
        direct_a = tuple(self._resolver.resolve_a(domain))

        registration = self._internet.registry.get(domain)
        nameserver = registration.nameserver if registration else None
        whois_record = self._internet.whois.lookup(domain)
        whois_private = bool(whois_record and whois_record.is_private)

        # RFC 5321: use MX; in its absence fall back to the A record.
        if mx_hosts:
            addresses: Tuple[str, ...] = tuple(
                address for host in mx_hosts
                for address in self._resolver.resolve_a(host))
            used_implicit = False
        else:
            addresses = direct_a
            used_implicit = True

        support = self._classify_support(mx_hosts, direct_a, addresses)
        return ScanResult(domain=domain, target=candidate.target,
                          candidate=candidate, mx_hosts=mx_hosts,
                          addresses=addresses,
                          used_implicit_mx=used_implicit and bool(direct_a),
                          support=support, nameserver=nameserver,
                          whois_private=whois_private)

    def _classify_support(self, mx_hosts: Tuple[str, ...],
                          direct_a: Tuple[str, ...],
                          addresses: Tuple[str, ...]) -> SmtpSupport:
        if not mx_hosts and not direct_a:
            return SmtpSupport.NO_DNS
        if not addresses:
            # an MX that resolves to nothing cannot be scanned
            return SmtpSupport.NO_INFO
        return self._probe(addresses[0])

    def _probe(self, ip: str) -> SmtpSupport:
        """zmap-style SMTP probe with retries."""
        network = self._internet.network
        refused = False
        for _ in range(self.probe_attempts):
            connection = network.connect(ip, port=25)
            if connection.outcome is ConnectOutcome.REFUSED:
                refused = True
                continue
            if connection.outcome in (ConnectOutcome.TIMEOUT,
                                      ConnectOutcome.NETWORK_ERROR,
                                      ConnectOutcome.OTHER_ERROR):
                continue
            return self._starttls_check(connection.server)
        return SmtpSupport.NO_EMAIL if refused else SmtpSupport.NO_INFO

    def _starttls_check(self, server) -> SmtpSupport:
        session = server.open_session()
        session.banner()
        ehlo = session.command("EHLO scanner.study.example")
        if not ehlo.is_success:
            return SmtpSupport.STARTTLS_ERRORS
        if "STARTTLS" not in ehlo.text:
            return SmtpSupport.PLAIN
        reply = session.command("STARTTLS")
        session.command("QUIT")
        if reply.code == 220:
            return SmtpSupport.STARTTLS_OK
        return SmtpSupport.STARTTLS_ERRORS
