"""Mergeable streaming aggregates for the ecosystem scan (paper §5.1).

At paper scale the scan enumerates hundreds of millions of gtypos; holding
a :class:`~repro.ecosystem.scanner.ScanResult` per registered ctypo is the
memory wall.  The streaming pipeline folds every observation into a
:class:`ScanAggregates` instead — the counts behind Table 4 (SMTP support
mix), Table 6 (MX-provider concentration), and the Figure 8 ownership
analysis — and shards merge by exact integer addition, so the fold is
associative and the serial and sharded scans produce byte-identical
digests.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ecosystem.internet import OwnerType, SmtpSupport

__all__ = ["ScanAggregates"]


@dataclass
class ScanAggregates:
    """Counts folded over a scan; merge is exact integer addition."""

    generated_count: int = 0   # gtypos enumerated (after dedup/validity)
    registered_count: int = 0  # ctypos found registered
    #: Table 4 — SMTP support as *observed* by the probes
    support_counts: Counter = field(default_factory=Counter)
    #: ground-truth support of the same domains (what a perfect scan sees)
    truth_support_counts: Counter = field(default_factory=Counter)
    #: Table 6 — ctypos per MX operator (registrable domain of best MX)
    mx_domain_counts: Counter = field(default_factory=Counter)
    #: Figure 8 — ctypos per bulk/medium registrant (bounded key space);
    #: the long tail of one-domain owners is kept as class totals below
    owner_domain_counts: Counter = field(default_factory=Counter)
    #: ctypos per owner class (bulk/medium/small/defensive/legitimate)
    owner_type_counts: Counter = field(default_factory=Counter)
    #: registered ctypos per target domain
    per_target_counts: Counter = field(default_factory=Counter)
    whois_private_count: int = 0
    implicit_mx_count: int = 0

    # -- folding -----------------------------------------------------------

    def add_generated(self, count: int = 1) -> None:
        self.generated_count += count

    def add_result(self, target: str, owner_id: str,
                   owner_type: Optional[OwnerType],
                   truth_support: SmtpSupport, observed_support: SmtpSupport,
                   mx_domain: Optional[str], used_implicit_mx: bool,
                   whois_private: bool, track_owner_id: bool) -> None:
        """Fold one registered-ctypo observation into the counts.

        ``owner_type=None`` marks a registered domain with no wild-domain
        ground truth (e.g. a DL-1 coincidence with infrastructure hosts).
        """
        self.registered_count += 1
        self.support_counts[observed_support.value] += 1
        self.truth_support_counts[truth_support.value] += 1
        if mx_domain is not None:
            self.mx_domain_counts[mx_domain] += 1
        if track_owner_id:
            self.owner_domain_counts[owner_id] += 1
        self.owner_type_counts[
            owner_type.value if owner_type else "unknown"] += 1
        self.per_target_counts[target] += 1
        if whois_private:
            self.whois_private_count += 1
        if used_implicit_mx:
            self.implicit_mx_count += 1

    def fold_flat(self, generated: int, registered: int,
                  support_l, truth_l, owner_type_l,
                  support_value_by_code, owner_value_by_code,
                  mx_counts: Dict[str, int],
                  owner_domain_counts: Dict[str, int],
                  per_target_counts: Dict[str, int],
                  whois_private: int, implicit_mx: int) -> "ScanAggregates":
        """Fold one scan window's pre-sized flat tallies in one pass.

        ``WorldModel.scan_ranks`` accumulates the closed categorical
        codes into flat index lists and the open key spaces (MX
        operators, owners, targets) into plain dicts; this folds them
        with the same exact-addition semantics as :meth:`merge`, keeping
        Counter hashing out of the per-record hot path.
        """
        self.generated_count += generated
        self.registered_count += registered
        self.support_counts.update(
            {support_value_by_code[i]: v
             for i, v in enumerate(support_l) if v})
        self.truth_support_counts.update(
            {support_value_by_code[i]: v
             for i, v in enumerate(truth_l) if v})
        self.mx_domain_counts.update(mx_counts)
        self.owner_domain_counts.update(owner_domain_counts)
        self.owner_type_counts.update(
            {owner_value_by_code[i]: v
             for i, v in enumerate(owner_type_l) if v})
        self.per_target_counts.update(per_target_counts)
        self.whois_private_count += whois_private
        self.implicit_mx_count += implicit_mx
        return self

    def merge(self, other: "ScanAggregates") -> "ScanAggregates":
        """Fold ``other`` into this aggregate (exact, associative)."""
        self.generated_count += other.generated_count
        self.registered_count += other.registered_count
        self.support_counts.update(other.support_counts)
        self.truth_support_counts.update(other.truth_support_counts)
        self.mx_domain_counts.update(other.mx_domain_counts)
        self.owner_domain_counts.update(other.owner_domain_counts)
        self.owner_type_counts.update(other.owner_type_counts)
        self.per_target_counts.update(other.per_target_counts)
        self.whois_private_count += other.whois_private_count
        self.implicit_mx_count += other.implicit_mx_count
        return self

    # -- views -------------------------------------------------------------

    def support_table(self) -> Dict[SmtpSupport, int]:
        """Table 4: observed count of ctypos per SMTP support category."""
        return {support: self.support_counts.get(support.value, 0)
                for support in SmtpSupport}

    def support_percentages(self) -> Dict[SmtpSupport, float]:
        """Table 4 as percentages of all scanned ctypos."""
        total = self.registered_count
        if total == 0:
            return {support: 0.0 for support in SmtpSupport}
        return {support: 100.0 * count / total
                for support, count in self.support_table().items()}

    def accepting_count(self) -> int:
        """Observed ctypos whose support class can accept mail."""
        return sum(count for support, count in self.support_table().items()
                   if support.can_accept_mail)

    # -- determinism -------------------------------------------------------

    def canonical_dict(self) -> Dict:
        """A canonical (sorted, JSON-clean) projection of every count."""
        return {
            "generated_count": self.generated_count,
            "registered_count": self.registered_count,
            "support_counts": dict(sorted(self.support_counts.items())),
            "truth_support_counts": dict(
                sorted(self.truth_support_counts.items())),
            "mx_domain_counts": dict(sorted(self.mx_domain_counts.items())),
            "owner_domain_counts": dict(
                sorted(self.owner_domain_counts.items())),
            "owner_type_counts": dict(sorted(self.owner_type_counts.items())),
            "per_target_counts": dict(sorted(self.per_target_counts.items())),
            "whois_private_count": self.whois_private_count,
            "implicit_mx_count": self.implicit_mx_count,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical counts — the serial==sharded bar."""
        payload = json.dumps(self.canonical_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_canonical_dict(cls, data: Dict) -> "ScanAggregates":
        """Inverse of :meth:`canonical_dict` (checkpoint/resume round-trip).

        Round-tripping preserves the digest exactly, so resumed shards
        are indistinguishable from freshly scanned ones.
        """
        return cls(
            generated_count=int(data["generated_count"]),
            registered_count=int(data["registered_count"]),
            support_counts=Counter(data.get("support_counts", {})),
            truth_support_counts=Counter(data.get("truth_support_counts", {})),
            mx_domain_counts=Counter(data.get("mx_domain_counts", {})),
            owner_domain_counts=Counter(data.get("owner_domain_counts", {})),
            owner_type_counts=Counter(data.get("owner_type_counts", {})),
            per_target_counts=Counter(data.get("per_target_counts", {})),
            whois_private_count=int(data.get("whois_private_count", 0)),
            implicit_mx_count=int(data.get("implicit_mx_count", 0)),
        )
