"""Zone-file text format: serialisation and parsing.

:meth:`~repro.dnssim.zone.Zone.zone_file` renders the paper's Table 1
layout; this module completes the round trip, so zones can be stored,
diffed, and reloaded as text — the interchange format a real deployment
would use with its registrar's DNS console.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dnssim.records import RecordType, ResourceRecord
from repro.dnssim.zone import Zone

__all__ = ["parse_zone_file", "ZoneFileError"]

_HEADER = "FQDN\tTTL\tTYPE\tpriority\trecord"


class ZoneFileError(ValueError):
    """Raised for malformed zone-file text."""


def parse_zone_file(text: str, origin: Optional[str] = None) -> Zone:
    """Parse the Table-1-style tab-separated format back into a Zone.

    ``origin`` defaults to the shortest apex among the record names (the
    non-wildcard name every other name falls under); pass it explicitly
    when the zone holds only wildcard records.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ZoneFileError("empty zone file")
    if lines[0].strip() == _HEADER:
        lines = lines[1:]

    records: List[ResourceRecord] = []
    for line_number, line in enumerate(lines, start=2):
        fields = line.rstrip().split("\t")
        if len(fields) != 5:
            raise ZoneFileError(
                f"line {line_number}: expected 5 tab-separated fields, "
                f"got {len(fields)}")
        fqdn, ttl_text, type_text, priority_text, value = fields
        try:
            rtype = RecordType(type_text.strip())
        except ValueError as error:
            raise ZoneFileError(
                f"line {line_number}: unknown record type "
                f"{type_text!r}") from error
        try:
            ttl = int(ttl_text)
        except ValueError as error:
            raise ZoneFileError(
                f"line {line_number}: bad TTL {ttl_text!r}") from error
        if priority_text.strip() in ("NA", ""):
            priority = 0
        else:
            try:
                priority = int(priority_text)
            except ValueError as error:
                raise ZoneFileError(
                    f"line {line_number}: bad priority "
                    f"{priority_text!r}") from error
        name = fqdn.rstrip(".")
        record_value = value.rstrip(".") if rtype is not RecordType.TXT \
            else value
        try:
            records.append(ResourceRecord(name, rtype, record_value,
                                          ttl=ttl, priority=priority))
        except ValueError as error:
            raise ZoneFileError(f"line {line_number}: {error}") from error

    if origin is None:
        apexes = [r.name for r in records if not r.is_wildcard]
        if not apexes:
            raise ZoneFileError(
                "cannot infer origin from wildcard-only zone; pass origin=")
        origin = min(apexes, key=len)

    return Zone(origin=origin, records=records)
