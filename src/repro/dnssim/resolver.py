"""The stub resolver used by every simulated client.

Implements the part of RFC 5321 section 5.1 the study depends on: to find
the mail exchanger for a domain, query MX; in the *absence* of MX records,
fall back to the domain's A record ("implicit MX").  The ecosystem scan
(paper Section 5.1) applies exactly this rule when deciding whether a
candidate typo domain can receive mail.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dnssim.records import RecordType, normalize_name
from repro.dnssim.registry import DomainRegistry

__all__ = ["Resolver", "MailRoute", "ResolutionStatus"]


class ResolutionStatus(enum.Enum):
    """Outcome of resolving a domain's mail route."""
    OK = "ok"                      # mail hosts found
    NXDOMAIN = "nxdomain"          # no such domain registered
    NO_MAIL_HOST = "no_mail_host"  # registered, but neither MX nor A
    SERVFAIL = "servfail"          # transient server failure (retryable)
    TIMEOUT = "timeout"            # query timed out (retryable)

    @property
    def is_transient(self) -> bool:
        """Whether a real resolver would retry rather than treat as final."""
        return self in (ResolutionStatus.SERVFAIL, ResolutionStatus.TIMEOUT)


@dataclass(frozen=True)
class MailRoute:
    """Result of resolving where mail for a domain should be delivered."""

    domain: str
    status: ResolutionStatus
    mx_hosts: tuple = ()        # MX target hostnames, priority order
    addresses: tuple = ()       # resolved IPv4 addresses, in try-order
    used_implicit_mx: bool = False

    @property
    def can_receive_mail(self) -> bool:
        return self.status is ResolutionStatus.OK and bool(self.addresses)


class Resolver:
    """Resolves names against a :class:`DomainRegistry`."""

    def __init__(self, registry: DomainRegistry) -> None:
        self._registry = registry

    def resolve_a(self, name: str) -> List[str]:
        """IPv4 addresses for ``name`` (empty when none/NXDOMAIN)."""
        zone = self._registry.zone_for(name)
        if zone is None:
            return []
        return zone.a_addresses(name)

    def resolve_mx(self, name: str) -> List[str]:
        """MX target hosts for ``name``, best priority first."""
        zone = self._registry.zone_for(name)
        if zone is None:
            return []
        return zone.mx_hosts(name)

    def mail_route(self, domain: str) -> MailRoute:
        """Where to deliver mail addressed to ``user@domain``.

        Applies RFC 5321: MX first; if the domain exists but has no MX,
        treat its A record as an implicit MX of priority 0.
        """
        domain = normalize_name(domain)
        zone = self._registry.zone_for(domain)
        if zone is None:
            return MailRoute(domain, ResolutionStatus.NXDOMAIN)

        mx_hosts = zone.mx_hosts(domain)
        if mx_hosts:
            addresses: List[str] = []
            for host in mx_hosts:
                addresses.extend(self.resolve_a(host))
            if not addresses:
                return MailRoute(domain, ResolutionStatus.NO_MAIL_HOST,
                                 mx_hosts=tuple(mx_hosts))
            return MailRoute(domain, ResolutionStatus.OK,
                             mx_hosts=tuple(mx_hosts),
                             addresses=tuple(addresses))

        implicit = zone.a_addresses(domain)
        if implicit:
            return MailRoute(domain, ResolutionStatus.OK,
                             addresses=tuple(implicit),
                             used_implicit_mx=True)
        return MailRoute(domain, ResolutionStatus.NO_MAIL_HOST)
