"""DNS resource records for the simulated name system.

Only the record types the study needs: A (mail-host addresses), MX (mail
routing), NS (suspicious-name-server analysis), and TXT (room for SPF-style
extension experiments).  Records are immutable values; zones own mutation.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Union

__all__ = ["RecordType", "ResourceRecord", "normalize_name", "is_valid_ipv4"]

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def is_valid_ipv4(address: str) -> bool:
    """Whether ``address`` is a syntactically valid dotted-quad IPv4."""
    match = _IPV4_RE.match(address)
    if not match:
        return False
    return all(0 <= int(octet) <= 255 for octet in match.groups())


def normalize_name(name: str) -> str:
    """Lower-case and strip the trailing dot of a domain name."""
    return name.strip().lower().rstrip(".")


class RecordType(enum.Enum):
    """The DNS record types the simulation models."""
    A = "A"
    MX = "MX"
    NS = "NS"
    TXT = "TXT"


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS RR: ``name TTL type [priority] value``.

    ``priority`` is meaningful only for MX records (lower wins, RFC 5321);
    all other types carry ``priority=0``.
    """

    name: str
    rtype: RecordType
    value: str
    ttl: int = 300
    priority: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        object.__setattr__(self, "value", normalize_name(self.value)
                           if self.rtype is not RecordType.TXT else self.value)
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")
        if self.rtype is RecordType.A and not is_valid_ipv4(self.value):
            raise ValueError(f"invalid IPv4 address {self.value!r}")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")

    @property
    def is_wildcard(self) -> bool:
        return self.name.startswith("*.")

    def matches(self, query_name: str) -> bool:
        """Whether this record answers a query for ``query_name``.

        A wildcard ``*.example.com`` matches any name with at least one
        extra label under ``example.com`` but not ``example.com`` itself,
        per RFC 4592 semantics (the simplified subset we need).
        """
        query = normalize_name(query_name)
        if not self.is_wildcard:
            return self.name == query
        suffix = self.name[2:]
        return query.endswith("." + suffix) and query != suffix

    def zone_file_line(self) -> str:
        """Render as a zone-file-style line (paper Table 1 format)."""
        priority = str(self.priority) if self.rtype is RecordType.MX else "NA"
        return (f"{self.name}.\t{self.ttl}\t{self.rtype.value}\t"
                f"{priority}\t{self.value}{'.' if self.rtype is not RecordType.TXT else ''}")
