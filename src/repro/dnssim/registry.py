"""The simulated domain registry: who is registered, and with which zone.

This is the authoritative root of the simulated Internet.  Everything that
"scans the Internet" in the reproduction (the ecosystem crawler, the honey
campaign, the SMTP client's MX resolution) resolves names through a
:class:`DomainRegistry`, exactly as real tooling resolves through the DNS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.dnssim.records import normalize_name
from repro.dnssim.zone import Zone

__all__ = ["Registration", "DomainRegistry"]


@dataclass
class Registration:
    """A registered domain: its zone plus registration metadata.

    ``nameserver`` is the operator of the domain's authoritative DNS (used
    by the suspicious-name-server analysis); ``registrant_id`` keys into
    the WHOIS database.
    """

    domain: str
    zone: Zone
    nameserver: str = "ns.default-dns.com"
    registrant_id: Optional[str] = None
    registered_on_day: int = 0

    def __post_init__(self) -> None:
        self.domain = normalize_name(self.domain)
        if self.zone.origin != self.domain:
            raise ValueError(
                f"zone origin {self.zone.origin!r} != domain {self.domain!r}")


class DomainRegistry:
    """Registrations indexed by domain, with suffix search.

    The registry deliberately exposes a zone-file-like view
    (:meth:`domains_in_tld`) because the paper's ecosystem study walks the
    ``.com`` zone file to find candidate typo domains.
    """

    def __init__(self) -> None:
        self._registrations: Dict[str, Registration] = {}

    def register(self, registration: Registration) -> None:
        """Register a domain; double registration is an error."""
        domain = registration.domain
        if domain in self._registrations:
            raise ValueError(f"domain {domain!r} already registered")
        self._registrations[domain] = registration

    def deregister(self, domain: str) -> None:
        """Remove a registration; unknown domains raise KeyError."""
        domain = normalize_name(domain)
        if domain not in self._registrations:
            raise KeyError(domain)
        del self._registrations[domain]

    def is_registered(self, domain: str) -> bool:
        """Whether ``domain`` is currently registered."""
        return normalize_name(domain) in self._registrations

    def get(self, domain: str) -> Optional[Registration]:
        """The registration of ``domain``, or None."""
        return self._registrations.get(normalize_name(domain))

    def zone_for(self, name: str) -> Optional[Zone]:
        """The zone authoritative for ``name``: longest registered suffix.

        ``mail.example.com`` is served by the zone of ``example.com`` when
        only the latter is registered.
        """
        name = normalize_name(name)
        labels = name.split(".")
        for start in range(len(labels) - 1):
            candidate = ".".join(labels[start:])
            registration = self._registrations.get(candidate)
            if registration is not None:
                return registration.zone
        return None

    def domains_in_tld(self, tld: str) -> List[str]:
        """All registered domains under ``tld`` (the zone-file view)."""
        suffix = "." + normalize_name(tld)
        return sorted(d for d in self._registrations if d.endswith(suffix))

    def all_domains(self) -> List[str]:
        """Every registered domain, sorted."""
        return sorted(self._registrations)

    def __len__(self) -> int:
        return len(self._registrations)

    def __iter__(self) -> Iterator[Registration]:
        return iter(self._registrations.values())
