"""A TTL-honouring caching stub resolver.

The study's zones use TTL 300 (paper Table 1) precisely so that
infrastructure changes propagate quickly; a caching resolver models the
client side of that contract.  Entries expire against the simulated
clock, never the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dnssim.records import RecordType, normalize_name
from repro.dnssim.registry import DomainRegistry
from repro.dnssim.resolver import MailRoute, Resolver
from repro.util.simtime import SimClock

__all__ = ["CachingResolver", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _CacheEntry:
    value: Tuple[str, ...]
    expires_at: float


class CachingResolver:
    """Wraps :class:`Resolver` with per-record-type TTL caching.

    Negative answers are cached too (with ``negative_ttl``), the way real
    resolvers cache NXDOMAIN per RFC 2308 — which matters to the scanner:
    a burst of queries against a dead typo domain costs one lookup.
    """

    def __init__(self, registry: DomainRegistry, clock: SimClock,
                 negative_ttl: float = 300.0) -> None:
        self._inner = Resolver(registry)
        self._registry = registry
        self._clock = clock
        self._negative_ttl = negative_ttl
        self._cache: Dict[Tuple[str, RecordType], _CacheEntry] = {}
        self.stats = CacheStats()

    # -- cached lookups -----------------------------------------------------

    def resolve_a(self, name: str) -> List[str]:
        """Cached A lookup for ``name``."""
        return list(self._lookup(name, RecordType.A,
                                 self._inner.resolve_a))

    def resolve_mx(self, name: str) -> List[str]:
        """Cached MX lookup for ``name``."""
        return list(self._lookup(name, RecordType.MX,
                                 self._inner.resolve_mx))

    def mail_route(self, domain: str) -> MailRoute:
        """Uncached-object route assembled from cached record lookups."""
        domain = normalize_name(domain)
        mx_hosts = self.resolve_mx(domain)
        if mx_hosts:
            addresses: List[str] = []
            for host in mx_hosts:
                addresses.extend(self.resolve_a(host))
            from repro.dnssim.resolver import ResolutionStatus

            if addresses:
                return MailRoute(domain, ResolutionStatus.OK,
                                 mx_hosts=tuple(mx_hosts),
                                 addresses=tuple(addresses))
            return MailRoute(domain, ResolutionStatus.NO_MAIL_HOST,
                             mx_hosts=tuple(mx_hosts))
        return self._inner.mail_route(domain)

    # -- cache mechanics ------------------------------------------------------

    def _lookup(self, name: str, rtype: RecordType, fetch) -> Tuple[str, ...]:
        key = (normalize_name(name), rtype)
        now = self._clock.now
        entry = self._cache.get(key)
        if entry is not None:
            if entry.expires_at > now:
                self.stats.hits += 1
                return entry.value
            self.stats.expirations += 1
            del self._cache[key]
        self.stats.misses += 1
        value = tuple(fetch(name))
        ttl = self._record_ttl(key[0], rtype) if value else self._negative_ttl
        self._cache[key] = _CacheEntry(value=value, expires_at=now + ttl)
        return value

    def _record_ttl(self, name: str, rtype: RecordType) -> float:
        zone = self._registry.zone_for(name)
        if zone is None:
            return self._negative_ttl
        ttls = [record.ttl for record in zone.lookup(name, rtype)]
        return float(min(ttls)) if ttls else self._negative_ttl

    def flush(self) -> None:
        """Drop every cached entry."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
