"""DNS zones with wildcard support.

A :class:`Zone` holds the records for one registered domain.  The study's
collection domains use exactly the paper's Table 1 layout: MX and A records
at the apex plus wildcard MX/A so mail sent to *any* subdomain of the typo
domain is captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dnssim.records import RecordType, ResourceRecord, normalize_name

__all__ = ["Zone", "collection_zone"]


@dataclass
class Zone:
    """All resource records of one registered domain."""

    origin: str
    records: List[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.origin = normalize_name(self.origin)
        for record in self.records:
            self._check_in_zone(record)

    def _check_in_zone(self, record: ResourceRecord) -> None:
        name = record.name[2:] if record.is_wildcard else record.name
        if name != self.origin and not name.endswith("." + self.origin):
            raise ValueError(
                f"record {record.name!r} is outside zone {self.origin!r}")

    def add(self, record: ResourceRecord) -> None:
        """Add a record; it must belong under this zone's origin."""
        self._check_in_zone(record)
        self.records.append(record)

    def lookup(self, name: str, rtype: RecordType) -> List[ResourceRecord]:
        """Records answering a query, exact matches shadowing wildcards."""
        query = normalize_name(name)
        exact = [r for r in self.records
                 if r.rtype is rtype and not r.is_wildcard and r.name == query]
        if exact:
            return exact
        return [r for r in self.records
                if r.rtype is rtype and r.is_wildcard and r.matches(query)]

    def mx_hosts(self, name: Optional[str] = None) -> List[str]:
        """MX target hosts for ``name`` (default: apex), priority order."""
        query = name if name is not None else self.origin
        mx = self.lookup(query, RecordType.MX)
        return [r.value for r in sorted(mx, key=lambda r: r.priority)]

    def a_addresses(self, name: Optional[str] = None) -> List[str]:
        """IPv4 addresses answering ``name`` (default: the zone apex)."""
        query = name if name is not None else self.origin
        return [r.value for r in self.lookup(query, RecordType.A)]

    def zone_file(self) -> str:
        """Render the zone in the paper's Table 1 column layout."""
        header = "FQDN\tTTL\tTYPE\tpriority\trecord"
        lines = [r.zone_file_line() for r in self.records]
        return "\n".join([header] + lines)

    def __len__(self) -> int:
        return len(self.records)


def collection_zone(domain: str, server_ip: str, ttl: int = 300) -> Zone:
    """Build the study's standard catch-all zone (paper Table 1).

    Wildcard and apex MX both point at the domain itself; wildcard and apex
    A records point at the domain's dedicated VPS address, so SMTP
    connections for any subdomain land on that one machine.
    """
    domain = normalize_name(domain)
    records = [
        ResourceRecord(f"*.{domain}", RecordType.MX, domain, ttl=ttl, priority=1),
        ResourceRecord(domain, RecordType.MX, domain, ttl=ttl, priority=1),
        ResourceRecord(f"*.{domain}", RecordType.A, server_ip, ttl=ttl),
        ResourceRecord(domain, RecordType.A, server_ip, ttl=ttl),
    ]
    return Zone(origin=domain, records=records)
