"""Simulated DNS: resource records, zones, the registry, and a resolver."""

from repro.dnssim.records import (
    RecordType,
    ResourceRecord,
    is_valid_ipv4,
    normalize_name,
)
from repro.dnssim.cache import CacheStats, CachingResolver
from repro.dnssim.registry import DomainRegistry, Registration
from repro.dnssim.resolver import MailRoute, ResolutionStatus, Resolver
from repro.dnssim.zone import Zone, collection_zone
from repro.dnssim.zonefile import ZoneFileError, parse_zone_file

__all__ = [
    "RecordType",
    "ResourceRecord",
    "normalize_name",
    "is_valid_ipv4",
    "Zone",
    "collection_zone",
    "DomainRegistry",
    "Registration",
    "Resolver",
    "MailRoute",
    "ResolutionStatus",
    "CachingResolver",
    "CacheStats",
    "parse_zone_file",
    "ZoneFileError",
]
