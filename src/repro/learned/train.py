"""Seeded training for the learned-detector lanes (pure numpy).

Per lane: standardize, fit a logistic-regression margin with minibatch
SGD, then fit a small gradient-boosted-stump ensemble on the logistic
residuals (Newton leaf values over the sigmoid's gradient/hessian).
Everything is deterministic from the seed — the shuffle generator is a
``Philox`` keyed by ``derive_seed(seed, "train/<lane>")``, the stump
search breaks ties by first flat argmax, and oversized training sets are
thinned by a fixed stride — so the same seed yields byte-identical
weights at any ``--jobs`` (parallelism only shards featurization, whose
row stream is order-stable by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.features.domains import run_sharded_featurize
from repro.features.messages import message_feature_matrix
from repro.features.schema import (
    DOMAIN_FEATURES,
    FEATURE_SCHEMA_VERSION,
    MESSAGE_FEATURES,
)
from repro.learned.model import LaneModel, Stump, TypoModel
from repro.util.perf import PerfRegistry
from repro.util.rand import SeededRng, derive_seed

__all__ = ["TrainConfig", "train_lane", "train_typo_model",
           "build_message_training_set"]


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (defaults sized for both lanes)."""

    epochs: int = 4
    batch_size: int = 512
    learning_rate: float = 0.15
    l2: float = 1e-4
    n_stumps: int = 24
    stump_learning_rate: float = 0.4
    stump_thresholds: int = 15
    stump_l2: float = 1.0
    #: deterministic stride-thinning cap on the training set
    max_rows: int = 200_000


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def train_lane(X: np.ndarray, y: np.ndarray, seed: int, lane: str,
               features: Tuple[str, ...],
               config: TrainConfig = TrainConfig()) -> LaneModel:
    """Fit one lane model on ``(X, y)`` — deterministic from ``seed``."""
    n = X.shape[0]
    if n == 0:
        raise ValueError(f"cannot train lane {lane!r} on an empty matrix")
    if n > config.max_rows:
        stride = -(-n // config.max_rows)
        X = X[::stride]
        y = y[::stride]
        n = X.shape[0]
    y = y.astype(np.float64)

    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale = np.where(scale < 1e-12, 1.0, scale)
    Xs = (X - mean) / scale

    rng = np.random.Generator(np.random.Philox(
        key=derive_seed(seed, f"train/{lane}")))
    d = Xs.shape[1]
    w = np.zeros(d, dtype=np.float64)
    b = 0.0
    lr = config.learning_rate
    l2 = config.l2
    batch = config.batch_size
    for _ in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            rows = order[start:start + batch]
            Xb = Xs[rows]
            err = _sigmoid(Xb @ w + b) - y[rows]
            w -= lr * (Xb.T @ err / rows.size + l2 * w)
            b -= lr * float(err.mean())

    stumps = _fit_stumps(Xs, y, Xs @ w + b, config)
    return LaneModel(lane=lane, features=features, mean=mean, scale=scale,
                     weights=w, bias=b, stumps=stumps)


def _fit_stumps(Xs: np.ndarray, y: np.ndarray, z: np.ndarray,
                config: TrainConfig) -> Tuple[Stump, ...]:
    """Gradient-boosted stumps on the logistic margin's residuals.

    Split candidates are per-feature quantile positions in the sorted
    column, pushed to the last duplicate so prefix sums agree exactly
    with the ``x <= threshold`` predicate inference uses.  Candidates
    are fixed across rounds (the feature matrix never changes); each
    round costs two gathers and two prefix sums.
    """
    n, d = Xs.shape
    if n < 2 or config.n_stumps <= 0:
        return ()
    order = np.argsort(Xs, axis=0, kind="stable")
    Xsorted = np.take_along_axis(Xs, order, axis=0)
    n_thr = min(config.stump_thresholds, n - 1)
    # quantile positions, excluding the full-column split (useless)
    base_pos = np.unique(
        (np.arange(1, n_thr + 1) * n) // (n_thr + 1)).clip(0, n - 2)
    pos = np.empty((base_pos.size, d), dtype=np.int64)
    thr = np.empty((base_pos.size, d), dtype=np.float64)
    for f in range(d):
        col = Xsorted[:, f]
        for t_i, k in enumerate(base_pos):
            value = col[k]
            # push to the last duplicate so "count left" == k_adj + 1
            k_adj = int(np.searchsorted(col, value, side="right")) - 1
            pos[t_i, f] = k_adj
            thr[t_i, f] = value

    lam = config.stump_l2
    lr = config.stump_learning_rate
    stumps = []
    for _ in range(config.n_stumps):
        p = _sigmoid(z)
        g = y - p
        h = p * (1.0 - p)
        g_sorted = np.take_along_axis(g[:, None].repeat(d, axis=1),
                                      order, axis=0)
        h_sorted = np.take_along_axis(h[:, None].repeat(d, axis=1),
                                      order, axis=0)
        g_cum = np.cumsum(g_sorted, axis=0)
        h_cum = np.cumsum(h_sorted, axis=0)
        g_total = g_cum[-1]
        h_total = h_cum[-1]
        col_idx = np.arange(d)[None, :].repeat(pos.shape[0], axis=0)
        g_left = g_cum[pos, col_idx]
        h_left = h_cum[pos, col_idx]
        g_right = g_total[None, :] - g_left
        h_right = h_total[None, :] - h_left
        gain = (g_left ** 2 / (h_left + lam)
                + g_right ** 2 / (h_right + lam))
        flat = int(np.argmax(gain))
        t_i, f = divmod(flat, d)
        threshold = float(thr[t_i, f])
        left = lr * float(g_left[t_i, f] / (h_left[t_i, f] + lam))
        right = lr * float(g_right[t_i, f] / (h_right[t_i, f] + lam))
        stumps.append(Stump(feature=f, threshold=threshold,
                            left=left, right=right))
        z = z + np.where(Xs[:, f] <= threshold, left, right)
    return tuple(stumps)


def build_message_training_set(seed: int, dataset_size: int,
                               purpose: str = "train-mail"
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Labelled message matrix from the four synthetic corpora.

    Summaries come from a no-layer funnel — kind/sender/bag extraction
    without any verdict work, exactly what the learned path runs in
    production — and tokenization is already done by the dataset
    builder.  Deterministic from ``(seed, purpose, dataset_size)``.
    """
    from repro.spamfilter.funnel import FilterFunnel
    from repro.workloads.datasets import DATASET_PROFILES, build_dataset

    funnel = FilterFunnel(("workplace.example",), enabled_layers=())
    matrices = []
    labels = []
    root = SeededRng(derive_seed(seed, purpose))
    for name, profile in DATASET_PROFILES.items():
        dataset = build_dataset(profile, dataset_size, root.child(name))
        pairs = [(tok, funnel.summarize(tok)) for tok in dataset.emails]
        matrices.append(message_feature_matrix(pairs))
        labels.extend(1.0 if spam else 0.0 for spam in dataset.labels)
    return np.vstack(matrices), np.asarray(labels, dtype=np.float64)


def train_typo_model(seed: int, *,
                     ranks: int = 20_000,
                     dataset_size: int = 1_500,
                     jobs: Optional[int] = None,
                     config: TrainConfig = TrainConfig(),
                     perf: Optional[PerfRegistry] = None
                     ) -> Tuple[TypoModel, Dict]:
    """Train both lanes from scratch; returns ``(model, stats)``.

    The domain lane featurizes ranks ``1..ranks`` of the lazy world
    (sharded over ``jobs``, row stream identical at any count); the
    message lane trains on the four synthetic corpora.  Stats carry the
    training-set shapes and class balance for the CLI to print.
    """
    sweep = run_sharded_featurize(seed, ranks, jobs=jobs, perf=perf)
    parts_X = []
    parts_y = []
    for X, y, _ in sweep.matrices():
        parts_X.append(X)
        parts_y.append(y)
    domain_X = np.vstack(parts_X) if parts_X else np.zeros((0, len(
        DOMAIN_FEATURES)))
    domain_y = (np.concatenate(parts_y) if parts_y
                else np.zeros(0))
    domain = train_lane(domain_X, domain_y, seed, "domain",
                        DOMAIN_FEATURES, config)

    message_X, message_y = build_message_training_set(seed, dataset_size)
    message = train_lane(message_X, message_y, seed, "message",
                         MESSAGE_FEATURES, config)

    model = TypoModel(
        seed=seed, schema_version=FEATURE_SCHEMA_VERSION,
        domain=domain, message=message,
        provenance={
            "train_ranks": ranks,
            "train_dataset_size": dataset_size,
            "domain_rows": int(domain_X.shape[0]),
            "domain_positives": int(domain_y.sum()),
            "message_rows": int(message_X.shape[0]),
            "message_positives": int(message_y.sum()),
            "sweep_digest": sweep.digest(),
        })
    stats = dict(model.provenance)
    stats["model_digest"] = model.digest()
    return model, stats
