"""The ``repro-typo-model@1`` artifact: two lane models, one digest.

A :class:`TypoModel` bundles one :class:`LaneModel` per lane (``domain``,
``message``).  Each lane is a standardized logistic-regression margin plus
a gradient-boosted-stump correction; scoring a batch is one matmul and
one fused ``np.where`` pass per stump — no per-row Python anywhere.

Persistence follows the repo's checkpoint discipline: canonical JSON,
atomic ``tmp → fsync → os.replace`` save, and an SHA-256 self-digest over
the canonical payload.  Loading re-verifies the digest (corruption →
:class:`CheckpointCorruptError`, exit 3) and the feature-schema version
(mismatch → :class:`ConfigError`, exit 2 — a model trained against a
different column layout must never silently score garbage).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.features.schema import (
    DOMAIN_FEATURES,
    FEATURE_SCHEMA_VERSION,
    MESSAGE_FEATURES,
)
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)

__all__ = ["LEARNED_MODEL_FORMAT", "Stump", "LaneModel", "TypoModel",
           "save_model", "load_model", "model_digest"]

LEARNED_MODEL_FORMAT = "repro-typo-model@1"

_LANE_FEATURES = {"domain": DOMAIN_FEATURES, "message": MESSAGE_FEATURES}


@dataclass(frozen=True)
class Stump:
    """One boosted decision stump over a standardized feature column."""

    feature: int         # column index into the lane's feature list
    threshold: float     # split point in standardized units
    left: float          # margin contribution when x <= threshold
    right: float         # margin contribution when x > threshold


@dataclass
class LaneModel:
    """One lane's scorer: logistic margin + boosted-stump correction."""

    lane: str                      # "domain" | "message"
    features: Tuple[str, ...]
    mean: np.ndarray               # (d,) standardization means
    scale: np.ndarray              # (d,) standardization scales (>0)
    weights: np.ndarray            # (d,) logistic weights
    bias: float
    stumps: Tuple[Stump, ...]

    def margins(self, X: np.ndarray) -> np.ndarray:
        """Raw decision margins for a feature batch — fully vectorized."""
        Xs = (X - self.mean) / self.scale
        z = Xs @ self.weights + self.bias
        for stump in self.stumps:
            z += np.where(Xs[:, stump.feature] <= stump.threshold,
                          stump.left, stump.right)
        return z

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Spam/squat probabilities in ``[0, 1]`` for a feature batch."""
        z = self.margins(X)
        # numerically stable sigmoid
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def to_payload(self) -> Dict:
        return {
            "lane": self.lane,
            "features": list(self.features),
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
            "weights": self.weights.tolist(),
            "bias": self.bias,
            "stumps": [[s.feature, s.threshold, s.left, s.right]
                       for s in self.stumps],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "LaneModel":
        features = tuple(payload["features"])
        d = len(features)
        mean = np.asarray(payload["mean"], dtype=np.float64)
        scale = np.asarray(payload["scale"], dtype=np.float64)
        weights = np.asarray(payload["weights"], dtype=np.float64)
        if not (mean.shape == scale.shape == weights.shape == (d,)):
            raise CheckpointCorruptError(
                f"lane {payload.get('lane')!r} parameter shapes disagree "
                f"with its {d}-column feature list")
        return cls(
            lane=payload["lane"], features=features, mean=mean,
            scale=scale, weights=weights, bias=float(payload["bias"]),
            stumps=tuple(Stump(int(f), float(t), float(lv), float(rv))
                         for f, t, lv, rv in payload["stumps"]))


@dataclass
class TypoModel:
    """The persisted artifact: both lane models plus provenance."""

    seed: int
    schema_version: int
    domain: LaneModel
    message: LaneModel
    provenance: Dict

    def lane(self, name: str) -> LaneModel:
        if name == "domain":
            return self.domain
        if name == "message":
            return self.message
        raise ConfigError(f"unknown model lane {name!r}")

    def to_payload(self) -> Dict:
        return {
            "format": LEARNED_MODEL_FORMAT,
            "schema_version": self.schema_version,
            "seed": self.seed,
            "domain": self.domain.to_payload(),
            "message": self.message.to_payload(),
            "provenance": self.provenance,
        }

    def digest(self) -> str:
        return model_digest(self.to_payload())


def model_digest(payload: Dict) -> str:
    """SHA-256 over the canonical JSON payload (digest field excluded)."""
    stripped = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(stripped, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_model(model: TypoModel, path: str) -> str:
    """Atomically persist the model; returns its self-digest.

    Same durability discipline as every other artifact lane: write to a
    temp file in the destination directory, flush + fsync, then
    ``os.replace`` — a crash mid-save never leaves a torn artifact.
    """
    payload = model.to_payload()
    payload["digest"] = model_digest(payload)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=".typo-model-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return payload["digest"]


def load_model(path: str) -> TypoModel:
    """Load and verify a ``repro-typo-model@1`` artifact.

    * unreadable / torn JSON, wrong self-digest, broken parameter shapes
      → :class:`CheckpointCorruptError` (exit 3);
    * a different artifact format → :class:`CheckpointMismatchError`
      (exit 3);
    * an unknown feature-schema version or drifted feature lists →
      :class:`ConfigError` (exit 2): the artifact is intact but this
      build cannot interpret its columns.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointCorruptError(
            f"cannot read typo model {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(
            f"typo model {path} is not a JSON object")
    fmt = payload.get("format")
    if fmt != LEARNED_MODEL_FORMAT:
        raise CheckpointMismatchError(
            f"{path} is not a {LEARNED_MODEL_FORMAT} artifact "
            f"(format={fmt!r})")
    recorded = payload.get("digest")
    if recorded != model_digest(payload):
        raise CheckpointCorruptError(
            f"typo model {path} failed its self-digest check "
            "(artifact corrupted)")
    version = payload.get("schema_version")
    if version != FEATURE_SCHEMA_VERSION:
        raise ConfigError(
            f"typo model {path} uses feature schema v{version}; this "
            f"build speaks v{FEATURE_SCHEMA_VERSION} — retrain the model")
    try:
        domain = LaneModel.from_payload(payload["domain"])
        message = LaneModel.from_payload(payload["message"])
        model = TypoModel(
            seed=int(payload["seed"]), schema_version=int(version),
            domain=domain, message=message,
            provenance=dict(payload.get("provenance") or {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorruptError(
            f"typo model {path} payload is malformed: {exc}") from exc
    for lane in (model.domain, model.message):
        expected = _LANE_FEATURES.get(lane.lane)
        if expected is None:
            raise CheckpointCorruptError(
                f"typo model {path} names unknown lane {lane.lane!r}")
        if lane.features != expected:
            raise ConfigError(
                f"typo model {path} lane {lane.lane!r} was trained on a "
                "different feature list than this build — retrain")
    return model
