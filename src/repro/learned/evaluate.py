"""Table-3-style evaluation: learned vs. funnel vs. combined, per corpus.

For each synthetic corpus the harness scores three detectors against the
same ground truth:

* ``funnel``   — the rule funnel's two-pass ``classify_corpus`` verdicts
  (spam iff :class:`~repro.spamfilter.funnel.Verdict` is ``SPAM``);
* ``learned``  — the message-lane model, threshold 0.5, on summaries from
  a no-layer funnel (no rule verdicts leak into the features);
* ``combined`` — spam iff either flags it.

Spam-only archives (untroubled) have no negatives, so precision is NaN
there by construction — the report prints ``-`` exactly like Table 3.

The domain lane is evaluated on a held-out rank window the training sweep
never saw.  Everything is deterministic from ``(model digest, seed)`` —
the report carries a metrics digest so two runs (or two ``--jobs``) can
be compared byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.features.domains import featurize_domains
from repro.features.messages import message_feature_matrix
from repro.learned.model import TypoModel
from repro.util.rand import SeededRng, derive_seed
from repro.util.stats import BinaryClassificationScores, score_binary

__all__ = ["CorpusEval", "EvaluationReport", "evaluate_model",
           "SCORE_THRESHOLD"]

#: spam / squat decision threshold on the sigmoid score
SCORE_THRESHOLD = 0.5


def _metric_triplet(scores: BinaryClassificationScores) -> Dict[str, float]:
    return {
        "precision": scores.precision,
        "recall": scores.recall,
        "true_positives": scores.true_positives,
        "false_positives": scores.false_positives,
        "false_negatives": scores.false_negatives,
        "true_negatives": scores.true_negatives,
    }


@dataclass
class CorpusEval:
    """One corpus row of the Table-3-style comparison."""

    name: str
    size: int
    spam_count: int
    detectors: Dict[str, BinaryClassificationScores] = field(
        default_factory=dict)

    def to_payload(self) -> Dict:
        return {
            "name": self.name,
            "size": self.size,
            "spam_count": self.spam_count,
            "detectors": {k: _metric_triplet(v)
                          for k, v in sorted(self.detectors.items())},
        }


@dataclass
class EvaluationReport:
    """The full harness output: message corpora plus the domain window."""

    seed: int
    model_digest: str
    corpora: List[CorpusEval]
    domain: CorpusEval
    domain_window: Tuple[int, int]

    def to_payload(self) -> Dict:
        return {
            "seed": self.seed,
            "model_digest": self.model_digest,
            "corpora": [c.to_payload() for c in self.corpora],
            "domain": self.domain.to_payload(),
            "domain_window": list(self.domain_window),
        }

    def metrics_digest(self) -> str:
        """SHA-256 over the canonical metrics payload.

        NaN precision (spam-only corpora) is serialized as the string
        ``"nan"`` so the canonical form stays valid JSON and compares
        equal across runs.
        """
        def _clean(obj):
            if isinstance(obj, dict):
                return {k: _clean(v) for k, v in obj.items()}
            if isinstance(obj, list):
                return [_clean(v) for v in obj]
            if isinstance(obj, float) and math.isnan(obj):
                return "nan"
            return obj

        canonical = json.dumps(_clean(self.to_payload()), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def format_table(self) -> str:
        """Render the Table-3-style comparison as aligned text."""
        def fmt(value: float) -> str:
            return "-" if math.isnan(value) else f"{value:6.3f}"

        lines = [
            f"{'corpus':<14} {'n':>6} {'spam':>6} "
            f"{'learned P':>9} {'R':>6} {'funnel P':>9} {'R':>6} "
            f"{'combined P':>10} {'R':>6}"
        ]
        for row in [*self.corpora, self.domain]:
            learned = row.detectors["learned"]
            funnel = row.detectors.get("funnel")
            combo = row.detectors.get("combined")
            cells = [f"{row.name:<14}", f"{row.size:>6}",
                     f"{row.spam_count:>6}",
                     f"{fmt(learned.precision):>9}",
                     f"{fmt(learned.recall):>6}"]
            if funnel is not None and combo is not None:
                cells += [f"{fmt(funnel.precision):>9}",
                          f"{fmt(funnel.recall):>6}",
                          f"{fmt(combo.precision):>10}",
                          f"{fmt(combo.recall):>6}"]
            else:
                cells += [f"{'-':>9}", f"{'-':>6}",
                          f"{'-':>10}", f"{'-':>6}"]
            lines.append(" ".join(cells))
        return "\n".join(lines)


def evaluate_model(model: TypoModel, seed: int, *,
                   dataset_size: int = 2_000,
                   domain_window: Optional[Tuple[int, int]] = None,
                   max_rank: Optional[int] = None) -> EvaluationReport:
    """Score the model against the funnel on fresh evaluation data.

    Evaluation corpora are drawn from a different seed purpose
    (``eval-mail``) than training, and the domain window defaults to the
    2 000 ranks immediately after the training sweep — held out by
    construction.
    """
    from repro.spamfilter.funnel import FilterFunnel, Verdict
    from repro.workloads.datasets import DATASET_PROFILES, build_dataset

    lane = model.message
    corpora: List[CorpusEval] = []
    root = SeededRng(derive_seed(seed, "eval-mail"))
    summarizer = FilterFunnel(("workplace.example",), enabled_layers=())
    for name, profile in DATASET_PROFILES.items():
        dataset = build_dataset(profile, dataset_size, root.child(name))
        actual = list(dataset.labels)
        pairs = [(tok, summarizer.summarize(tok))
                 for tok in dataset.emails]
        X = message_feature_matrix(pairs)
        learned_pred = [bool(s) for s in
                        (lane.scores(X) >= SCORE_THRESHOLD)]
        funnel = FilterFunnel(("workplace.example",))
        funnel_pred = [res.verdict is Verdict.SPAM
                       for res in funnel.classify_corpus(dataset.emails)]
        combined = [a or b for a, b in zip(learned_pred, funnel_pred)]
        corpora.append(CorpusEval(
            name=name, size=len(dataset), spam_count=sum(actual),
            detectors={
                "learned": score_binary(learned_pred, actual),
                "funnel": score_binary(funnel_pred, actual),
                "combined": score_binary(combined, actual),
            }))

    train_ranks = int(model.provenance.get("train_ranks", 20_000))
    if domain_window is None:
        domain_window = (train_ranks + 1, train_ranks + 2_001)
    start, stop = domain_window
    sweep = featurize_domains(
        model.seed, start, stop,
        max_rank=max_rank or max(stop - 1, train_ranks))
    xs, ys = [], []
    for X, y, _ in sweep.matrices():
        xs.append(X)
        ys.append(y)
    domain_lane = model.domain
    if xs:
        Xd = np.vstack(xs)
        yd = np.concatenate(ys)
        pred = domain_lane.scores(Xd) >= SCORE_THRESHOLD
        domain_scores = score_binary([bool(p) for p in pred],
                                     [bool(v) for v in yd])
        n_rows = int(Xd.shape[0])
        n_spam = int(yd.sum())
    else:
        domain_scores = score_binary([], [])
        n_rows = n_spam = 0
    domain = CorpusEval(
        name="domains", size=n_rows, spam_count=n_spam,
        detectors={"learned": domain_scores})

    return EvaluationReport(
        seed=seed, model_digest=model.digest(), corpora=corpora,
        domain=domain, domain_window=(start, stop))
