"""The learned-detector lane: a seeded pure-numpy typo classifier.

Logistic regression (minibatch SGD) plus a small gradient-boosted-stump
ensemble, trained per lane (domains from the scan pipeline, messages from
the classify pipeline) on the world's exact ground truth — no sklearn,
deterministic from the seed, persisted as a ``repro-typo-model@1``
artifact with an SHA-256 self-digest.

Inference is vectorized: one standardized matmul plus one fused
``np.where`` pass per stump over the whole batch — never per-row Python.
"""

from repro.learned.model import (
    LEARNED_MODEL_FORMAT,
    LaneModel,
    Stump,
    TypoModel,
    load_model,
    save_model,
)
from repro.learned.train import TrainConfig, train_lane, train_typo_model
from repro.learned.evaluate import (
    SCORE_THRESHOLD,
    CorpusEval,
    EvaluationReport,
    evaluate_model,
)
from repro.learned.lifecycle import (
    DriftMonitor,
    DriftReport,
    GateDecision,
    LifecycleDecision,
    ModelLifecycle,
    campaign_message_window,
    gate_candidate,
    run_drift_drill,
    shadow_retrain,
)

__all__ = [
    "LEARNED_MODEL_FORMAT",
    "LaneModel",
    "Stump",
    "TypoModel",
    "load_model",
    "save_model",
    "TrainConfig",
    "train_lane",
    "train_typo_model",
    "SCORE_THRESHOLD",
    "CorpusEval",
    "EvaluationReport",
    "evaluate_model",
    "DriftMonitor",
    "DriftReport",
    "GateDecision",
    "LifecycleDecision",
    "ModelLifecycle",
    "campaign_message_window",
    "gate_candidate",
    "run_drift_drill",
    "shadow_retrain",
]
