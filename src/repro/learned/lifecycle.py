"""Drift-resilient model lifecycle: detect → shadow-retrain → gated swap.

The learned detector (PR 9) is a live system: when an adaptive squatter
campaign re-weights its lures against the deployed model, recall rots
silently.  This module closes the loop:

* :func:`campaign_message_window` — the adversary.  A campaign drafts a
  pool of candidate lure messages (a fresh seeded corpus keyed by the
  campaign name), scores them with the *incumbent* model, and keeps the
  spam that best evades it (``evasion_bias`` controls how much of the
  kept window is adversarially selected).  Recall degradation on the
  kept window is by construction — the arms-race framing of Spaulding
  et al. made deterministic.
* :class:`DriftMonitor` — the detector.  A training-time baseline
  (fixed-bin score histogram + recall on an in-distribution window) is
  compared against each observed window; the drift score is the total
  variation distance between histograms max-ed with the clipped recall
  drop, and the monitor trips at a threshold.  Pure arithmetic — the
  same window yields the same score at any ``--jobs``.
* :func:`shadow_retrain` — the healer.  Retrains the message lane on
  the base training distribution plus the *retrain half* of the drift
  window (deterministic even/odd split; the odd half stays held out
  for the gate).  The domain lane is carried over unchanged — campaign
  drift shifts the message distribution, not the registration
  landscape.
* :func:`gate_candidate` — the gate.  The candidate must beat the
  incumbent's recall on the held-out half *and* not regress on the
  baseline window; otherwise it is rejected and the incumbent stays.
* :class:`ModelLifecycle` — the promote/rollback machinery.  Active,
  candidate, and previous models live as ``repro-typo-model@1``
  artifacts in one directory, every transition is an atomic
  ``save_model`` / ``os.replace`` step with ``phase_hook`` injection
  points, so SIGKILL at *any* boundary leaves only doctor-valid
  artifacts and a deterministic re-run converges to the same state.
  A post-promote live-disagreement check demotes a bad promote
  (rollback to the previous model, zero drops — every verdict stays
  labeled with the model that produced it).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.features.schema import MESSAGE_FEATURES
from repro.learned.evaluate import SCORE_THRESHOLD
from repro.learned.model import TypoModel, load_model, save_model
from repro.learned.train import (
    TrainConfig,
    build_message_training_set,
    train_lane,
)
from repro.util.errors import ConfigError
from repro.util.rand import derive_seed

__all__ = [
    "DriftMonitor",
    "DriftReport",
    "GateDecision",
    "LifecycleDecision",
    "ModelLifecycle",
    "campaign_message_window",
    "gate_candidate",
    "shadow_retrain",
    "run_drift_drill",
]

#: fixed histogram bin edges for score-distribution digests
_SCORE_BINS = 16

#: default drift-score trip threshold
DRIFT_THRESHOLD = 0.15

#: candidate must not regress baseline recall by more than this
BASELINE_MARGIN = 0.02

#: post-promote live disagreement rate that demotes the candidate
DISAGREEMENT_THRESHOLD = 0.25


def _recall(model: TypoModel, X: np.ndarray, y: np.ndarray) -> float:
    """Message-lane recall at the standard threshold (NaN-free)."""
    spam = y >= 0.5
    if not spam.any():
        return 1.0
    pred = model.message.scores(X[spam]) >= SCORE_THRESHOLD
    return float(pred.sum()) / float(spam.sum())


def _histogram(scores: np.ndarray) -> np.ndarray:
    """Normalized fixed-bin histogram of sigmoid scores."""
    counts, _ = np.histogram(scores, bins=_SCORE_BINS, range=(0.0, 1.0))
    total = counts.sum()
    if total == 0:
        return np.zeros(_SCORE_BINS, dtype=np.float64)
    return counts.astype(np.float64) / float(total)


def campaign_message_window(model: TypoModel, seed: int, name: str, *,
                            pool_size: int,
                            evasion_bias: float
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """Draft the campaign's adversarially-selected message window.

    The pool is a fresh labelled corpus keyed by ``(seed, campaign
    name)``; the campaign keeps *half* its spam drafts, filling
    ``evasion_bias`` of the kept slots with the lowest-scoring (most
    evading) drafts under the incumbent and the rest in stream order.
    The adversarially-kept drafts are then *mutated* toward the pool's
    ham centroid in feature space (the campaign rewrites its lures to
    look like the mail the detector passes — coverage-driven
    re-weighting made deterministic); ham rides along untouched.  Rows
    come back in ascending pool order, so the window is byte-identical
    regardless of scoring hardware or shard layout.
    """
    if pool_size < 1:
        raise ConfigError("campaign pool_size must be >= 1")
    X, y = build_message_training_set(
        derive_seed(seed, f"campaign/{name}"), pool_size,
        purpose=f"campaign/{name}")
    spam_idx = np.flatnonzero(y >= 0.5)
    ham_idx = np.flatnonzero(y < 0.5)
    if spam_idx.size == 0 or ham_idx.size == 0:
        return X, y
    scores = model.message.scores(X[spam_idx])
    evading_order = spam_idx[np.argsort(scores, kind="stable")]
    keep_n = max(1, spam_idx.size // 2)
    adversarial_n = int(round(keep_n * evasion_bias))
    kept = [int(idx) for idx in evading_order[:adversarial_n]]
    kept_set = set(kept)
    for idx in spam_idx:
        if len(kept) >= keep_n:
            break
        if int(idx) not in kept_set:
            kept.append(int(idx))
            kept_set.add(int(idx))
    X = X.copy()
    if adversarial_n:
        mutated = evading_order[:adversarial_n]
        ham_centroid = X[ham_idx].mean(axis=0)
        X[mutated] = ((1.0 - evasion_bias) * X[mutated]
                      + evasion_bias * ham_centroid[None, :])
    rows = np.asarray(sorted(kept_set | set(int(i) for i in ham_idx)),
                      dtype=np.int64)
    return X[rows], y[rows]


@dataclass(frozen=True)
class DriftReport:
    """One window's drift verdict against the training baseline."""

    window: str
    drift_score: float
    tv_distance: float
    recall: float
    baseline_recall: float
    tripped: bool

    def to_dict(self) -> Dict:
        return {
            "window": self.window,
            "drift_score": round(self.drift_score, 12),
            "tv_distance": round(self.tv_distance, 12),
            "recall": round(self.recall, 12),
            "baseline_recall": round(self.baseline_recall, 12),
            "tripped": self.tripped,
        }


class DriftMonitor:
    """Compares observed message windows against a training baseline.

    The baseline is the incumbent's score histogram and recall on an
    in-distribution window (purpose ``drift-baseline``, disjoint from
    the training and evaluation streams).  ``observe`` is pure
    arithmetic over the window — no RNG, no wall clock — so monitors
    on different processes agree bit-for-bit.
    """

    def __init__(self, model: TypoModel, seed: int, *,
                 baseline_size: int = 200,
                 threshold: float = DRIFT_THRESHOLD) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigError("drift threshold must be in (0, 1]")
        self.seed = seed
        self.threshold = threshold
        X, y = build_message_training_set(
            derive_seed(seed, "drift-baseline"), baseline_size,
            purpose="drift-baseline")
        self.baseline_X = X
        self.baseline_y = y
        self.baseline_hist = _histogram(model.message.scores(X))
        self.baseline_recall = _recall(model, X, y)
        self.reports: list = []

    def observe(self, model: TypoModel, name: str,
                X: np.ndarray, y: np.ndarray) -> DriftReport:
        """Score one observed window; returns (and records) the report."""
        hist = _histogram(model.message.scores(X))
        tv_distance = float(np.abs(hist - self.baseline_hist).sum()) / 2.0
        recall = _recall(model, X, y)
        recall_drop = max(0.0, self.baseline_recall - recall)
        drift_score = max(tv_distance, min(1.0, recall_drop))
        report = DriftReport(
            window=name, drift_score=drift_score, tv_distance=tv_distance,
            recall=recall, baseline_recall=self.baseline_recall,
            tripped=drift_score >= self.threshold)
        self.reports.append(report)
        return report

    def digest(self) -> str:
        """SHA-256 over every report so far — the drift trajectory pin."""
        payload = json.dumps([report.to_dict() for report in self.reports],
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _split_window(X: np.ndarray, y: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic even/odd split: (retrain_X, retrain_y, held_X, held_y)."""
    return X[0::2], y[0::2], X[1::2], y[1::2]


def shadow_retrain(model: TypoModel, seed: int, name: str,
                   window_X: np.ndarray, window_y: np.ndarray, *,
                   train_size: int = 200,
                   config: TrainConfig = TrainConfig()) -> TypoModel:
    """Train a candidate on base distribution + the window's retrain half.

    Only the message lane retrains; the domain lane carries over.  The
    candidate's provenance records what it was retrained against, so
    its digest differs from the incumbent's even when weights converge.
    """
    retrain_X, retrain_y, _, _ = _split_window(window_X, window_y)
    base_X, base_y = build_message_training_set(
        derive_seed(seed, "drift-baseline"), train_size,
        purpose="drift-baseline")
    X = np.vstack([base_X, retrain_X])
    y = np.concatenate([base_y, retrain_y])
    message = train_lane(X, y, derive_seed(seed, f"retrain/{name}"),
                         "message", MESSAGE_FEATURES, config)
    provenance = dict(model.provenance)
    provenance["retrained_window"] = name
    provenance["retrain_rows"] = int(X.shape[0])
    return TypoModel(seed=model.seed, schema_version=model.schema_version,
                     domain=model.domain, message=message,
                     provenance=provenance)


@dataclass(frozen=True)
class GateDecision:
    """The held-out evaluation verdict on a candidate model."""

    promote: bool
    incumbent_recall: float
    candidate_recall: float
    incumbent_baseline_recall: float
    candidate_baseline_recall: float
    reason: str

    def to_dict(self) -> Dict:
        return {
            "promote": self.promote,
            "incumbent_recall": round(self.incumbent_recall, 12),
            "candidate_recall": round(self.candidate_recall, 12),
            "incumbent_baseline_recall":
                round(self.incumbent_baseline_recall, 12),
            "candidate_baseline_recall":
                round(self.candidate_baseline_recall, 12),
            "reason": self.reason,
        }


def gate_candidate(incumbent: TypoModel, candidate: TypoModel,
                   window_X: np.ndarray, window_y: np.ndarray,
                   baseline_X: np.ndarray, baseline_y: np.ndarray
                   ) -> GateDecision:
    """Held-out gate: promote only a strict improvement.

    The candidate must beat the incumbent on the window's held-out half
    (the odd rows the retrain never saw) and stay within
    :data:`BASELINE_MARGIN` of the incumbent on the baseline window —
    a candidate that heals drift by forgetting the base distribution is
    rejected.
    """
    _, _, held_X, held_y = _split_window(window_X, window_y)
    incumbent_recall = _recall(incumbent, held_X, held_y)
    candidate_recall = _recall(candidate, held_X, held_y)
    incumbent_base = _recall(incumbent, baseline_X, baseline_y)
    candidate_base = _recall(candidate, baseline_X, baseline_y)
    if candidate_recall <= incumbent_recall:
        reason = "candidate does not beat incumbent on held-out window"
        promote = False
    elif candidate_base < incumbent_base - BASELINE_MARGIN:
        reason = "candidate regresses the baseline distribution"
        promote = False
    else:
        reason = "candidate beats incumbent and holds the baseline"
        promote = True
    return GateDecision(
        promote=promote, incumbent_recall=incumbent_recall,
        candidate_recall=candidate_recall,
        incumbent_baseline_recall=incumbent_base,
        candidate_baseline_recall=candidate_base, reason=reason)


@dataclass(frozen=True)
class LifecycleDecision:
    """One full cycle's outcome: drift report + gate + transition."""

    window: str
    action: str                   # "hold" | "promote" | "reject"
    drift: DriftReport
    gate: Optional[GateDecision]
    active_digest: str

    def to_dict(self) -> Dict:
        return {
            "window": self.window,
            "action": self.action,
            "drift": self.drift.to_dict(),
            "gate": self.gate.to_dict() if self.gate else None,
            "active_digest": self.active_digest,
        }


def _noop_hook(phase: str) -> None:
    return None


class ModelLifecycle:
    """Active/candidate/previous model artifacts with atomic transitions.

    Layout inside ``directory``::

        active.json     the serving model (always present, doctor-valid)
        candidate.json  the last shadow-retrained candidate (transient)
        previous.json   the demotion target after a promote

    Every write is an atomic :func:`save_model`; every transition is a
    single ``os.replace``.  ``phase_hook(label)`` fires before/after
    each boundary (labels: ``trained``, ``candidate_saved``, ``gated``,
    ``previous_saved``, ``promoted``, ``rolled_back``) — the SIGKILL
    tests kill the process inside the hook and assert the directory
    still holds only doctor-valid artifacts and that a re-run converges
    to the same state.
    """

    def __init__(self, directory: Union[str, Path], seed: int, *,
                 threshold: float = DRIFT_THRESHOLD,
                 baseline_size: int = 200,
                 train_config: TrainConfig = TrainConfig()) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.seed = seed
        self.threshold = threshold
        self.baseline_size = baseline_size
        self.train_config = train_config
        self._monitor: Optional[DriftMonitor] = None
        self.decisions: list = []

    @property
    def active_path(self) -> Path:
        return self.directory / "active.json"

    @property
    def candidate_path(self) -> Path:
        return self.directory / "candidate.json"

    @property
    def previous_path(self) -> Path:
        return self.directory / "previous.json"

    def initialize(self, model: TypoModel, *,
                   overwrite: bool = False) -> str:
        """Install the first active model (idempotent); returns digest.

        ``overwrite=True`` re-seeds the directory from ``model`` and
        clears candidate/previous leftovers — the study runner uses it
        at every (re)start so a resumed run replays the lifecycle fold
        from the same initial state a crash-free run started from.
        """
        if overwrite or not self.active_path.exists():
            for path in (self.candidate_path, self.previous_path):
                if path.exists():
                    path.unlink()
            self._monitor = None
            self.decisions = []
            return save_model(model, str(self.active_path))
        return self.active().digest()

    def active(self) -> TypoModel:
        return load_model(str(self.active_path))

    def monitor(self) -> DriftMonitor:
        """The drift monitor, built lazily against the active model."""
        if self._monitor is None:
            self._monitor = DriftMonitor(
                self.active(), self.seed,
                baseline_size=self.baseline_size,
                threshold=self.threshold)
        return self._monitor

    def run_cycle(self, name: str, window_X: np.ndarray,
                  window_y: np.ndarray, *,
                  phase_hook: Callable[[str], None] = _noop_hook
                  ) -> LifecycleDecision:
        """One full detect → retrain → gate → promote/reject cycle.

        Pure fold over ``(active model, window)``: re-running the same
        cycle after a crash at any phase boundary reaches the same
        decision and the same on-disk state.
        """
        incumbent = self.active()
        monitor = self.monitor()
        drift = monitor.observe(incumbent, name, window_X, window_y)
        if not drift.tripped:
            decision = LifecycleDecision(
                window=name, action="hold", drift=drift, gate=None,
                active_digest=incumbent.digest())
            self.decisions.append(decision)
            return decision

        candidate = shadow_retrain(
            incumbent, self.seed, name, window_X, window_y,
            train_size=self.baseline_size, config=self.train_config)
        phase_hook("trained")
        save_model(candidate, str(self.candidate_path))
        phase_hook("candidate_saved")

        gate = gate_candidate(incumbent, candidate, window_X, window_y,
                              monitor.baseline_X, monitor.baseline_y)
        phase_hook("gated")
        if gate.promote:
            save_model(incumbent, str(self.previous_path))
            phase_hook("previous_saved")
            os.replace(self.candidate_path, self.active_path)
            phase_hook("promoted")
            # the monitor keeps its incumbent baseline on purpose: the
            # drift trajectory stays comparable across promotes
            action = "promote"
            active_digest = candidate.digest()
        else:
            action = "reject"
            active_digest = incumbent.digest()
        decision = LifecycleDecision(
            window=name, action=action, drift=drift, gate=gate,
            active_digest=active_digest)
        self.decisions.append(decision)
        return decision

    def check_live_disagreement(self, X: np.ndarray, *,
                                threshold: float = DISAGREEMENT_THRESHOLD,
                                phase_hook: Callable[[str], None]
                                = _noop_hook) -> Dict:
        """Demote the active model if it disagrees with its predecessor.

        Compares active vs. previous verdicts on a live window; a
        disagreement rate past ``threshold`` triggers a rollback (one
        atomic ``os.replace``).  Verdicts stay labeled with the model
        digest that produced them, and nothing is dropped — the caller
        keeps serving through the swap.
        """
        if not self.previous_path.exists():
            return {"checked": False, "disagreement": 0.0,
                    "rolled_back": False}
        active = self.active()
        previous = load_model(str(self.previous_path))
        active_pred = active.message.scores(X) >= SCORE_THRESHOLD
        previous_pred = previous.message.scores(X) >= SCORE_THRESHOLD
        disagreement = (float(np.sum(active_pred != previous_pred))
                        / max(1, X.shape[0]))
        rolled_back = False
        if disagreement > threshold:
            os.replace(self.previous_path, self.active_path)
            phase_hook("rolled_back")
            self._monitor = None
            rolled_back = True
        return {"checked": True,
                "disagreement": round(disagreement, 12),
                "rolled_back": rolled_back,
                "active_digest": self.active().digest()}

    def decisions_digest(self) -> str:
        """SHA-256 over every lifecycle decision — the promote/rollback
        trajectory pin."""
        payload = json.dumps([d.to_dict() for d in self.decisions],
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_drift_drill(directory: Union[str, Path], seed: int, *,
                    train_ranks: int = 300,
                    train_dataset_size: int = 40,
                    pool_size: int = 400,
                    evasion_bias: float = 0.9,
                    campaign: str = "adaptive-campaign",
                    threshold: float = DRIFT_THRESHOLD,
                    reset: bool = False,
                    phase_hook: Callable[[str], None] = _noop_hook
                    ) -> Dict:
    """The end-to-end drill: campaign → trip → retrain → gated promote.

    Returns a JSON-clean report with wall-clock timings (train, cycle)
    and the deterministic trajectory digests the bench and the
    acceptance tests pin.  Everything except the timings is a pure
    function of ``(seed, drill parameters)``.

    ``reset=True`` re-seeds the directory from a fresh deterministic
    train before running — the recovery semantic after a kill at a
    promote/rollback boundary: replaying the whole fold from the
    initial model converges on the same bytes a crash-free drill wrote.
    """
    from repro.learned.train import train_typo_model

    t0 = time.perf_counter()
    lifecycle = ModelLifecycle(directory, seed, threshold=threshold)
    if lifecycle.active_path.exists() and not reset:
        model = lifecycle.active()
        train_seconds = 0.0
    else:
        model, _ = train_typo_model(seed, ranks=train_ranks,
                                    dataset_size=train_dataset_size)
        train_seconds = time.perf_counter() - t0
        lifecycle.initialize(model, overwrite=reset)

    incumbent = lifecycle.active()
    window_X, window_y = campaign_message_window(
        incumbent, seed, campaign, pool_size=pool_size,
        evasion_bias=evasion_bias)
    pre_recall = _recall(incumbent, window_X, window_y)

    t1 = time.perf_counter()
    decision = lifecycle.run_cycle(campaign, window_X, window_y,
                                   phase_hook=phase_hook)
    cycle_seconds = time.perf_counter() - t1
    post_recall = _recall(lifecycle.active(), window_X, window_y)
    disagreement = lifecycle.check_live_disagreement(
        lifecycle.monitor().baseline_X, phase_hook=phase_hook)

    return {
        "seed": seed,
        "campaign": campaign,
        "pre_drift_recall": round(lifecycle.monitor().baseline_recall, 12),
        "window_recall_before": round(pre_recall, 12),
        "window_recall_after": round(post_recall, 12),
        "decision": decision.to_dict(),
        "disagreement": disagreement,
        "drift_digest": lifecycle.monitor().digest(),
        "decisions_digest": lifecycle.decisions_digest(),
        "active_digest": lifecycle.active().digest(),
        "train_seconds": train_seconds,
        "cycle_seconds": cycle_seconds,
    }
