"""repro — a simulation-first reproduction of "Email Typosquatting"
(Szurdi & Christin, IMC 2017).

The package rebuilds the paper's entire measurement apparatus against a
simulated Internet: typo generation and distance metrics (:mod:`repro.core`),
DNS and SMTP substrates (:mod:`repro.dnssim`, :mod:`repro.smtpsim`), the
collection infrastructure (:mod:`repro.infra`), the processing pipeline and
five-layer spam funnel (:mod:`repro.pipeline`, :mod:`repro.spamfilter`),
synthetic traffic and labelled corpora (:mod:`repro.workloads`), the wild
ecosystem scan (:mod:`repro.ecosystem`), the volume projection
(:mod:`repro.extrapolate`), the honey-email experiments (:mod:`repro.honey`),
and the analyses behind every table and figure (:mod:`repro.analysis`,
orchestrated by :mod:`repro.experiment`).

Quickstart::

    from repro import ExperimentConfig, StudyRunner

    results = StudyRunner(ExperimentConfig(seed=2016)).run()
    print(len(results.true_typo_records()), "true typo emails collected")
"""

from repro.core import (
    TypoCandidate,
    TypoGenerator,
    build_study_corpus,
    damerau_levenshtein,
    fat_finger_distance,
    visual_distance,
)
from repro.experiment import ExperimentConfig, StudyResults, StudyRunner
from repro.util import SeededRng

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SeededRng",
    "damerau_levenshtein",
    "fat_finger_distance",
    "visual_distance",
    "TypoGenerator",
    "TypoCandidate",
    "build_study_corpus",
    "ExperimentConfig",
    "StudyRunner",
    "StudyResults",
]
