"""Seeded lookup workload: what millions of mail servers would ask.

The serving benchmark needs traffic shaped like the operational reality
the paper implies: mostly *clean* domains (users type correctly),
a Zipf-ish skew toward popular targets (rank drawn log-uniformly, so
rank 1 is ~``log(max_rank)`` times likelier than rank ``max_rank``), a
tail of generated typos (gtypos), the rare *registered* typo (ctypo —
the needle the service exists to find), and junk: unrelated domains,
addresses, unicode, over-long labels, bare TLDs.

Queries draw from finite per-category pools built once at construction,
which mirrors real traffic (the same popular domains recur constantly)
and gives the benchmark a well-defined *warm* regime: after one pass
over the pools, every lookup is a verdict-memo hit.  Everything is a
pure function of ``(seed, max_rank, config, pool sizes, mix)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.typogen import apply_edit, enumerate_edit_ops
from repro.ecosystem.internet import InternetConfig
from repro.ecosystem.world import WorldModel
from repro.util.rand import SeededRng, derive_seed

__all__ = ["WorkloadMix", "LookupWorkload"]

#: hand-picked pathological queries every junk pool includes — the
#: service must answer these, not raise (the property suite pins that)
_EDGE_QUERIES: Tuple[str, ...] = (
    "",
    ".",
    "com",
    "@",
    "user@",
    "gmail",                        # bare label, no TLD
    "GMAIL.COM.",                   # case + trailing dot (clean after parse)
    "user@gmial.com",               # address form of a deletion typo
    "gmáil.com",               # unicode confusable
    "пример.com",  # non-latin label
    "-gmail-.com",
    "a" * 70 + ".com",              # label beyond the DNS length rule
    "zzzz123.com",                  # filler-shaped but not a filler
)


@dataclass(frozen=True)
class WorkloadMix:
    """Category weights for the lookup stream (need not sum to 1)."""

    clean: float = 0.55
    gtypo: float = 0.25
    ctypo: float = 0.12
    junk: float = 0.08

    def __post_init__(self) -> None:
        weights = (self.clean, self.gtypo, self.ctypo, self.junk)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("mix weights must be non-negative and "
                             "sum to a positive total")


class LookupWorkload:
    """Deterministic generator of a mixed lookup stream."""

    def __init__(self, seed: int, max_rank: int, *,
                 config: Optional[InternetConfig] = None,
                 pool_size: int = 4096,
                 mix: Optional[WorkloadMix] = None,
                 world: Optional[WorldModel] = None) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.seed = seed
        self.max_rank = max_rank
        self.pool_size = pool_size
        self.mix = mix or WorkloadMix()
        world = world or WorldModel(seed, config)
        rng = SeededRng(derive_seed(seed, "lookup-workload"))
        self._clean = self._build_clean(world, rng.child("clean"))
        self._gtypo = self._build_gtypos(world, rng.child("gtypo"))
        self._ctypo = self._build_ctypos(world, rng.child("ctypo"))
        self._junk = self._build_junk(rng.child("junk"))
        self._pools = (self._clean, self._gtypo, self._ctypo, self._junk)
        total = (self.mix.clean + self.mix.gtypo + self.mix.ctypo
                 + self.mix.junk)
        acc = 0.0
        cuts: List[float] = []
        for weight in (self.mix.clean, self.mix.gtypo, self.mix.ctypo):
            acc += weight / total
            cuts.append(acc)
        self._cuts = tuple(cuts)

    # -- pool construction -------------------------------------------------

    def _zipfish_rank(self, rng: SeededRng) -> int:
        """Log-uniform rank draw: the head of the list dominates."""
        rank = int(self.max_rank ** rng.random())
        return min(max(rank, 1), self.max_rank)

    def _build_clean(self, world: WorldModel, rng: SeededRng) -> Tuple[str, ...]:
        return tuple(world.target_domain(self._zipfish_rank(rng))
                     for _ in range(self.pool_size))

    def _build_gtypos(self, world: WorldModel, rng: SeededRng) -> Tuple[str, ...]:
        ops_cache: Dict[str, list] = {}
        out: List[str] = []
        while len(out) < self.pool_size:
            rank = self._zipfish_rank(rng)
            label, suffix = world.target_parts(rank)
            ops = ops_cache.get(label)
            if ops is None:
                ops = enumerate_edit_ops(label)
                ops_cache[label] = ops
            if not ops:
                continue
            op, index, char = rng.choice(ops)
            out.append(f"{apply_edit(label, op, index, char)}.{suffix}")
        return tuple(out)

    def _build_ctypos(self, world: WorldModel, rng: SeededRng) -> Tuple[str, ...]:
        """Registered-typo queries — fall back to a gtypo when a drawn
        rank registered nothing (rare at head ranks)."""
        registered_cache: Dict[int, List[str]] = {}
        out: List[str] = []
        while len(out) < self.pool_size:
            domain = None
            for _ in range(12):
                rank = self._zipfish_rank(rng)
                domains = registered_cache.get(rank)
                if domains is None:
                    grid = world.rank_grid(rank)
                    label, suffix = world.target_parts(rank)
                    domains = [
                        f"{apply_edit(label, *grid.decode(int(flat)))}"
                        f".{suffix}"
                        for flat in grid.registered.tolist()]
                    registered_cache[rank] = domains
                if domains:
                    domain = rng.choice(domains)
                    break
            if domain is None:
                label, suffix = world.target_parts(self._zipfish_rank(rng))
                ops = enumerate_edit_ops(label)
                op, index, char = rng.choice(ops)
                domain = f"{apply_edit(label, op, index, char)}.{suffix}"
            out.append(domain)
        return tuple(out)

    def _build_junk(self, rng: SeededRng) -> Tuple[str, ...]:
        out: List[str] = list(_EDGE_QUERIES[:self.pool_size])
        suffixes = (".com", ".net", ".org", ".io")
        while len(out) < self.pool_size:
            length = rng.randint(6, 14)
            out.append(rng.token(length) + rng.choice(suffixes))
        return tuple(out[:self.pool_size])

    # -- the stream --------------------------------------------------------

    def pool_entries(self) -> List[str]:
        """Every distinct query the stream can emit (the warmup set)."""
        seen = set()
        out: List[str] = []
        for pool in self._pools:
            for query in pool:
                if query not in seen:
                    seen.add(query)
                    out.append(query)
        return out

    def stream_digest(self, count: int) -> str:
        """SHA-256 over the first ``count`` stream queries.

        The workload's replay identity: the chaos acceptance suite pins
        verdict-stream digests per ``(seed, plan, workload)`` triple,
        and this is the cheap way to assert two runs really served the
        same workload before comparing their verdicts.
        """
        digest = hashlib.sha256()
        for query in self.queries(count):
            digest.update(query.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def queries(self, count: int) -> Iterator[str]:
        """``count`` seeded draws from the mixed pools.

        Every call restarts the same stream — two calls with the same
        ``count`` yield identical sequences.
        """
        rng = SeededRng(derive_seed(self.seed, "lookup-stream"))
        random = rng.random
        cut_clean, cut_gtypo, cut_ctypo = self._cuts
        clean, gtypo, ctypo, junk = self._pools
        n_clean, n_gtypo = len(clean), len(gtypo)
        n_ctypo, n_junk = len(ctypo), len(junk)
        for _ in range(count):
            u = random()
            if u < cut_clean:
                yield clean[int(random() * n_clean)]
            elif u < cut_gtypo:
                yield gtypo[int(random() * n_gtypo)]
            elif u < cut_ctypo:
                yield ctypo[int(random() * n_ctypo)]
            else:
                yield junk[int(random() * n_junk)]
