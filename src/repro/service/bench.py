"""The million-lookup serving benchmark behind ``repro serve-bench``.

Builds the resident index + engine, generates a seeded mixed workload
(:class:`~repro.service.workload.LookupWorkload`), optionally verifies a
parity sample against the brute-force scan path, warms the pools, then
times every lookup individually: p50/p95/p99 latency, sustained QPS,
index build time, and cache hit rates.  The same entry dict feeds the
human-readable CLI report, the ``query_service`` section of
``BENCH_perf.json`` (via :func:`record_query_service`), and the
perfsmoke regression gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core import clear_kernel_caches, kernel_cache_stats
from repro.ecosystem.internet import InternetConfig
from repro.faultsim.plan import FaultPlan
from repro.service.engine import AdmissionPolicy, RiskEngine
from repro.service.health import (
    HealthPolicy,
    ResilientServer,
    verdict_stream_digest,
)
from repro.service.index import TypoRiskIndex
from repro.service.workload import LookupWorkload, WorkloadMix
from repro.util.perf import PerfRegistry, paused_gc, throughput

__all__ = ["ServeBenchResult", "ParityError", "run_serve_bench",
           "record_query_service", "ChaosBenchResult",
           "run_serve_chaos_bench", "record_service_chaos",
           "record_learned_detector",
           "QUERY_SERVICE_HISTORY_LIMIT"]

QUERY_SERVICE_HISTORY_LIMIT = 50

#: verdict source -> serving lane, for per-lane latency buckets; the
#: fault-free sources all belong to the full lane
_SOURCE_LANES = {
    "rules": "full", "exact": "full", "index": "full", "scorer": "full",
    "degraded": "degraded", "rules_only": "rules_only", "shed": "shed",
}


class ParityError(AssertionError):
    """A service verdict diverged from the brute-force scan path."""


@dataclass
class ServeBenchResult:
    """Everything one serving run measured."""

    seed: int
    max_rank: int
    lookups: int
    pool_size: int
    distinct_queries: int
    score_mode: str
    build_seconds: float
    workload_seconds: float
    warmup_seconds: float
    wall_seconds: float
    qps: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float
    parity_checked: int
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    action_counts: Dict[str, int] = field(default_factory=dict)
    engine_cache: Dict[str, int] = field(default_factory=dict)
    kernel_caches: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def engine_hit_rate(self) -> float:
        total = self.engine_cache.get("hits", 0) + self.engine_cache.get(
            "misses", 0)
        return self.engine_cache.get("hits", 0) / total if total else 0.0

    def entry(self) -> Dict:
        """The ``query_service`` record for BENCH_perf.json."""
        return {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "seed": self.seed,
            "ranks": self.max_rank,
            "lookups": self.lookups,
            "pool_size": self.pool_size,
            "distinct_queries": self.distinct_queries,
            "score_mode": self.score_mode,
            "build_seconds": round(self.build_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 3),
            "qps": round(self.qps, 1),
            "p50_us": round(self.p50_us, 2),
            "p95_us": round(self.p95_us, 2),
            "p99_us": round(self.p99_us, 2),
            "max_us": round(self.max_us, 1),
            "engine_hit_rate": round(self.engine_hit_rate, 4),
            "parity_checked": self.parity_checked,
            "verdicts": dict(sorted(self.verdict_counts.items())),
            "actions": dict(sorted(self.action_counts.items())),
        }

    def report_lines(self) -> List[str]:
        verdicts = ", ".join(f"{name}={count}" for name, count
                             in sorted(self.verdict_counts.items()))
        return [
            f"serve-bench: seed={self.seed} ranks={self.max_rank} "
            f"lookups={self.lookups} (distinct {self.distinct_queries}) "
            f"scorer={self.score_mode}",
            f"  index build   {self.build_seconds * 1e3:8.1f} ms",
            f"  workload gen  {self.workload_seconds * 1e3:8.1f} ms",
            f"  warmup        {self.warmup_seconds * 1e3:8.1f} ms",
            f"  serving       {self.wall_seconds:8.3f} s   "
            f"({self.qps:,.0f} lookups/s)",
            f"  latency p50   {self.p50_us:8.2f} us",
            f"  latency p95   {self.p95_us:8.2f} us",
            f"  latency p99   {self.p99_us:8.2f} us "
            f"(max {self.max_us:,.0f} us)",
            f"  verdict memo  {self.engine_hit_rate * 100:7.2f} % hits "
            f"({self.engine_cache.get('hits', 0)} hits / "
            f"{self.engine_cache.get('misses', 0)} misses)",
            f"  verdicts      {verdicts}",
            f"  parity checks {self.parity_checked} vs brute-force scan",
        ]


def run_serve_bench(seed: int = 606, max_rank: int = 100_000, *,
                    lookups: int = 1_000_000,
                    pool_size: int = 4096,
                    warmup: bool = True,
                    parity: int = 0,
                    config: Optional[InternetConfig] = None,
                    mix: Optional[WorkloadMix] = None,
                    engine: Optional[RiskEngine] = None,
                    score_mode: str = "rules",
                    model=None,
                    perf: Optional[PerfRegistry] = None) -> ServeBenchResult:
    """Serve ``lookups`` mixed queries and measure the hot path.

    ``parity`` additionally re-answers that many distinct pool queries
    through the brute-force all-targets scan and demands byte-identical
    verdicts (raising :class:`ParityError` on the first divergence) —
    the acceptance check that the index is pure acceleration.  A
    prebuilt ``engine`` (e.g. loaded from a ``repro-risk-index@1``
    artifact) skips index construction; its build time is then the
    artifact load time already paid by the caller.

    ``score_mode="learned"`` serves layer 4 through the domain-lane
    model (requires ``model``); the brute-force parity contract holds in
    either mode since retrieval, not scoring, is what parity varies.
    """
    clear_kernel_caches()   # hit rates below describe this run alone
    start = perf_counter()
    if engine is None:
        index = TypoRiskIndex(seed, max_rank, config=config, perf=perf)
        engine = RiskEngine(index,
                            max_cached_verdicts=max(1 << 15, 8 * pool_size),
                            scorer=score_mode, model=model,
                            perf=perf)
    else:
        index = engine.index
        seed, max_rank = index.seed, index.max_rank
        score_mode = engine.scorer
    build_seconds = perf_counter() - start

    start = perf_counter()
    workload = LookupWorkload(seed, max_rank, config=config,
                              pool_size=pool_size, mix=mix,
                              world=index.world)
    queries = list(workload.queries(lookups))
    workload_seconds = perf_counter() - start

    distinct = workload.pool_entries()
    parity_checked = 0
    if parity > 0:
        for query in distinct[:parity]:
            fast = engine.lookup(query).canonical_json()
            slow = engine.lookup_bruteforce(query).canonical_json()
            if fast != slow:
                raise ParityError(
                    f"verdict for {query!r} diverges from the "
                    f"brute-force scan:\n  index: {fast}\n  scan:  {slow}")
            parity_checked += 1

    lookup = engine.lookup
    start = perf_counter()
    if warmup:
        for query in distinct:
            lookup(query)
    warmup_seconds = perf_counter() - start

    latencies = np.empty(len(queries), dtype=np.float64)
    timer = perf_counter
    if perf is None:
        perf = PerfRegistry()
    with paused_gc():
        wall_start = timer()
        for position, query in enumerate(queries):
            t0 = timer()
            lookup(query)
            latencies[position] = timer() - t0
        wall_seconds = timer() - wall_start
    perf.add_seconds("service.serve", wall_seconds)
    perf.count("service.lookups", len(queries))

    p50, p95, p99 = np.percentile(latencies, (50.0, 95.0, 99.0)) * 1e6
    verdict_counts: Dict[str, int] = {}
    action_counts: Dict[str, int] = {}
    for query in queries:
        verdict = lookup(query)
        verdict_counts[verdict.verdict] = verdict_counts.get(
            verdict.verdict, 0) + 1
        action_counts[verdict.action] = action_counts.get(
            verdict.action, 0) + 1
    return ServeBenchResult(
        seed=seed, max_rank=max_rank, lookups=len(queries),
        pool_size=pool_size, distinct_queries=len(distinct),
        score_mode=score_mode,
        build_seconds=build_seconds, workload_seconds=workload_seconds,
        warmup_seconds=warmup_seconds, wall_seconds=wall_seconds,
        qps=throughput(len(queries), wall_seconds),
        p50_us=float(p50), p95_us=float(p95), p99_us=float(p99),
        max_us=float(latencies.max() * 1e6),
        parity_checked=parity_checked,
        verdict_counts=verdict_counts, action_counts=action_counts,
        engine_cache=engine.cache_stats(),
        kernel_caches=kernel_cache_stats())


@dataclass
class ChaosBenchResult:
    """Everything one chaos serving run measured and replayed."""

    seed: int
    max_rank: int
    lookups: int
    plan_digest: str
    wall_seconds: float
    qps: float
    verdict_digest: str
    lane_counts: Dict[str, int] = field(default_factory=dict)
    lane_qps: Dict[str, float] = field(default_factory=dict)
    lane_p50_us: Dict[str, float] = field(default_factory=dict)
    lane_p99_us: Dict[str, float] = field(default_factory=dict)
    dropped: int = 0
    shed_lookups: int = 0
    shed_reviews: int = 0
    degraded_lookups: int = 0
    rules_only_lookups: int = 0
    tripped: int = 0
    recovered: int = 0
    churn_swaps: int = 0
    final_state: str = "healthy"
    injected: Dict[str, object] = field(default_factory=dict)
    source_counts: Dict[str, int] = field(default_factory=dict)

    def entry(self) -> Dict:
        """The ``service_chaos`` record for BENCH_perf.json."""
        return {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"),
            "seed": self.seed,
            "ranks": self.max_rank,
            "lookups": self.lookups,
            "plan_digest": self.plan_digest,
            "wall_seconds": round(self.wall_seconds, 3),
            "qps": round(self.qps, 1),
            "verdict_digest": self.verdict_digest,
            "lane_counts": dict(sorted(self.lane_counts.items())),
            "lane_qps": {lane: round(value, 1) for lane, value
                         in sorted(self.lane_qps.items())},
            "lane_p99_us": {lane: round(value, 2) for lane, value
                            in sorted(self.lane_p99_us.items())},
            "dropped": self.dropped,
            "shed_lookups": self.shed_lookups,
            "shed_reviews": self.shed_reviews,
            "degraded_lookups": self.degraded_lookups,
            "rules_only_lookups": self.rules_only_lookups,
            "tripped": self.tripped,
            "recovered": self.recovered,
            "churn_swaps": self.churn_swaps,
            "final_state": self.final_state,
            "injected": dict(self.injected),
        }

    def report_lines(self) -> List[str]:
        lanes = ", ".join(
            f"{lane}={count}" for lane, count
            in sorted(self.lane_counts.items()))
        lane_rates = ", ".join(
            f"{lane}={self.lane_qps.get(lane, 0.0):,.0f}/s "
            f"p99={self.lane_p99_us.get(lane, 0.0):.1f}us"
            for lane in sorted(self.lane_counts))
        return [
            f"serve-bench --chaos: seed={self.seed} "
            f"ranks={self.max_rank} lookups={self.lookups} "
            f"plan={self.plan_digest[:12]}",
            f"  serving       {self.wall_seconds:8.3f} s   "
            f"({self.qps:,.0f} lookups/s, {self.dropped} dropped)",
            f"  lanes         {lanes}",
            f"  lane rates    {lane_rates}",
            f"  shedding      {self.shed_lookups} lookups, "
            f"{self.shed_reviews} review enqueues",
            f"  health        tripped={self.tripped} "
            f"recovered={self.recovered} final={self.final_state} "
            f"churn_swaps={self.churn_swaps}",
            f"  replay digest {self.verdict_digest}",
        ]


def run_serve_chaos_bench(seed: int = 606, max_rank: int = 100_000, *,
                          lookups: int = 200_000,
                          pool_size: int = 4096,
                          plan: Optional[FaultPlan] = None,
                          config: Optional[InternetConfig] = None,
                          mix: Optional[WorkloadMix] = None,
                          admission: Optional[AdmissionPolicy] = None,
                          health: Optional[HealthPolicy] = None,
                          perf: Optional[PerfRegistry] = None
                          ) -> ChaosBenchResult:
    """Serve a mixed workload through the resilient server under a
    fault plan, measuring each lane separately.

    ``plan`` defaults to :meth:`FaultPlan.service_chaos_demo` sized to
    ``lookups``.  Every lookup is timed individually and bucketed by
    serving lane (full / degraded / rules_only / shed), and the whole
    verdict stream is digested — the replay acceptance check is that
    the digest is invariant across runs and ``--jobs`` counts.  No
    lookup is ever dropped; ``dropped`` is recorded (and floored at
    zero by the perfsmoke gate) rather than assumed.
    """
    if plan is None:
        plan = FaultPlan.service_chaos_demo(seed=seed, lookups=lookups)
    clear_kernel_caches()
    index = TypoRiskIndex(seed, max_rank, config=config, perf=perf)
    engine = RiskEngine(index,
                        max_cached_verdicts=max(1 << 15, 8 * pool_size),
                        perf=perf)
    server = ResilientServer(engine, plan, admission=admission,
                             health=health, perf=perf)
    workload = LookupWorkload(seed, max_rank, config=config,
                              pool_size=pool_size, mix=mix,
                              world=index.world)
    queries = list(workload.queries(lookups))

    lookup = server.lookup
    latencies = np.empty(len(queries), dtype=np.float64)
    lanes: List[str] = []
    verdicts = []
    timer = perf_counter
    with paused_gc():
        wall_start = timer()
        for position, query in enumerate(queries):
            t0 = timer()
            verdict = lookup(query)
            latencies[position] = timer() - t0
            lanes.append(_SOURCE_LANES.get(verdict.source, verdict.source))
            verdicts.append(verdict)
        wall_seconds = timer() - wall_start
    if perf is not None:
        perf.add_seconds("service.chaos_serve", wall_seconds)
        perf.count("service.chaos_lookups", len(queries))

    lane_array = np.array(lanes)
    lane_counts: Dict[str, int] = {}
    lane_qps: Dict[str, float] = {}
    lane_p50: Dict[str, float] = {}
    lane_p99: Dict[str, float] = {}
    for lane in sorted(set(lanes)):
        mask = lane_array == lane
        lane_latencies = latencies[mask]
        count = int(mask.sum())
        lane_counts[lane] = count
        lane_seconds = float(lane_latencies.sum())
        lane_qps[lane] = throughput(count, lane_seconds)
        p50, p99 = np.percentile(lane_latencies, (50.0, 99.0)) * 1e6
        lane_p50[lane] = float(p50)
        lane_p99[lane] = float(p99)

    report = server.report()
    by_source = report["served"]["by_source"]
    return ChaosBenchResult(
        seed=seed, max_rank=max_rank, lookups=len(queries),
        plan_digest=plan.digest(),
        wall_seconds=wall_seconds,
        qps=throughput(len(queries), wall_seconds),
        verdict_digest=verdict_stream_digest(verdicts),
        lane_counts=lane_counts, lane_qps=lane_qps,
        lane_p50_us=lane_p50, lane_p99_us=lane_p99,
        dropped=len(queries) - report["served"]["answered"],
        shed_lookups=report["admission"]["shed_lookups"],
        shed_reviews=report["admission"]["shed_reviews"],
        degraded_lookups=by_source.get("degraded", 0),
        rules_only_lookups=by_source.get("rules_only", 0),
        tripped=report["health"]["tripped"],
        recovered=report["health"]["recovered"],
        churn_swaps=report["served"]["churn_swaps"],
        final_state=report["health"]["state"],
        injected=dict(report["injected"]),
        source_counts=dict(by_source))


def _record_bench_section(entry: Dict, path: Union[str, Path],
                          section_name: str) -> Dict:
    """Fold an entry into one BENCH_perf.json section.

    First recording becomes the regression baseline; later runs land in
    ``latest`` plus a bounded history — the same shape the study/scan
    perf gates use, so ``test_perf_baseline`` can gate >2x regressions.
    Returns the section as written.
    """
    path = Path(path)
    data: Dict = {}
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    section = data.setdefault(section_name, {})
    if "baseline" not in section:
        section["baseline"] = entry
    section["latest"] = entry
    history = section.setdefault("history", [])
    history.append(entry)
    del history[:-QUERY_SERVICE_HISTORY_LIMIT]
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return section


def record_query_service(entry: Dict,
                         path: Union[str, Path]) -> Dict:
    """Fold a serve-bench entry into BENCH_perf.json's ``query_service``."""
    return _record_bench_section(entry, path, "query_service")


def record_service_chaos(entry: Dict,
                         path: Union[str, Path]) -> Dict:
    """Fold a chaos-bench entry into BENCH_perf.json's ``service_chaos``."""
    return _record_bench_section(entry, path, "service_chaos")


def record_learned_detector(entry: Dict,
                            path: Union[str, Path]) -> Dict:
    """Fold a learned-detector entry into BENCH_perf.json's
    ``learned_detector``."""
    return _record_bench_section(entry, path, "learned_detector")


def record_drift_resilience(entry: Dict,
                            path: Union[str, Path]) -> Dict:
    """Fold a drift-drill entry into BENCH_perf.json's
    ``drift_resilience``."""
    return _record_bench_section(entry, path, "drift_resilience")
