"""Layered risk engine: the serving surface of the typo-risk service.

The classification shape follows the layered engine idiom (rules →
candidate retrieval → scorer → review-queue fallback), specialized to
the paper's online question "is this domain a plausible ctypo of a
top-ranked target, and how risky is it?":

1. **rules** — parse/normalize (an unparseable query is ``invalid``,
   never an exception), then operator allow/block lists;
2. **exact-target short-circuit** — one O(1) probe of the membership
   law answers the overwhelmingly common case (the domain *is* a
   target) without touching any kernel;
3. **index candidate retrieval** — the precomputed
   :class:`~repro.service.index.TypoRiskIndex` finds every target
   within one edit; no candidates means ``unrelated``;
4. **kernel scoring** — each candidate is scored with the memoized
   edit/fat-finger/visual kernels, the paper's edit-type priors
   (Figure 9: deletions/transpositions dominate received traffic), a
   rank-popularity weight, and a decisive escalation when the query is
   a ctypo the world actually *registered*;
5. **policy tiers** — :class:`~repro.defenses.risktiers.RiskPolicy`
   maps the score to block/rewrite/flag/review/allow; review-band
   verdicts are queued for humans (the fallback layer).

Every verdict is a pure function of ``(seed, max_rank, config, churn,
policy, query)`` — :meth:`RiskEngine.lookup_bruteforce` recomputes it
with the O(max_rank) all-targets scan in place of the index, and the
parity suite pins the two byte-identical.  The resident hot path is a
bounded verdict memo in front of the layers: a warm mixed workload
serves from one dict probe per lookup.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.distances import (
    classify_edit,
    fat_finger_for_edit,
    visual_distance_for_edit,
)
from repro.core.typogen import split_domain
from repro.defenses.risktiers import TIER_ACTIONS, RiskPolicy
from repro.ecosystem.delta import ChurnSchedule, _config_digest
from repro.ecosystem.internet import InternetConfig
from repro.service.index import TypoRiskIndex, normalize_query
from repro.util.perf import PerfRegistry
from repro.util.pool import parallel_map

__all__ = ["RiskVerdict", "RiskEngine", "AdmissionPolicy",
           "AdmissionController", "LookupShardTask", "run_lookup_shard"]

#: edit-type priors (paper Figure 9): deletions and transpositions
#: receive the most misdirected traffic, additions the least — the same
#: priors the autocorrect defense ranks suggestions with
_EDIT_PRIOR = {
    "deletion": 1.0,
    "transposition": 0.9,
    "substitution": 0.45,
    "addition": 0.25,
}


@dataclass(frozen=True)
class RiskVerdict:
    """One lookup's complete answer, canonical and picklable.

    ``verdict`` is the classification (``clean`` / ``typo_risk`` /
    ``unrelated`` / ``invalid``), ``tier``/``action`` the policy
    decision, ``source`` the layer that decided (``rules`` / ``exact``
    / ``index`` / ``scorer``).  ``candidates`` lists every target
    within one edit, rank-ascending; the ``target``/edit fields
    describe the best-scoring one.
    """

    query: str
    domain: str
    verdict: str
    tier: str
    action: str
    source: str
    target: Optional[str]
    target_rank: Optional[int]
    edit_type: Optional[str]
    fat_finger: bool
    visual: Optional[float]
    registered: bool
    score: float
    candidates: Tuple[str, ...]

    def canonical_dict(self) -> Dict:
        return {
            "query": self.query,
            "domain": self.domain,
            "verdict": self.verdict,
            "tier": self.tier,
            "action": self.action,
            "source": self.source,
            "target": self.target,
            "target_rank": self.target_rank,
            "edit_type": self.edit_type,
            "fat_finger": self.fat_finger,
            "visual": self.visual,
            "registered": self.registered,
            "score": self.score,
            "candidates": list(self.candidates),
        }

    def canonical_json(self) -> str:
        """The byte form the parity suite compares."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))


def _flat_verdict(query: str, domain: str, verdict: str, tier: str,
                  action: str, source: str,
                  candidates: Tuple[str, ...] = (),
                  target: Optional[str] = None,
                  target_rank: Optional[int] = None,
                  score: float = 0.0) -> RiskVerdict:
    return RiskVerdict(
        query=query, domain=domain, verdict=verdict, tier=tier,
        action=action, source=source, target=target,
        target_rank=target_rank, edit_type=None, fat_finger=False,
        visual=None, registered=False, score=score, candidates=candidates)


# -- admission control ----------------------------------------------------
#
# Overload is modeled, not measured: each admitted lookup charges a
# deterministic cost into a virtual queue that drains at a fixed rate per
# lookup slot.  Because the depth is a pure fold over (lane, injected
# stall) per sequence number — never wall-clock, never memo state — the
# same (seed, plan, workload) triple sheds the same lookups on every
# machine and at every --jobs count.


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds for the deterministic queue-depth overload model.

    ``drain_ms`` is the virtual service capacity reclaimed per lookup
    slot; lane costs charge against it.  When the modeled backlog
    reaches ``review_shed_depth`` the engine stops enqueueing
    review-band verdicts (level 1 — bookkeeping sheds first); at
    ``scorer_shed_depth`` it sheds the scorer itself and answers
    conservatively (level 2).  Rules/exact fast paths are O(1) and are
    never shed.
    """

    drain_ms: float = 2.0
    review_shed_depth: float = 40.0
    scorer_shed_depth: float = 120.0
    fast_cost_ms: float = 0.05
    degraded_cost_ms: float = 0.3
    scorer_cost_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.drain_ms <= 0:
            raise ValueError("drain_ms must be positive")
        if not 0 < self.review_shed_depth <= self.scorer_shed_depth:
            raise ValueError(
                "shed depths must satisfy 0 < review_shed_depth <= "
                f"scorer_shed_depth, got {self.review_shed_depth} / "
                f"{self.scorer_shed_depth}")
        for name in ("fast_cost_ms", "degraded_cost_ms", "scorer_cost_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def level_for(self, depth: float) -> int:
        """Overload level (0 admit / 1 shed reviews / 2 shed scorer)."""
        if depth >= self.scorer_shed_depth:
            return 2
        if depth >= self.review_shed_depth:
            return 1
        return 0


class AdmissionController:
    """Mutable fold state of the :class:`AdmissionPolicy` queue model.

    ``arrive()`` reads the overload level *before* the lookup is
    served; ``charge(cost_ms)`` folds the lookup's modeled cost in
    afterwards, so shedding a lookup genuinely relieves the modeled
    backlog.  Counters mirror into the optional
    :class:`~repro.util.perf.PerfRegistry` under ``service.*``.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None, *,
                 perf: Optional[PerfRegistry] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.perf = perf
        self.depth_ms = 0.0
        self.admitted = 0
        self.shed_lookups = 0
        self.shed_reviews = 0

    def arrive(self) -> int:
        """Overload level for the lookup about to be served."""
        return self.policy.level_for(self.depth_ms)

    def charge(self, cost_ms: float) -> None:
        """Fold one served lookup's modeled cost into the backlog."""
        self.admitted += 1
        self.depth_ms = max(
            0.0, self.depth_ms + cost_ms - self.policy.drain_ms)

    def record_shed_lookup(self) -> None:
        self.shed_lookups += 1
        if self.perf is not None:
            self.perf.count("service.shed_lookups")

    def record_shed_review(self) -> None:
        self.shed_reviews += 1
        if self.perf is not None:
            self.perf.count("service.shed_reviews")

    def as_dict(self) -> Dict[str, float]:
        return {"admitted": self.admitted,
                "shed_lookups": self.shed_lookups,
                "shed_reviews": self.shed_reviews,
                "depth_ms": self.depth_ms}


class RiskEngine:
    """Resident query engine over a :class:`TypoRiskIndex`.

    ``allowlist``/``blocklist`` are operator overrides (normalized
    domains); ``policy`` owns the score thresholds.  The engine memoizes
    verdicts by raw query string in two bounded generations (new/old
    dicts): filling the new generation shifts it to old and drops the
    previous old, so a warm memo degrades to ~50% retained instead of
    falling off a cliff to 0% at the capacity boundary.  Verdicts are
    pure, so which half survives is irrelevant for correctness.  A
    bounded review queue holds verdicts the policy could not place
    confidently.
    """

    def __init__(self, index: TypoRiskIndex, *,
                 policy: Optional[RiskPolicy] = None,
                 allowlist: Iterable[str] = (),
                 blocklist: Iterable[str] = (),
                 max_cached_verdicts: int = 1 << 15,
                 review_limit: int = 1024,
                 scorer: str = "rules",
                 model=None,
                 perf: Optional[PerfRegistry] = None) -> None:
        if scorer not in ("rules", "learned"):
            from repro.util.errors import ConfigError
            raise ConfigError(f"unknown scorer {scorer!r}; expected "
                              "rules or learned")
        if scorer == "learned" and model is None:
            from repro.util.errors import ConfigError
            raise ConfigError("scorer='learned' needs a loaded "
                              "repro-typo-model@1 (see `repro train`)")
        self.index = index
        self.scorer = scorer
        self.model = model
        #: per-rank registered-state cache for the learned scorer
        #: (label -> DomainState); bounded, dropped on epoch change
        self._state_cache: Dict[int, Dict] = {}
        self.policy = policy or RiskPolicy()
        self._allow = frozenset(normalize_query(d) for d in allowlist)
        self._block = frozenset(normalize_query(d) for d in blocklist)
        self._max_cached = max(1, int(max_cached_verdicts))
        #: each generation holds half the budget; new + old <= max
        self._gen_capacity = max(1, self._max_cached // 2)
        self._verdicts: Dict[str, RiskVerdict] = {}
        self._verdicts_old: Dict[str, RiskVerdict] = {}
        self._hits = 0
        self._misses = 0
        self._epoch = index.epoch
        #: bumped once per swap_model publish (lifecycle promotes)
        self.model_epoch = 0
        self.perf = perf
        #: review-band verdicts awaiting a human, most recent last
        self.review_queue: Deque[RiskVerdict] = deque(maxlen=review_limit)

    # -- the resident hot path --------------------------------------------

    def lookup(self, query: str) -> RiskVerdict:
        """Classify one query, serving repeats from the verdict memo."""
        return self.serve_full(query)

    def serve_full(self, query: str, *,
                   enqueue_review: bool = True) -> RiskVerdict:
        """The full layered path behind :meth:`lookup`.

        ``enqueue_review=False`` is the level-1 load-shedding hook:
        the verdict is still computed and memoized, but review-band
        bookkeeping (the human queue append) is skipped.
        """
        if self._epoch != self.index.epoch:
            # a churn delta landed since the memo warmed; stale verdicts
            # must not outlive the world that produced them
            self.clear_verdict_memo()
            self._epoch = self.index.epoch
        cached = self._memo_probe(query)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        verdict = self._classify(query, self.index.candidate_ranks)
        self._remember(verdict, enqueue_review=enqueue_review)
        return verdict

    def lookup_bruteforce(self, query: str) -> RiskVerdict:
        """The same classification with brute-force candidate retrieval.

        No memo, no review-queue side effects: this is the reference
        path the parity suite compares :meth:`lookup` against, byte for
        byte (``canonical_json``).
        """
        return self._classify(query,
                              self.index.brute_force_candidate_ranks)

    def batch_lookup(self, queries: Sequence[str], *,
                     jobs: Optional[int] = None) -> List[RiskVerdict]:
        """Classify a stream of queries, optionally fanned out.

        The serial path amortizes per-call overhead through the shared
        memo; ``jobs > 1`` partitions the stream across worker
        processes (each holding a per-process engine over the same
        world identity) and folds the computed verdicts back into the
        resident memo, so results are identical to serial lookups in
        order and content.
        """
        work = list(queries)
        if (jobs is None or jobs <= 1 or len(work) <= 1
                or self.scorer != "rules"):
            # the learned scorer stays resident: its model + state cache
            # don't ship to shard workers, and the memo amortizes anyway
            lookup = self.lookup
            return [lookup(query) for query in work]
        shard_count = min(jobs, len(work))
        step = (len(work) + shard_count - 1) // shard_count
        churn = tuple(sorted(self.index.churn_map().items()))
        tasks = [LookupShardTask(
            seed=self.index.seed, max_rank=self.index.max_rank,
            day=self.index.day, churn=churn, config=self.index.config,
            policy=self.policy,
            allowlist=tuple(sorted(self._allow)),
            blocklist=tuple(sorted(self._block)),
            queries=tuple(work[low:low + step]))
            for low in range(0, len(work), step)]
        shards = parallel_map(run_lookup_shard, tasks, jobs=jobs,
                              perf=self.perf)
        out = [verdict for shard in shards for verdict in shard]
        for verdict in out:
            if self._memo_probe(verdict.query) is None:
                self._remember(verdict)
        return out

    def apply_delta(self, schedule: ChurnSchedule, day: int) -> int:
        """Evolve the index to churn day ``day`` and drop stale verdicts.

        Since the hot-swap rework this is an alias for :meth:`hot_swap`
        without artifact persistence: the evolved generation is built
        off to the side and published atomically, and an *empty* delta
        (no rank churned, epoch unchanged) keeps the warm memo instead
        of invalidating it.
        """
        return self.hot_swap(schedule, day)

    def hot_swap(self, schedule: ChurnSchedule, day: int, *,
                 artifact_path: Optional[str] = None,
                 phase_hook: Optional[Callable[[str], None]] = None) -> int:
        """Two-phase crash-safe generation swap to churn day ``day``.

        Phase one builds the evolved :class:`TypoRiskIndex` off to the
        side (the resident generation keeps serving; nothing observable
        mutates).  Phase two optionally persists the new generation to
        ``artifact_path`` (atomic tmp+fsync+rename, so a kill leaves
        either the old artifact or the new one — both loadable) and
        then publishes it with a single attribute assignment; the epoch
        guard in :meth:`serve_full` retires the old generation's memo
        on the next lookup.  A kill at *any* point therefore leaves a
        doctor-valid engine that resumes from one of the two
        generations.  ``phase_hook`` is the torn-swap injection point:
        it is called with ``"built"`` (after phase one) and ``"saved"``
        (after artifact persistence, before publication) so chaos tests
        can SIGKILL mid-swap deterministically.

        An empty delta (no rank's generation moved) skips persistence,
        publication, and memo invalidation entirely — only the
        bookkeeping ``day`` advances.  Returns the number of ranks
        whose generation changed.
        """
        new_index, changed = self.index.evolved_generation(schedule, day)
        if changed == 0 and self._epoch == self.index.epoch:
            self.index.day = day
            return 0
        if phase_hook is not None:
            phase_hook("built")
        if artifact_path is not None:
            new_index.save(artifact_path)
        if phase_hook is not None:
            phase_hook("saved")
        self.index = new_index          # the atomic publish
        self.clear_verdict_memo()
        self._epoch = new_index.epoch
        return changed

    def swap_model(self, model) -> int:
        """Publish a new learned model (the lifecycle's promote hook).

        Single attribute assignment plus exactly one memo flush —
        verdicts memoized under the old model must not outlive it, but
        the world index, its epoch, and the engine's layered config are
        untouched (the drift lifecycle swaps models without re-churning
        the world).  ``model_epoch`` counts publishes so tests can pin
        "exactly one invalidation per swap".  A no-op swap (same object)
        keeps the warm memo.
        """
        if model is self.model:
            return self.model_epoch
        if self.scorer == "learned" and model is None:
            from repro.util.errors import ConfigError
            raise ConfigError("scorer='learned' cannot swap to a null "
                              "model")
        self.model = model
        self.clear_verdict_memo()
        self.model_epoch += 1
        return self.model_epoch

    def cache_stats(self) -> Dict[str, int]:
        """Verdict-memo counters; reset alongside the memo.

        ``hits``/``misses`` zero whenever :meth:`clear_verdict_memo`
        runs (epoch guard, hot swap, explicit clear) — the same
        convention as ``clear_distance_caches`` — so the stats always
        describe the *current* memo generation pair, and hit-rate math
        never mixes worlds.  ``size`` spans both generations.
        """
        return {"hits": self._hits, "misses": self._misses,
                "size": len(self._verdicts) + len(self._verdicts_old)}

    def clear_verdict_memo(self) -> None:
        """Drop both memo generations and zero the hit/miss counters."""
        self._verdicts = {}
        self._verdicts_old = {}
        self._state_cache = {}
        self._hits = 0
        self._misses = 0

    def shrink_memo(self) -> int:
        """Memory-pressure relief: drop the old generation only.

        Returns how many memoized verdicts were released.  The new
        generation survives, so the hot set keeps most of its warmth;
        verdict *content* is untouched (verdicts are pure), which is
        what lets chaos replay pin memory-pressure events as invisible
        in the verdict stream.
        """
        dropped = len(self._verdicts_old)
        self._verdicts_old = {}
        return dropped

    def _memo_probe(self, query: str) -> Optional[RiskVerdict]:
        """Probe both generations; promote an old-generation hit."""
        verdict = self._verdicts.get(query)
        if verdict is not None:
            return verdict
        verdict = self._verdicts_old.pop(query, None)
        if verdict is not None:
            self._store(verdict)
        return verdict

    def _store(self, verdict: RiskVerdict) -> None:
        if len(self._verdicts) >= self._gen_capacity:
            # shift-and-drop: the new generation ages into old, the
            # previous old generation is released
            self._verdicts_old = self._verdicts
            self._verdicts = {}
        self._verdicts[verdict.query] = verdict

    def _remember(self, verdict: RiskVerdict, *,
                  enqueue_review: bool = True) -> None:
        self._store(verdict)
        if enqueue_review and verdict.action == "review":
            self.review_queue.append(verdict)

    # -- degraded & conservative lanes ------------------------------------
    #
    # The resilient server (repro.service.health) answers from these
    # when the health state machine or admission control takes the
    # full scorer off the table.  All three are memo-independent pure
    # functions of the query: no memo probe, no memoization, no review
    # bookkeeping — which is what keeps chaos-lane verdict streams
    # byte-identical across --jobs fan-outs with per-shard memos.

    def fast_verdict(self, query: str) -> Optional[RiskVerdict]:
        """The O(1) layers only: rules + exact-target short circuit.

        Returns ``None`` when the query needs candidate retrieval —
        the signal the admission model uses to classify lane cost, and
        the reason these verdicts are never shed.
        """
        return self._fast_classify(query)[3]

    def degraded_lookup(self, query: str, *,
                        floor_tier: str = "medium") -> RiskVerdict:
        """Degraded-mode answer: rules + exact + index retrieval only.

        The kernel scorer is bypassed; any query with a candidate
        target within one edit gets the conservative ``floor_tier``
        verdict (source ``degraded``), biased toward caution because
        the scorer that would discriminate is unavailable.  Candidate
        order and the reported target (the lowest-ranked, i.e. most
        popular, candidate) stay deterministic.  Never raises.
        """
        domain, label, suffix, fast = self._fast_classify(query)
        if fast is not None:
            return fast
        ranks = self.index.candidate_ranks(domain)
        if not ranks:
            return _flat_verdict(query, domain, "unrelated", "none",
                                 "allow", "degraded")
        parts = self.index.world.target_parts
        names = tuple(f"{t_label}.{t_suffix}" for t_label, t_suffix
                      in (parts(rank) for rank in ranks))
        tier, action, score = self._floor(floor_tier)
        return _flat_verdict(query, domain, "typo_risk", tier, action,
                             "degraded", candidates=names,
                             target=names[0], target_rank=ranks[0],
                             score=score)

    def conservative_verdict(self, query: str, *, source: str,
                             floor_tier: str = "medium") -> RiskVerdict:
        """No-retrieval fallback for shed / rules-only / probe-failure.

        Rules and the exact-target probe still run (both O(1)); any
        other parseable query gets the ``floor_tier`` verdict labeled
        with ``source`` (``shed`` / ``rules_only`` / ``degraded``) so
        replay suites can pin exactly which lane answered.
        """
        domain, label, suffix, fast = self._fast_classify(query)
        if fast is not None:
            return fast
        tier, action, score = self._floor(floor_tier)
        return _flat_verdict(query, domain, "typo_risk", tier, action,
                             source, score=score)

    def _floor(self, floor_tier: str) -> Tuple[str, str, float]:
        """(tier, action, score) for a conservative floor tier."""
        thresholds = {"critical": self.policy.critical,
                      "high": self.policy.high,
                      "medium": self.policy.medium,
                      "review": self.policy.review}
        if floor_tier not in thresholds:
            raise ValueError(
                f"unknown floor tier {floor_tier!r}; "
                f"expected one of {sorted(thresholds)}")
        return floor_tier, TIER_ACTIONS[floor_tier], thresholds[floor_tier]

    # -- the layered classifier -------------------------------------------

    def _fast_classify(self, query: str) -> Tuple[
            str, Optional[str], Optional[str], Optional[RiskVerdict]]:
        """Layers 1-2: ``(domain, label, suffix, verdict-or-None)``.

        A non-``None`` verdict means rules or the exact-target probe
        decided; ``None`` means the query needs retrieval/scoring.
        """
        domain = normalize_query(query)
        try:
            label, suffix = split_domain(domain)
        except ValueError:
            return domain, None, None, _flat_verdict(
                query, domain, "invalid", "none", "allow", "rules")
        if domain in self._block:
            return domain, label, suffix, _flat_verdict(
                query, domain, "typo_risk", "critical", "block", "rules",
                score=1.0)
        if domain in self._allow:
            return domain, label, suffix, _flat_verdict(
                query, domain, "clean", "none", "allow", "rules")
        rank = self.index.target_rank(domain)
        if rank is not None:
            return domain, label, suffix, _flat_verdict(
                query, domain, "clean", "none", "allow", "exact",
                target=domain, target_rank=rank)
        return domain, label, suffix, None

    def _classify(self, query: str,
                  retrieval: Callable[[str], Tuple[int, ...]]
                  ) -> RiskVerdict:
        domain, label, suffix, fast = self._fast_classify(query)
        if fast is not None:
            return fast
        ranks = retrieval(domain)
        if not ranks:
            return _flat_verdict(query, domain, "unrelated", "none",
                                 "allow", "index")
        return self._score(query, domain, label, suffix, ranks)

    def _score(self, query: str, domain: str, label: str, suffix: str,
               ranks: Tuple[int, ...]) -> RiskVerdict:
        """Layer 4: kernel-score every candidate, keep the riskiest.

        Ties break to the lowest rank (``ranks`` ascends and only a
        strictly better score displaces the incumbent), so the verdict
        is deterministic for any candidate order the retrieval yields.

        With ``scorer="learned"`` the registered candidates are scored
        by the domain-lane model instead (one vectorized pass); queries
        with no registered candidate fall through to the rules law, the
        only signal available for typos nobody bought.
        """
        if self.scorer == "learned":
            verdict = self._score_learned(query, domain, label, suffix,
                                          ranks)
            if verdict is not None:
                return verdict
        index = self.index
        parts = index.world.target_parts
        best_score = -1.0
        best: Optional[Tuple] = None
        names: List[str] = []
        for rank in ranks:
            t_label, t_suffix = parts(rank)
            names.append(f"{t_label}.{t_suffix}")
            # retrieval guarantees DL exactly 1 here: distance 0 was
            # short-circuited by the exact layer
            op, edit_index = classify_edit(t_label, label)
            char = (label[edit_index]
                    if op in ("substitution", "addition") else "")
            fat_finger = fat_finger_for_edit(t_label, op, edit_index,
                                             char) == 1
            visual = visual_distance_for_edit(t_label, op, edit_index, char)
            registered = index.is_registered_typo(label, rank)
            popularity = 1.0 / (1.0 + math.log10(rank))
            base = (_EDIT_PRIOR[op]
                    * (1.0 / (1.0 + visual))
                    * (1.25 if fat_finger else 1.0)
                    * (0.4 + 0.6 * popularity))
            base = min(1.0, base)
            # a *live* registration is the paper's smoking gun: someone
            # paid to harvest this mistake, so the floor jumps past the
            # review band and quality only moves the score within the
            # high tiers
            score = 0.55 + 0.45 * base if registered else 0.6 * base
            if score > best_score:
                best_score = score
                best = (rank, f"{t_label}.{t_suffix}", op, fat_finger,
                        visual, registered)
        rank, target, op, fat_finger, visual, registered = best
        tier, action = self.policy.tier_for(best_score)
        return RiskVerdict(
            query=query, domain=domain, verdict="typo_risk", tier=tier,
            action=action, source="scorer", target=target,
            target_rank=rank, edit_type=op, fat_finger=fat_finger,
            visual=visual, registered=registered, score=best_score,
            candidates=tuple(names))

    def _rank_states(self, rank: int) -> Dict:
        """``label -> DomainState`` for one rank's registered ctypos.

        Built lazily from the world's exact record stream and cached
        (bounded; the epoch-change memo flush drops it too) — the
        learned scorer pays the rank walk once per resident rank, then
        every later query against it is a dict probe plus the matmul.
        """
        states = self._state_cache.get(rank)
        if states is None:
            if len(self._state_cache) >= 4096:
                self._state_cache = {}
            world = self.index.world
            grid = world.rank_grid(rank)
            states = {split_domain(state.domain)[0]: state
                      for state in world.iter_rank_states(rank, grid)}
            self._state_cache[rank] = states
        return states

    def _score_learned(self, query: str, domain: str, label: str,
                       suffix: str,
                       ranks: Tuple[int, ...]) -> Optional[RiskVerdict]:
        """Model-score the registered candidates; None = fall back.

        The domain lane was trained on the scan pipeline's registered
        population, so only registered candidates are in-distribution;
        each contributes one feature row (its true world state) and the
        whole candidate set is scored in a single vectorized pass.
        """
        from repro.features.domains import state_feature_row

        index = self.index
        parts = index.world.target_parts
        candidates = []
        names: List[str] = []
        for rank in ranks:
            t_label, t_suffix = parts(rank)
            names.append(f"{t_label}.{t_suffix}")
            if not index.is_registered_typo(label, rank):
                continue
            state = self._rank_states(rank).get(label)
            if state is not None:
                candidates.append((rank, f"{t_label}.{t_suffix}", state))
        if not candidates:
            return None
        import numpy as np

        rows = np.vstack([state_feature_row(state)
                          for _, _, state in candidates])
        scores = self.model.domain.scores(rows)
        best_pos = 0
        for pos in range(1, len(candidates)):
            if scores[pos] > scores[best_pos]:
                best_pos = pos
        rank, target, state = candidates[best_pos]
        best_score = float(scores[best_pos])
        op, edit_index = classify_edit(split_domain(target)[0], label)
        char = (label[edit_index]
                if op in ("substitution", "addition") else "")
        fat_finger = fat_finger_for_edit(
            split_domain(target)[0], op, edit_index, char) == 1
        visual = visual_distance_for_edit(
            split_domain(target)[0], op, edit_index, char)
        tier, action = self.policy.tier_for(best_score)
        return RiskVerdict(
            query=query, domain=domain, verdict="typo_risk", tier=tier,
            action=action, source="scorer", target=target,
            target_rank=rank, edit_type=op, fat_finger=fat_finger,
            visual=visual, registered=True, score=best_score,
            candidates=tuple(names))


# -- pool fan-out ---------------------------------------------------------
#
# The batch path ships (world identity, policy, queries) to module-level
# workers — the same picklable-task idiom as the sharded scan.  Each
# worker process keeps one engine per world identity so a stream of
# batches pays index construction once, not per batch.


@dataclass(frozen=True)
class LookupShardTask:
    """One picklable slice of a batch lookup."""

    seed: int
    max_rank: int
    day: int
    churn: Tuple[Tuple[int, int], ...]
    config: Optional[InternetConfig]
    policy: RiskPolicy
    allowlist: Tuple[str, ...]
    blocklist: Tuple[str, ...]
    queries: Tuple[str, ...]


_SHARD_ENGINE: Dict[Tuple, RiskEngine] = {}


def run_lookup_shard(task: LookupShardTask) -> List[RiskVerdict]:
    """Process-pool entry point: classify one shard of queries."""
    key = (task.seed, task.max_rank, task.day, task.churn, task.policy,
           task.allowlist, task.blocklist, _config_digest(task.config))
    engine = _SHARD_ENGINE.get(key)
    if engine is None:
        _SHARD_ENGINE.clear()      # one resident world per worker
        index = TypoRiskIndex(task.seed, task.max_rank,
                              config=task.config,
                              churn=dict(task.churn), day=task.day)
        engine = RiskEngine(index, policy=task.policy,
                            allowlist=task.allowlist,
                            blocklist=task.blocklist)
        _SHARD_ENGINE[key] = engine
    lookup = engine.lookup
    return [lookup(query) for query in task.queries]
