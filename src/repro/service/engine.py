"""Layered risk engine: the serving surface of the typo-risk service.

The classification shape follows the layered engine idiom (rules →
candidate retrieval → scorer → review-queue fallback), specialized to
the paper's online question "is this domain a plausible ctypo of a
top-ranked target, and how risky is it?":

1. **rules** — parse/normalize (an unparseable query is ``invalid``,
   never an exception), then operator allow/block lists;
2. **exact-target short-circuit** — one O(1) probe of the membership
   law answers the overwhelmingly common case (the domain *is* a
   target) without touching any kernel;
3. **index candidate retrieval** — the precomputed
   :class:`~repro.service.index.TypoRiskIndex` finds every target
   within one edit; no candidates means ``unrelated``;
4. **kernel scoring** — each candidate is scored with the memoized
   edit/fat-finger/visual kernels, the paper's edit-type priors
   (Figure 9: deletions/transpositions dominate received traffic), a
   rank-popularity weight, and a decisive escalation when the query is
   a ctypo the world actually *registered*;
5. **policy tiers** — :class:`~repro.defenses.risktiers.RiskPolicy`
   maps the score to block/rewrite/flag/review/allow; review-band
   verdicts are queued for humans (the fallback layer).

Every verdict is a pure function of ``(seed, max_rank, config, churn,
policy, query)`` — :meth:`RiskEngine.lookup_bruteforce` recomputes it
with the O(max_rank) all-targets scan in place of the index, and the
parity suite pins the two byte-identical.  The resident hot path is a
bounded verdict memo in front of the layers: a warm mixed workload
serves from one dict probe per lookup.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.distances import (
    classify_edit,
    fat_finger_for_edit,
    visual_distance_for_edit,
)
from repro.core.typogen import split_domain
from repro.defenses.risktiers import RiskPolicy
from repro.ecosystem.delta import ChurnSchedule, _config_digest
from repro.ecosystem.internet import InternetConfig
from repro.service.index import TypoRiskIndex, normalize_query
from repro.util.perf import PerfRegistry
from repro.util.pool import parallel_map

__all__ = ["RiskVerdict", "RiskEngine", "LookupShardTask",
           "run_lookup_shard"]

#: edit-type priors (paper Figure 9): deletions and transpositions
#: receive the most misdirected traffic, additions the least — the same
#: priors the autocorrect defense ranks suggestions with
_EDIT_PRIOR = {
    "deletion": 1.0,
    "transposition": 0.9,
    "substitution": 0.45,
    "addition": 0.25,
}


@dataclass(frozen=True)
class RiskVerdict:
    """One lookup's complete answer, canonical and picklable.

    ``verdict`` is the classification (``clean`` / ``typo_risk`` /
    ``unrelated`` / ``invalid``), ``tier``/``action`` the policy
    decision, ``source`` the layer that decided (``rules`` / ``exact``
    / ``index`` / ``scorer``).  ``candidates`` lists every target
    within one edit, rank-ascending; the ``target``/edit fields
    describe the best-scoring one.
    """

    query: str
    domain: str
    verdict: str
    tier: str
    action: str
    source: str
    target: Optional[str]
    target_rank: Optional[int]
    edit_type: Optional[str]
    fat_finger: bool
    visual: Optional[float]
    registered: bool
    score: float
    candidates: Tuple[str, ...]

    def canonical_dict(self) -> Dict:
        return {
            "query": self.query,
            "domain": self.domain,
            "verdict": self.verdict,
            "tier": self.tier,
            "action": self.action,
            "source": self.source,
            "target": self.target,
            "target_rank": self.target_rank,
            "edit_type": self.edit_type,
            "fat_finger": self.fat_finger,
            "visual": self.visual,
            "registered": self.registered,
            "score": self.score,
            "candidates": list(self.candidates),
        }

    def canonical_json(self) -> str:
        """The byte form the parity suite compares."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))


def _flat_verdict(query: str, domain: str, verdict: str, tier: str,
                  action: str, source: str,
                  candidates: Tuple[str, ...] = (),
                  target: Optional[str] = None,
                  target_rank: Optional[int] = None,
                  score: float = 0.0) -> RiskVerdict:
    return RiskVerdict(
        query=query, domain=domain, verdict=verdict, tier=tier,
        action=action, source=source, target=target,
        target_rank=target_rank, edit_type=None, fat_finger=False,
        visual=None, registered=False, score=score, candidates=candidates)


class RiskEngine:
    """Resident query engine over a :class:`TypoRiskIndex`.

    ``allowlist``/``blocklist`` are operator overrides (normalized
    domains); ``policy`` owns the score thresholds.  The engine memoizes
    verdicts by raw query string in a bounded dict (cleared wholesale
    when full — verdicts are pure, so eviction order is irrelevant) and
    keeps a bounded review queue of verdicts the policy could not place
    confidently.
    """

    def __init__(self, index: TypoRiskIndex, *,
                 policy: Optional[RiskPolicy] = None,
                 allowlist: Iterable[str] = (),
                 blocklist: Iterable[str] = (),
                 max_cached_verdicts: int = 1 << 15,
                 review_limit: int = 1024,
                 perf: Optional[PerfRegistry] = None) -> None:
        self.index = index
        self.policy = policy or RiskPolicy()
        self._allow = frozenset(normalize_query(d) for d in allowlist)
        self._block = frozenset(normalize_query(d) for d in blocklist)
        self._max_cached = max(1, int(max_cached_verdicts))
        self._verdicts: Dict[str, RiskVerdict] = {}
        self._hits = 0
        self._misses = 0
        self._epoch = index.epoch
        self.perf = perf
        #: review-band verdicts awaiting a human, most recent last
        self.review_queue: Deque[RiskVerdict] = deque(maxlen=review_limit)

    # -- the resident hot path --------------------------------------------

    def lookup(self, query: str) -> RiskVerdict:
        """Classify one query, serving repeats from the verdict memo."""
        if self._epoch != self.index.epoch:
            # a churn delta landed since the memo warmed; stale verdicts
            # must not outlive the world that produced them
            self._verdicts.clear()
            self._epoch = self.index.epoch
        cached = self._verdicts.get(query)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        verdict = self._classify(query, self.index.candidate_ranks)
        self._remember(verdict)
        return verdict

    def lookup_bruteforce(self, query: str) -> RiskVerdict:
        """The same classification with brute-force candidate retrieval.

        No memo, no review-queue side effects: this is the reference
        path the parity suite compares :meth:`lookup` against, byte for
        byte (``canonical_json``).
        """
        return self._classify(query,
                              self.index.brute_force_candidate_ranks)

    def batch_lookup(self, queries: Sequence[str], *,
                     jobs: Optional[int] = None) -> List[RiskVerdict]:
        """Classify a stream of queries, optionally fanned out.

        The serial path amortizes per-call overhead through the shared
        memo; ``jobs > 1`` partitions the stream across worker
        processes (each holding a per-process engine over the same
        world identity) and folds the computed verdicts back into the
        resident memo, so results are identical to serial lookups in
        order and content.
        """
        work = list(queries)
        if jobs is None or jobs <= 1 or len(work) <= 1:
            lookup = self.lookup
            return [lookup(query) for query in work]
        shard_count = min(jobs, len(work))
        step = (len(work) + shard_count - 1) // shard_count
        churn = tuple(sorted(self.index.churn_map().items()))
        tasks = [LookupShardTask(
            seed=self.index.seed, max_rank=self.index.max_rank,
            day=self.index.day, churn=churn, config=self.index.config,
            policy=self.policy,
            allowlist=tuple(sorted(self._allow)),
            blocklist=tuple(sorted(self._block)),
            queries=tuple(work[low:low + step]))
            for low in range(0, len(work), step)]
        shards = parallel_map(run_lookup_shard, tasks, jobs=jobs,
                              perf=self.perf)
        out = [verdict for shard in shards for verdict in shard]
        for verdict in out:
            if verdict.query not in self._verdicts:
                self._remember(verdict)
        return out

    def apply_delta(self, schedule: ChurnSchedule, day: int) -> int:
        """Evolve the index to churn day ``day`` and drop stale verdicts."""
        changed = self.index.apply_delta(schedule, day)
        self._verdicts.clear()
        self._epoch = self.index.epoch
        return changed

    def cache_stats(self) -> Dict[str, int]:
        """Verdict-memo counters, reset-free (cleared with the memo)."""
        return {"hits": self._hits, "misses": self._misses,
                "size": len(self._verdicts)}

    def _remember(self, verdict: RiskVerdict) -> None:
        if len(self._verdicts) >= self._max_cached:
            self._verdicts.clear()
        self._verdicts[verdict.query] = verdict
        if verdict.action == "review":
            self.review_queue.append(verdict)

    # -- the layered classifier -------------------------------------------

    def _classify(self, query: str,
                  retrieval: Callable[[str], Tuple[int, ...]]
                  ) -> RiskVerdict:
        domain = normalize_query(query)
        try:
            label, suffix = split_domain(domain)
        except ValueError:
            return _flat_verdict(query, domain, "invalid", "none",
                                 "allow", "rules")
        if domain in self._block:
            return _flat_verdict(query, domain, "typo_risk", "critical",
                                 "block", "rules", score=1.0)
        if domain in self._allow:
            return _flat_verdict(query, domain, "clean", "none",
                                 "allow", "rules")
        rank = self.index.target_rank(domain)
        if rank is not None:
            return _flat_verdict(query, domain, "clean", "none", "allow",
                                 "exact", target=domain, target_rank=rank)
        ranks = retrieval(domain)
        if not ranks:
            return _flat_verdict(query, domain, "unrelated", "none",
                                 "allow", "index")
        return self._score(query, domain, label, suffix, ranks)

    def _score(self, query: str, domain: str, label: str, suffix: str,
               ranks: Tuple[int, ...]) -> RiskVerdict:
        """Layer 4: kernel-score every candidate, keep the riskiest.

        Ties break to the lowest rank (``ranks`` ascends and only a
        strictly better score displaces the incumbent), so the verdict
        is deterministic for any candidate order the retrieval yields.
        """
        index = self.index
        parts = index.world.target_parts
        best_score = -1.0
        best: Optional[Tuple] = None
        names: List[str] = []
        for rank in ranks:
            t_label, t_suffix = parts(rank)
            names.append(f"{t_label}.{t_suffix}")
            # retrieval guarantees DL exactly 1 here: distance 0 was
            # short-circuited by the exact layer
            op, edit_index = classify_edit(t_label, label)
            char = (label[edit_index]
                    if op in ("substitution", "addition") else "")
            fat_finger = fat_finger_for_edit(t_label, op, edit_index,
                                             char) == 1
            visual = visual_distance_for_edit(t_label, op, edit_index, char)
            registered = index.is_registered_typo(label, rank)
            popularity = 1.0 / (1.0 + math.log10(rank))
            base = (_EDIT_PRIOR[op]
                    * (1.0 / (1.0 + visual))
                    * (1.25 if fat_finger else 1.0)
                    * (0.4 + 0.6 * popularity))
            base = min(1.0, base)
            # a *live* registration is the paper's smoking gun: someone
            # paid to harvest this mistake, so the floor jumps past the
            # review band and quality only moves the score within the
            # high tiers
            score = 0.55 + 0.45 * base if registered else 0.6 * base
            if score > best_score:
                best_score = score
                best = (rank, f"{t_label}.{t_suffix}", op, fat_finger,
                        visual, registered)
        rank, target, op, fat_finger, visual, registered = best
        tier, action = self.policy.tier_for(best_score)
        return RiskVerdict(
            query=query, domain=domain, verdict="typo_risk", tier=tier,
            action=action, source="scorer", target=target,
            target_rank=rank, edit_type=op, fat_finger=fat_finger,
            visual=visual, registered=registered, score=best_score,
            candidates=tuple(names))


# -- pool fan-out ---------------------------------------------------------
#
# The batch path ships (world identity, policy, queries) to module-level
# workers — the same picklable-task idiom as the sharded scan.  Each
# worker process keeps one engine per world identity so a stream of
# batches pays index construction once, not per batch.


@dataclass(frozen=True)
class LookupShardTask:
    """One picklable slice of a batch lookup."""

    seed: int
    max_rank: int
    day: int
    churn: Tuple[Tuple[int, int], ...]
    config: Optional[InternetConfig]
    policy: RiskPolicy
    allowlist: Tuple[str, ...]
    blocklist: Tuple[str, ...]
    queries: Tuple[str, ...]


_SHARD_ENGINE: Dict[Tuple, RiskEngine] = {}


def run_lookup_shard(task: LookupShardTask) -> List[RiskVerdict]:
    """Process-pool entry point: classify one shard of queries."""
    key = (task.seed, task.max_rank, task.day, task.churn, task.policy,
           task.allowlist, task.blocklist, _config_digest(task.config))
    engine = _SHARD_ENGINE.get(key)
    if engine is None:
        _SHARD_ENGINE.clear()      # one resident world per worker
        index = TypoRiskIndex(task.seed, task.max_rank,
                              config=task.config,
                              churn=dict(task.churn), day=task.day)
        engine = RiskEngine(index, policy=task.policy,
                            allowlist=task.allowlist,
                            blocklist=task.blocklist)
        _SHARD_ENGINE[key] = engine
    lookup = engine.lookup
    return [lookup(query) for query in task.queries]
