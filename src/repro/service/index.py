"""Precomputed candidate index for the resident typo-risk query service.

Answering "which targets of the top-``max_rank`` universe sit within one
edit of this domain?" by brute force costs a Damerau-Levenshtein call per
target — a million kernel invocations per lookup at paper scale.  This
module turns that scan inside-out using the two structural facts of the
lazy :class:`~repro.ecosystem.world.WorldModel`:

* the **head targets** (the study's ~20 email providers) are few, so
  their *deletion neighbourhoods* can be inverted at build time into
  ``(suffix, variant) -> ranks`` buckets — the symmetric-delete trick:
  two strings are within DL-1 iff they are equal, one is a deletion of
  the other, or they share a single-character deletion.  A lookup probes
  the query label and each of its deletions (O(len) dict probes) and
  confirms survivors with the memoized DL kernel;
* the **filler targets** obey the PR-6 membership law
  (:meth:`WorldModel.target_rank` — ``<letters><index>.com`` with the
  slot's derived name matching), so the DL<=1 candidates among them are
  found *generatively*: every valid label within one edit of the query
  (via :func:`enumerate_edit_ops`, which is DL-exactly-1 by
  construction) is probed against the O(1) law.  A gapped-stem shape
  gate (letters then digits, no leading zero) prunes nearly all of the
  ~900 probes before any law evaluation.

Both paths are *pure acceleration*: :meth:`TypoRiskIndex.candidate_ranks`
is pinned equal to :meth:`brute_force_candidate_ranks` — a literal scan
of every materialized target — by the property suite, for arbitrary
query strings (unicode and over-length inputs return empty, never
raise).

The index also derives, lazily and per rank, the set of typo labels the
world actually *registered* (the ctypos), which the risk scorer uses to
escalate live squats over merely-possible typos; churn deltas
(:meth:`apply_delta`) invalidate only the ranks whose generation
changed.  A built index persists as a ``repro-risk-index@1`` artifact
with the same atomic-write + self-digest discipline as the scan
baseline, and ``repro doctor`` validates it through the same loader.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.distances import damerau_levenshtein
from repro.core.targets import EMAIL_TARGETS
from repro.core.typogen import apply_edit, enumerate_edit_ops, split_domain
from repro.ecosystem.delta import ChurnSchedule, _config_digest
from repro.ecosystem.internet import InternetConfig
from repro.ecosystem.world import WorldModel
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)
from repro.util.perf import PerfRegistry

__all__ = ["RISK_INDEX_FORMAT", "TypoRiskIndex", "normalize_query"]

#: artifact format tag; bump when the on-disk schema changes
RISK_INDEX_FORMAT = "repro-risk-index@1"

#: alphabet for reverse-edit probes of the filler law — fillers are
#: letters+digits, so hyphen edits can never reach one
_FILLER_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"
_FILLER_CHARS = frozenset(_FILLER_ALPHABET)

#: the filler label shape: a 4-9 letter stem then a decimal index with no
#: leading zero (``str`` never prints one) — a *gate*, not the oracle;
#: every surviving probe is confirmed against the membership law
_FILLER_SHAPE = re.compile(r"[a-z]{4,9}(?:0|[1-9][0-9]*)")


def normalize_query(query: str) -> str:
    """Canonical lookup form of a raw query string.

    Accepts what mail software actually holds at signup/delivery time:
    an address (``user@gmial.com``), a host with a trailing dot, mixed
    case, stray whitespace.  Never raises — malformed input normalizes
    to something :func:`split_domain` will reject downstream.
    """
    q = query.strip().lower().rstrip(".")
    if "@" in q:
        q = q.rsplit("@", 1)[1]
    return q


class TypoRiskIndex:
    """Inverted DL-1 candidate structures over the lazy world model.

    Construction cost is O(head targets) — independent of ``max_rank``,
    because the filler side of the universe is served by the membership
    law instead of a materialized set.  All retrieval state is a pure
    function of ``(seed, max_rank, config, churn)``.
    """

    def __init__(self, seed: int, max_rank: int, *,
                 config: Optional[InternetConfig] = None,
                 churn: Optional[Dict[int, int]] = None,
                 day: int = 0,
                 perf: Optional[PerfRegistry] = None) -> None:
        if max_rank < 1:
            raise ConfigError("max_rank must be >= 1")
        start = perf_counter()
        self.seed = seed
        self.max_rank = max_rank
        self.day = day
        self._churn: Dict[int, int] = dict(churn) if churn else {}
        self.world = WorldModel(seed, config, churn=self._churn or None)
        self.config = self.world.config
        #: monotone epoch, bumped by every applied delta so resident
        #: engines know to drop memoized verdicts
        self.epoch = 0
        #: lazily derived per-rank registered typo labels (the ctypos)
        self._registered_labels: Dict[int, FrozenSet[str]] = {}

        n_head = min(max_rank, len(EMAIL_TARGETS))
        buckets: Dict[Tuple[str, str], List[int]] = {}
        head_len_max = 0
        for rank in range(1, n_head + 1):
            label, suffix = self.world.target_parts(rank)
            head_len_max = max(head_len_max, len(label))
            variants = {label}
            variants.update(label[:i] + label[i + 1:]
                            for i in range(len(label)))
            for variant in variants:
                buckets.setdefault((suffix, variant), []).append(rank)
        self._head_buckets: Dict[Tuple[str, str], Tuple[int, ...]] = {
            key: tuple(ranks) for key, ranks in buckets.items()}
        #: a query label longer than the longest head label + 1 cannot be
        #: within one edit of any head target
        self._head_len_max = head_len_max
        max_filler_index = max_rank - len(EMAIL_TARGETS) - 1
        #: longest possible filler label (9-letter stem + widest index),
        #: 0 when the universe has no filler ranks at all
        self._filler_len_max = (
            9 + len(str(max_filler_index)) if max_filler_index >= 0 else 0)
        self.build_seconds = perf_counter() - start
        if perf is not None:
            perf.add_seconds("service.index_build", self.build_seconds)

    # -- identity ----------------------------------------------------------

    def churn_map(self) -> Dict[int, int]:
        """A copy of the index's rank -> generation churn map."""
        return dict(self._churn)

    @property
    def head_bucket_count(self) -> int:
        """How many (suffix, variant) deletion buckets the index holds."""
        return len(self._head_buckets)

    def target_rank(self, domain: str) -> Optional[int]:
        """The domain's rank in this index's universe, or ``None``."""
        return self.world.target_rank(domain, self.max_rank)

    # -- candidate retrieval ----------------------------------------------

    def candidate_ranks(self, domain: str) -> Tuple[int, ...]:
        """Ranks of every target within DL-1 of ``domain`` (same suffix).

        Includes the exact match (distance 0) when ``domain`` is itself
        a target, so the set is literally ``{rank : DL(query, target) <=
        1, same suffix}`` — the contract the brute-force parity suite
        pins.  Unparseable input (no TLD, empty label) returns ``()``.
        """
        try:
            label, suffix = split_domain(normalize_query(domain))
        except ValueError:
            return ()
        return self._candidate_ranks(label, suffix)

    def _candidate_ranks(self, label: str, suffix: str) -> Tuple[int, ...]:
        found: Set[int] = set()
        # head targets: symmetric-delete buckets + memoized DL confirm
        if len(label) <= self._head_len_max + 1:
            buckets = self._head_buckets
            world_parts = self.world.target_parts
            probes = [label]
            probes.extend(label[:i] + label[i + 1:]
                          for i in range(len(label)))
            for probe in probes:
                ranks = buckets.get((suffix, probe))
                if not ranks:
                    continue
                for rank in ranks:
                    if rank not in found and damerau_levenshtein(
                            label, world_parts(rank)[0]) <= 1:
                        found.add(rank)
        # filler targets: reverse-edit probes of the O(1) membership law
        if suffix == "com" and self._filler_len_max:
            target_rank = self.world.target_rank
            max_rank = self.max_rank
            for candidate in self._filler_probe_labels(label):
                rank = target_rank(candidate + ".com", max_rank)
                if rank is not None:
                    found.add(rank)
        return tuple(sorted(found))

    def _filler_probe_labels(self, label: str):
        """Filler-shaped labels within one edit of ``label`` (plus itself).

        Every yielded label is at DL distance exactly 0 or 1 from the
        query by construction (:func:`enumerate_edit_ops` enumerates
        each distinct valid DL-1 edit exactly once), so a law probe
        needs no distance confirmation — and conversely every filler
        within DL-1 *is* some valid single edit of the query, so the
        enumeration misses nothing.
        """
        length = len(label)
        if length < 4 or length > self._filler_len_max + 1:
            return
        # a single edit removes/replaces at most one character, so two or
        # more out-of-class characters can never reach a filler label
        foreign = sum(1 for ch in label if ch not in _FILLER_CHARS)
        if foreign >= 2:
            return
        fullmatch = _FILLER_SHAPE.fullmatch
        if foreign == 0 and fullmatch(label):
            yield label
        for op, index, char in enumerate_edit_ops(label, _FILLER_ALPHABET):
            candidate = apply_edit(label, op, index, char)
            if fullmatch(candidate):
                yield candidate

    def brute_force_candidate_ranks(self, domain: str) -> Tuple[int, ...]:
        """Reference retrieval: a DL scan over every materialized target.

        The oracle the parity suite compares :meth:`candidate_ranks`
        against — O(max_rank) kernel calls, exact by definition.
        """
        try:
            label, suffix = split_domain(normalize_query(domain))
        except ValueError:
            return ()
        out = []
        parts = self.world.target_parts
        for rank in range(1, self.max_rank + 1):
            t_label, t_suffix = parts(rank)
            if t_suffix == suffix and damerau_levenshtein(
                    label, t_label) <= 1:
                out.append(rank)
        return tuple(out)

    # -- registration ground truth ----------------------------------------

    def registered_typo_labels(self, rank: int) -> FrozenSet[str]:
        """The typo labels rank ``rank`` actually registered (its ctypos).

        Derived once per rank from the world's registration grid and
        cached; :meth:`apply_delta` drops exactly the churned entries.
        """
        cached = self._registered_labels.get(rank)
        if cached is None:
            grid = self.world.rank_grid(rank)
            label = grid.label
            decode = grid.decode
            cached = frozenset(
                apply_edit(label, *decode(int(flat)))
                for flat in grid.registered.tolist())
            self._registered_labels[rank] = cached
        return cached

    def is_registered_typo(self, label: str, rank: int) -> bool:
        """Is ``label`` (under the rank's suffix) a live ctypo of ``rank``?"""
        return label in self.registered_typo_labels(rank)

    # -- churn deltas ------------------------------------------------------

    def _delta_against(self, schedule: ChurnSchedule,
                       day: int) -> Tuple[Dict[int, int], List[int]]:
        """Validate ``schedule`` and diff its day-``day`` churn vs ours."""
        if schedule.seed != self.seed:
            raise ConfigError(
                f"churn schedule seed {schedule.seed} does not match "
                f"index seed {self.seed}")
        if schedule.max_rank < self.max_rank:
            raise ConfigError(
                f"churn schedule covers ranks 1..{schedule.max_rank}, "
                f"index needs 1..{self.max_rank}")
        new_churn = schedule.generations(day)
        old_churn = self._churn
        changed = [rank for rank in set(old_churn) | set(new_churn)
                   if rank <= self.max_rank
                   and old_churn.get(rank, 0) != new_churn.get(rank, 0)]
        return new_churn, changed

    def apply_delta(self, schedule: ChurnSchedule, day: int) -> int:
        """Evolve the index to churn day ``day``; returns ranks touched.

        Target *identities* never churn, so the candidate buckets and
        the membership law are untouched; only the registered-ctypo
        caches of ranks whose generation changed are invalidated, and
        the world's per-rank streams re-key.  The delta tests pin the
        result equal to a fresh index built over the evolved world.

        An *empty* delta — no rank's generation moves (and so every
        memoized verdict is still valid) — is a no-op: the epoch does
        not bump, so resident engines keep their warm memos.  Only the
        bookkeeping ``day`` advances.
        """
        new_churn, changed = self._delta_against(schedule, day)
        if not changed:
            self.day = day
            return 0
        for rank in changed:
            self._registered_labels.pop(rank, None)
        self.world = self.world.evolved(new_churn or None)
        self._churn = new_churn
        self.day = day
        self.epoch += 1
        return len(changed)

    def evolved_generation(self, schedule: ChurnSchedule,
                           day: int) -> Tuple["TypoRiskIndex", int]:
        """Phase one of a hot swap: build the next generation off to the
        side, leaving this index untouched and serving.

        Returns ``(new_index, changed)``.  The new index shares the
        world's immutable chunk caches and every unchurned rank's warm
        registered-ctypo cache, carries ``epoch = self.epoch + 1`` so a
        publishing engine's epoch guard retires stale memos, and is
        pinned byte-identical (``canonical_dict``) to a fresh build
        over the evolved world.  When nothing churned the caller should
        skip the swap entirely — this method still returns a coherent
        generation for callers that want one.
        """
        new_churn, changed = self._delta_against(schedule, day)
        new_index = TypoRiskIndex(self.seed, self.max_rank,
                                  config=self.config,
                                  churn=new_churn, day=day)
        # share the immutable world caches and the still-valid per-rank
        # ctypo caches; only churned ranks re-derive lazily
        new_index.world = self.world.evolved(new_churn or None)
        changed_set = set(changed)
        new_index._registered_labels = {
            rank: labels
            for rank, labels in self._registered_labels.items()
            if rank not in changed_set}
        new_index.epoch = self.epoch + 1
        return new_index, len(changed)

    # -- persistence (repro-risk-index@1) ----------------------------------

    def canonical_dict(self) -> Dict:
        payload = self._payload_dict()
        payload["digest"] = _payload_digest(payload)
        return payload

    def _payload_dict(self) -> Dict:
        return {
            "format": RISK_INDEX_FORMAT,
            "seed": self.seed,
            "max_rank": self.max_rank,
            "day": self.day,
            "churn": [[rank, generation] for rank, generation
                      in sorted(self._churn.items())],
            "config_digest": _config_digest(self.config),
            "head_buckets": {
                suffix: {variant: list(ranks)
                         for (s, variant), ranks
                         in self._head_buckets.items() if s == suffix}
                for suffix in sorted({s for s, _ in self._head_buckets})},
        }

    def save(self, path: Union[str, Path]) -> None:
        """Atomically persist the index (tmp + flush + fsync + rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.canonical_dict(), sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path], *,
             config: Optional[InternetConfig] = None) -> "TypoRiskIndex":
        """Load and validate an index written by :meth:`save`.

        Validation is belt and braces: the self-digest catches torn or
        edited files, and the candidate buckets are *re-derived* from
        the file's identity and compared — the artifact can therefore
        never make the service disagree with the world law it claims to
        serve.  Unreadable/tampered files raise
        :class:`CheckpointCorruptError`; a file built against a
        different world config raises :class:`CheckpointMismatchError`.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValueError("index root is not an object")
        except (OSError, ValueError, UnicodeDecodeError) as error:
            raise CheckpointCorruptError(
                f"risk index {path} is unreadable ({error}); "
                f"rebuild it with serve-bench --save-index") from error
        if data.get("format") != RISK_INDEX_FORMAT:
            raise CheckpointMismatchError(
                f"{path} has format {data.get('format')!r}, "
                f"expected {RISK_INDEX_FORMAT!r}")
        try:
            payload = {key: value for key, value in data.items()
                       if key != "digest"}
            if _payload_digest(payload) != data["digest"]:
                raise ValueError("payload does not match its digest")
            churn = {int(rank): int(generation)
                     for rank, generation in data["churn"]}
            index = cls(int(data["seed"]), int(data["max_rank"]),
                        config=config, churn=churn, day=int(data["day"]))
        except CheckpointMismatchError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointCorruptError(
                f"risk index {path} is corrupt ({error}); "
                f"rebuild it with serve-bench --save-index") from error
        if _config_digest(index.config) != data["config_digest"]:
            raise CheckpointMismatchError(
                f"risk index {path} was built for a different world config")
        derived = index._payload_dict()["head_buckets"]
        if derived != data["head_buckets"]:
            raise CheckpointCorruptError(
                f"risk index {path} candidate buckets do not match the "
                f"world law for seed {index.seed}; the file was tampered "
                f"with or belongs to another build")
        return index


def _payload_digest(payload: Dict) -> str:
    """SHA-256 self-check digest over the canonical payload JSON."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
