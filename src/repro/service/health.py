"""Resilient serving: health states, chaos replay, and degraded lanes.

This module wraps a :class:`~repro.service.engine.RiskEngine` with the
machinery that keeps it answering under the faults a
:class:`~repro.faultsim.plan.FaultPlan` schedules against the serving
lane:

* a **health state machine** (``healthy`` → ``degraded`` →
  ``rules_only``) whose circuit breaker trips on index-probe error
  bursts and steps back up after a run of clean lookups;
* **admission control** via the engine's deterministic queue-depth
  model — overload sheds review-queue bookkeeping first (level 1) and
  the kernel scorer second (level 2), never the O(1) rules/exact paths;
* **fault application** — scorer stalls charge virtual latency into the
  admission model (never a real sleep), memory pressure shrinks the
  verdict memo, and scheduled churn deltas trigger the engine's
  crash-safe two-phase hot swap mid-traffic.

Everything that influences a *decision* — the fault timeline, the
health state, the admission depth — is a pure function of the lookup
sequence number, never of query content, verdict values, or memo state.
That discipline is what makes the serving lane replayable: the same
``(seed, plan, workload)`` triple yields byte-identical verdict streams
(including ``shed``/``degraded``/``rules_only`` labels) across runs and
``--jobs`` counts, because a batch shard can fast-forward the cheap
hash-draw timeline to its global offset and land in exactly the state
the serial path holds there.  An empty plan is pinned byte-identical to
the fault-free engine.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.defenses.risktiers import RiskPolicy
from repro.ecosystem.delta import ChurnSchedule
from repro.ecosystem.internet import InternetConfig
from repro.faultsim.inject import LookupFaults, ServiceFaultInjector
from repro.faultsim.plan import FaultPlan
from repro.service.engine import (
    AdmissionController,
    AdmissionPolicy,
    RiskEngine,
    RiskVerdict,
)
from repro.service.index import TypoRiskIndex
from repro.util.perf import PerfRegistry
from repro.util.pool import parallel_map

__all__ = ["HEALTH_STATES", "HealthPolicy", "HealthMonitor",
           "ResilientServer", "ChaosShardTask", "run_chaos_shard",
           "verdict_stream_digest"]

#: health states in descending capability; transitions move one step
HEALTH_STATES: Tuple[str, ...] = ("healthy", "degraded", "rules_only")

#: verdict sources produced by the full (memoizing) lane
_FULL_LANE_SOURCES = frozenset({"scorer", "index"})


def verdict_stream_digest(verdicts: Iterable[RiskVerdict]) -> str:
    """SHA-256 over the newline-joined canonical JSON of a stream.

    The replay suites pin this digest equal across runs and ``--jobs``
    counts — it covers every field of every verdict, including the
    ``shed``/``degraded``/``rules_only`` source labels.
    """
    digest = hashlib.sha256()
    for verdict in verdicts:
        digest.update(verdict.canonical_json().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class HealthPolicy:
    """Circuit-breaker thresholds for the serving health machine.

    ``trip_errors`` index-probe errors within a ``window``-lookup
    sliding window trip the breaker one state down;
    ``recovery_lookups`` consecutive error-free lookups step it one
    state back up.  ``floor_tier`` is the conservative tier every
    degraded-lane verdict is floored at (the scorer that would
    discriminate is unavailable, so the policy errs toward caution).
    """

    trip_errors: int = 3
    window: int = 50
    recovery_lookups: int = 200
    floor_tier: str = "medium"

    def __post_init__(self) -> None:
        if self.trip_errors < 1:
            raise ValueError("trip_errors must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.recovery_lookups < 1:
            raise ValueError("recovery_lookups must be >= 1")
        if self.floor_tier not in ("critical", "high", "medium", "review"):
            raise ValueError(
                f"floor_tier {self.floor_tier!r} is not an actionable "
                "tier (critical/high/medium/review)")


class HealthMonitor:
    """The serving lane's circuit breaker, fed one lookup at a time.

    State is a pure fold over the ``(sequence, index_error)`` timeline:
    no query content, no wall-clock.  ``transitions`` records every
    state change as ``(sequence, from_state, to_state)`` so parity
    suites can pin the exact trip/recovery points.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self.state = "healthy"
        self.transitions: List[Tuple[int, str, str]] = []
        self.tripped = 0
        self.recovered = 0
        self._errors: Deque[int] = deque()
        self._clean_streak = 0

    @property
    def is_healthy(self) -> bool:
        return self.state == "healthy"

    def observe(self, sequence: int, index_error: bool) -> None:
        """Fold one lookup's fault observation into the breaker."""
        if index_error:
            self._clean_streak = 0
            errors = self._errors
            errors.append(sequence)
            horizon = sequence - self.policy.window
            while errors and errors[0] <= horizon:
                errors.popleft()
            if (len(errors) >= self.policy.trip_errors
                    and self.state != "rules_only"):
                self._shift(sequence, +1)
                self.tripped += 1
                errors.clear()
            return
        if self.state == "healthy":
            return
        self._clean_streak += 1
        if self._clean_streak >= self.policy.recovery_lookups:
            self._shift(sequence, -1)
            self.recovered += 1
            self._clean_streak = 0

    def _shift(self, sequence: int, direction: int) -> None:
        position = HEALTH_STATES.index(self.state) + direction
        new_state = HEALTH_STATES[position]
        self.transitions.append((sequence, self.state, new_state))
        self.state = new_state

    def as_dict(self) -> Dict[str, object]:
        return {"state": self.state,
                "tripped": self.tripped,
                "recovered": self.recovered,
                "transitions": [list(t) for t in self.transitions]}


@dataclass
class ChaosServeStats:
    """Serial-equivalent counters of what the resilient server served."""

    answered: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)
    stall_ms_charged: float = 0.0
    stalls_charged: int = 0
    churn_swaps: int = 0
    memo_shrinks: int = 0

    def note(self, verdict: RiskVerdict) -> None:
        self.answered += 1
        source = verdict.source
        self.by_source[source] = self.by_source.get(source, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {"answered": self.answered,
                "by_source": dict(sorted(self.by_source.items())),
                "stall_ms_charged": round(self.stall_ms_charged, 3),
                "stalls_charged": self.stalls_charged,
                "churn_swaps": self.churn_swaps,
                "memo_shrinks": self.memo_shrinks}


class ResilientServer:
    """A :class:`RiskEngine` behind chaos injection, admission control,
    and the degraded-mode health machine.

    With an empty plan every call delegates wholesale to the engine —
    the fault-free path is pinned byte-identical (and pays nothing).
    With service spells in the plan, each lookup steps the fault
    timeline, folds the observation into the health breaker, reads the
    overload level, and serves from the strongest lane the current
    state allows:

    ======================  ==============================  ============
    condition               lane                            source label
    ======================  ==============================  ============
    rules/exact decide      O(1) fast path (never shed)     rules/exact
    state == rules_only     conservative floor, no index    rules_only
    index probe fault       conservative floor, no index    degraded
    state == degraded       retrieval + tier floor          degraded
    overload level >= 2     conservative floor (shed)       shed
    otherwise               full memoized scorer            scorer/index
    ======================  ==============================  ============

    At overload level 1 the full lane still answers but review-band
    verdicts skip the human-queue append (bookkeeping sheds before
    answers).  The admission model charges each served lookup a
    modeled lane cost — a pure function of (state, level, injected
    stall), so the backlog fold is timeline-pure and shards replay it
    exactly.  No lookup is ever dropped and no fault ever surfaces as
    an exception.
    """

    def __init__(self, engine: RiskEngine,
                 plan: Optional[FaultPlan] = None, *,
                 admission: Optional[AdmissionPolicy] = None,
                 health: Optional[HealthPolicy] = None,
                 perf: Optional[PerfRegistry] = None) -> None:
        self.engine = engine
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.injector = ServiceFaultInjector(self.plan)
        self.health_policy = health or HealthPolicy()
        self.health = HealthMonitor(self.health_policy)
        self.admission = AdmissionController(
            admission or AdmissionPolicy(), perf=perf)
        self.stats = ChaosServeStats()
        self.perf = perf

    # -- serving -----------------------------------------------------------

    def lookup(self, query: str) -> RiskVerdict:
        """Serve one query through the resilient decision tree."""
        if self.injector.is_empty:
            return self.engine.lookup(query)
        faults = self.injector.step()
        sequence = self.injector.sequence - 1
        return self._serve(query, faults, sequence)

    def batch_lookup(self, queries: Sequence[str], *,
                     jobs: Optional[int] = None) -> List[RiskVerdict]:
        """Serve a stream, optionally fanned out across processes.

        Workers replay the fault timeline to their shard's global
        offset (cheap hash draws — no kernel work) and serve with
        per-process state replicas; the parent then replays the same
        timeline while folding the shipped verdicts into its own memo,
        review queue, and counters, so the post-batch resident state —
        and the verdict stream — is byte-identical to serial serving.
        """
        if self.injector.is_empty:
            return self.engine.batch_lookup(queries, jobs=jobs)
        work = list(queries)
        if jobs is None or jobs <= 1 or len(work) <= 1:
            return [self.lookup(query) for query in work]
        engine = self.engine
        index = engine.index
        base = self.injector.sequence
        shard_count = min(jobs, len(work))
        step = (len(work) + shard_count - 1) // shard_count
        churn = tuple(sorted(index.churn_map().items()))
        tasks = [ChaosShardTask(
            seed=index.seed, max_rank=index.max_rank, day=index.day,
            churn=churn, config=index.config, policy=engine.policy,
            allowlist=tuple(sorted(engine._allow)),
            blocklist=tuple(sorted(engine._block)),
            plan=self.plan, offset=base + low,
            admission=self.admission.policy, health=self.health_policy,
            queries=tuple(work[low:low + step]),
            scorer=engine.scorer, model=engine.model)
            for low in range(0, len(work), step)]
        shards = parallel_map(run_chaos_shard, tasks, jobs=jobs,
                              perf=self.perf)
        out = [verdict for shard in shards for verdict in shard]
        for query, verdict in zip(work, out):
            self._fold(query, verdict)
        return out

    def report(self) -> Dict[str, object]:
        """Everything observable about this serving run, JSON-ready."""
        return {"served": self.stats.as_dict(),
                "injected": self.injector.stats.as_dict(),
                "admission": self.admission.as_dict(),
                "health": self.health.as_dict(),
                "cache": self.engine.cache_stats()}

    # -- the per-lookup fold ----------------------------------------------

    def _serve(self, query: str, faults: LookupFaults,
               sequence: int) -> RiskVerdict:
        self._apply_state_faults(faults)
        self.health.observe(sequence, faults.index_error)
        level = self.admission.arrive()
        state = self.health.state
        floor = self.health_policy.floor_tier
        engine = self.engine
        verdict = engine.fast_verdict(query)
        if verdict is not None:
            pass                         # O(1) lane: never shed, never memoized
        elif state == "rules_only":
            verdict = engine.conservative_verdict(
                query, source="rules_only", floor_tier=floor)
        elif faults.index_error:
            # this lookup's probe failed; answer without the index
            verdict = engine.conservative_verdict(
                query, source="degraded", floor_tier=floor)
        elif state == "degraded":
            verdict = engine.degraded_lookup(query, floor_tier=floor)
        elif level >= 2:
            verdict = engine.conservative_verdict(
                query, source="shed", floor_tier=floor)
            self.admission.record_shed_lookup()
        else:
            misses_before = engine.cache_stats()["misses"]
            verdict = engine.serve_full(query, enqueue_review=level < 1)
            if (level == 1 and verdict.action == "review"
                    and engine.cache_stats()["misses"] > misses_before):
                self.admission.record_shed_review()
        self._charge(state, level, faults)
        self.stats.note(verdict)
        return verdict

    def _fold(self, query: str, verdict: RiskVerdict) -> None:
        """Replay one timeline step using a shard-computed verdict.

        Mirrors :meth:`_serve` exactly, with the verdict supplied
        instead of computed: same fault application, same breaker and
        admission folds, same memoize/enqueue decisions — so parallel
        batches leave the resident state serial-identical.
        """
        faults = self.injector.step()
        sequence = self.injector.sequence - 1
        self._apply_state_faults(faults)
        self.health.observe(sequence, faults.index_error)
        level = self.admission.arrive()
        state = self.health.state
        source = verdict.source
        if source in _FULL_LANE_SOURCES:
            engine = self.engine
            if engine._memo_probe(verdict.query) is None:
                engine._misses += 1
                engine._remember(verdict, enqueue_review=level < 1)
                if level == 1 and verdict.action == "review":
                    self.admission.record_shed_review()
            else:
                engine._hits += 1
        elif source == "shed":
            self.admission.record_shed_lookup()
        self._charge(state, level, faults)
        self.stats.note(verdict)

    def fast_forward(self, sequence: int) -> None:
        """Replay the state timeline to global lookup ``sequence``.

        Applies every state-bearing fault (churn swaps, memo shrinks),
        breaker observation, and admission charge the serial path would
        have applied — without any queries, because none of that state
        depends on query content.  Used by batch shards to land at
        their global offset.
        """
        while self.injector.sequence < sequence:
            faults = self.injector.step()
            position = self.injector.sequence - 1
            self._apply_state_faults(faults)
            self.health.observe(position, faults.index_error)
            level = self.admission.arrive()
            self._charge(self.health.state, level, faults)

    def _apply_state_faults(self, faults: LookupFaults) -> None:
        if faults.churn_day is not None:
            index = self.engine.index
            schedule = ChurnSchedule(index.seed, index.max_rank,
                                     daily_rate=faults.churn_rate)
            self.engine.hot_swap(schedule, faults.churn_day)
            self.stats.churn_swaps += 1
        if faults.memory_pressure:
            self.engine.shrink_memo()
            self.stats.memo_shrinks += 1

    def _charge(self, state: str, level: int,
                faults: LookupFaults) -> None:
        """Fold the lookup's modeled cost into the admission backlog.

        The cost is a pure function of (state, level, injected stall) —
        deliberately *not* of the query, so the backlog depth at any
        sequence is computable from the timeline alone.  Stall latency
        only lands when the scorer lane actually ran: shedding and
        degraded modes genuinely relieve the modeled load.
        """
        policy = self.admission.policy
        if state == "rules_only" or faults.index_error:
            cost = policy.fast_cost_ms
        elif state == "degraded":
            cost = policy.degraded_cost_ms
        elif level >= 2:
            cost = policy.fast_cost_ms
        else:
            cost = policy.scorer_cost_ms + faults.stall_ms
            if faults.stall_ms:
                self.stats.stall_ms_charged += faults.stall_ms
                self.stats.stalls_charged += 1
        self.admission.charge(cost)


# -- chaos pool fan-out ---------------------------------------------------


@dataclass(frozen=True)
class ChaosShardTask:
    """One picklable slice of a chaos batch lookup.

    Carries the world identity (like
    :class:`~repro.service.engine.LookupShardTask`) plus the fault
    plan, the shard's global sequence offset, and the admission/health
    policies — everything a worker needs to rebuild the serial path's
    exact state at ``offset``.
    """

    seed: int
    max_rank: int
    day: int
    churn: Tuple[Tuple[int, int], ...]
    config: Optional[InternetConfig]
    policy: RiskPolicy
    allowlist: Tuple[str, ...]
    blocklist: Tuple[str, ...]
    plan: FaultPlan
    offset: int
    admission: AdmissionPolicy
    health: HealthPolicy
    queries: Tuple[str, ...]
    #: learned-scorer plumbing (PR 8 predates the learned lane): the
    #: model is pure numpy dataclasses, so it ships to workers intact
    scorer: str = "rules"
    model: object = None


def run_chaos_shard(task: ChaosShardTask) -> List[RiskVerdict]:
    """Process-pool entry point: serve one chaos shard.

    Builds a fresh engine (index construction is O(head targets) — the
    mid-traffic churn swaps mutate it, so the fault-free resident-engine
    cache cannot be shared), fast-forwards the resilient state to the
    shard's global offset, and serves.  Only the verdicts ship back;
    the worker's memo/review/counter state is discarded — the parent
    reconstructs the serial-equivalent state by replaying the fold.
    """
    index = TypoRiskIndex(task.seed, task.max_rank, config=task.config,
                          churn=dict(task.churn), day=task.day)
    engine = RiskEngine(index, policy=task.policy,
                        allowlist=task.allowlist,
                        blocklist=task.blocklist,
                        scorer=task.scorer, model=task.model)
    server = ResilientServer(engine, task.plan,
                             admission=task.admission, health=task.health)
    server.fast_forward(task.offset)
    lookup = server.lookup
    return [lookup(query) for query in task.queries]
