"""Resident typo-risk query service.

A mail server (or registrar frontend) asks "how risky is this domain?"
millions of times a day; re-scanning the whole target list per query is
O(ranks) and unshippable.  This package keeps the answer resident:

- :class:`TypoRiskIndex` — precomputed candidate retrieval (deletion
  neighbourhoods for head targets, reverse-edit probes against the
  lazy filler law) that finds every DL<=1 target in O(1)-ish probes,
  pinned byte-identical to the brute-force all-targets scan.
- :class:`RiskEngine` — layered lookup (rules -> exact target ->
  index retrieval -> kernel scoring -> policy tiers) with a bounded
  verdict memo and a review queue for the uncertain band.
- :class:`LookupWorkload` — seeded Zipf-ish mixed traffic for the
  serving benchmark, :func:`run_serve_bench`.
"""

from repro.service.bench import (
    ChaosBenchResult,
    ParityError,
    ServeBenchResult,
    record_drift_resilience,
    record_query_service,
    record_service_chaos,
    run_serve_bench,
    run_serve_chaos_bench,
)
from repro.service.engine import (
    AdmissionController,
    AdmissionPolicy,
    LookupShardTask,
    RiskEngine,
    RiskVerdict,
    run_lookup_shard,
)
from repro.service.health import (
    HEALTH_STATES,
    ChaosShardTask,
    HealthMonitor,
    HealthPolicy,
    ResilientServer,
    run_chaos_shard,
    verdict_stream_digest,
)
from repro.service.index import (
    RISK_INDEX_FORMAT,
    TypoRiskIndex,
    normalize_query,
)
from repro.service.workload import LookupWorkload, WorkloadMix

__all__ = [
    "TypoRiskIndex",
    "RISK_INDEX_FORMAT",
    "normalize_query",
    "RiskEngine",
    "RiskVerdict",
    "LookupShardTask",
    "run_lookup_shard",
    "LookupWorkload",
    "WorkloadMix",
    "ServeBenchResult",
    "ParityError",
    "run_serve_bench",
    "record_query_service",
    "AdmissionPolicy",
    "AdmissionController",
    "HEALTH_STATES",
    "HealthPolicy",
    "HealthMonitor",
    "ResilientServer",
    "ChaosShardTask",
    "run_chaos_shard",
    "verdict_stream_digest",
    "ChaosBenchResult",
    "run_serve_chaos_bench",
    "record_service_chaos",
    "record_drift_resilience",
]
