"""The five-layer spam filtering and classification funnel (paper Section 4.3)."""

from repro.spamfilter.funnel import (
    CollaborativeDatabase,
    FilterFunnel,
    FilterResult,
    FunnelConfig,
    Verdict,
)
from repro.spamfilter.spamassassin import (
    DEFAULT_THRESHOLD,
    SpamAssassinScorer,
    SpamRule,
    SpamScore,
    default_rules,
)

__all__ = [
    "FilterFunnel",
    "FilterResult",
    "FunnelConfig",
    "Verdict",
    "CollaborativeDatabase",
    "SpamAssassinScorer",
    "SpamRule",
    "SpamScore",
    "default_rules",
    "DEFAULT_THRESHOLD",
]
