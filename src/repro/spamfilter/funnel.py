"""The five-layer email classification funnel (paper Section 4.3).

Each email flows through the layers in order; the first layer that claims
it determines its class, and emails claimed as spam feed the collaborative
database that strengthens Layer 3 for subsequent mail:

1. **Header sanity** — the relaying server must be one of our domains, the
   sender must *not* be (we never send), and receiver-typo candidates must
   actually be addressed to one of our domains.
2. **SpamAssassin** — rule-based scoring, plus the study's hard rule that
   ZIP/RAR attachments mean spam.
3. **Collaborative filtering** — once a sender sends spam anywhere in the
   study, all their mail is spam; ditto any message whose bag-of-words
   (>20 words) matches known spam.
4. **Reflection-typo detection** — mailing-list/automation fingerprints
   (unsubscribe headers, bounce senders, mismatched From/Reply-To/
   Return-Path, system users) mark automated reflection mail.
5. **Frequency filtering** — emails whose recipient address, sender
   address, or body text recur too often are filtered (thresholds
   20/10/10 as in the paper).  Frequency-filtered SMTP candidates form
   the ambiguous band the paper reports as 415–5,970 emails/year: one
   misconfigured client legitimately sends many emails, so some of the
   filtered mail may be real.

The funnel is factored into two stages so a paper-scale corpus can be
classified in parallel and in bounded memory:

* **Stage A** (:meth:`FilterFunnel.summarize`) is a pure function of one
  tokenised email: it evaluates Layers 1, 2 and 4 and extracts every
  stateful-layer input (sender, bag-of-words, content hash, lowered
  frequency keys) into a compact slotted :class:`MessageSummary`.  It
  touches no funnel state, so summaries can be computed out of order, on
  worker processes, or day-by-day as mail arrives.
* **Stage B** (:class:`SummaryFold`) is the cheap serial fold that
  consumes summaries in arrival order: the collaborative database
  (Layer 3, including its retroactive pass) and corpus-wide frequency
  thresholds (Layer 5) live here and only here.

:meth:`classify` and :meth:`classify_corpus` are thin compositions of
the two stages and produce byte-identical results to the historical
single-stage implementations.
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.pipeline.tokenizer import TokenizedEmail
from repro.spamfilter.spamassassin import SpamAssassinScorer
from repro.util.textcache import BoundedMemo

__all__ = [
    "Verdict",
    "FilterResult",
    "FunnelConfig",
    "FilterFunnel",
    "CollaborativeDatabase",
    "MessageSummary",
    "SummaryFold",
]


class Verdict(enum.Enum):
    """The funnel's four terminal classifications."""
    SPAM = "spam"
    REFLECTION = "reflection"          # automated mail from a signup typo
    FREQUENCY_FILTERED = "frequency"   # too-common sender/recipient/content
    TRUE_TYPO = "true_typo"

    @property
    def figure_category(self) -> str:
        """The three series of Figures 3/4."""
        if self is Verdict.SPAM:
            return "spam_filtered"
        if self is Verdict.TRUE_TYPO:
            return "real_typos"
        return "reflection_and_frequency_filtered"


@dataclass(frozen=True)
class FilterResult:
    verdict: Verdict
    kind: str                 # receiver | smtp — candidate class from the header
    layer: Optional[int]      # which layer claimed the email (None = survived all)
    reason: str = ""

    @property
    def is_true_typo(self) -> bool:
        return self.verdict is Verdict.TRUE_TYPO

    def to_canonical_dict(self) -> Dict:
        """JSON-ready projection (study-checkpoint persistence)."""
        return {"verdict": self.verdict.value, "kind": self.kind,
                "layer": self.layer, "reason": self.reason}

    @classmethod
    def from_canonical_dict(cls, data: Dict) -> "FilterResult":
        return cls(verdict=Verdict(data["verdict"]), kind=data["kind"],
                   layer=data["layer"], reason=data["reason"])


@dataclass(frozen=True)
class FunnelConfig:
    """Thresholds from the paper (Section 4.3, Layer 5)."""

    recipient_frequency_threshold: int = 20
    sender_frequency_threshold: int = 10
    content_frequency_threshold: int = 10
    bag_of_words_minimum: int = 20
    spamassassin_threshold: float = 5.0


# bounded memo tables keyed by message text, shared process-wide (every
# cached value is a pure function of its key, so staleness is impossible;
# campaign spam repeats bodies verbatim, so these mostly hit)
_WORDS_MEMO = BoundedMemo("funnel.bag_of_words")
_CONTENT_HASH_MEMO = BoundedMemo("funnel.content_hash")
_SENDER_MEMO = BoundedMemo("funnel.sender_address")
_REFLECTION_BODY_MEMO = BoundedMemo("funnel.reflection_body")
_RELAY_HOSTS_MEMO = BoundedMemo("funnel.relay_hosts")


class MessageSummary:
    """Stage A's compact projection of one tokenised email.

    Holds the Layer-1/2/4 decisions (pure per-message work) plus every
    input the stateful fold needs — nothing else, so the bounded-memory
    streaming mode can release the raw message and keep only this.  The
    class is slotted and contains only strings/tuples/frozensets, so it
    pickles cheaply across the parallel stage-A workers.

    ``layer2``/``layer4`` (and the frequency keys) are ``None`` when an
    earlier layer already claimed the email — stage A short-circuits in
    the same order the serial funnel does, so the two paths do the same
    work per message.
    """

    __slots__ = ("sequence", "kind", "layer1", "layer2", "layer4",
                 "sender", "sender_lower", "recipients", "recipients_lower",
                 "content_hash", "bag")

    def __init__(self, sequence: Optional[int], kind: str,
                 layer1: Optional[str], layer2: Optional[str],
                 layer4: Optional[str], sender: Optional[str],
                 sender_lower: Optional[str],
                 recipients: Tuple[str, ...],
                 recipients_lower: Tuple[str, ...],
                 content_hash: Optional[str],
                 bag: Optional[FrozenSet[str]]) -> None:
        self.sequence = sequence
        self.kind = kind
        self.layer1 = layer1
        self.layer2 = layer2
        self.layer4 = layer4
        self.sender = sender
        self.sender_lower = sender_lower
        self.recipients = recipients
        self.recipients_lower = recipients_lower
        self.content_hash = content_hash
        self.bag = bag

    def __getstate__(self):
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)

    def to_canonical_dict(self) -> Dict:
        """JSON-ready projection (study-checkpoint persistence).

        ``bag`` is an unordered frozenset; sorting makes the encoding
        canonical, and membership semantics survive the round trip.
        """
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "layer1": self.layer1,
            "layer2": self.layer2,
            "layer4": self.layer4,
            "sender": self.sender,
            "sender_lower": self.sender_lower,
            "recipients": list(self.recipients),
            "recipients_lower": list(self.recipients_lower),
            "content_hash": self.content_hash,
            "bag": sorted(self.bag) if self.bag is not None else None,
        }

    @classmethod
    def from_canonical_dict(cls, data: Dict) -> "MessageSummary":
        bag = data["bag"]
        return cls(
            sequence=data["sequence"],
            kind=data["kind"],
            layer1=data["layer1"],
            layer2=data["layer2"],
            layer4=data["layer4"],
            sender=data["sender"],
            sender_lower=data["sender_lower"],
            recipients=tuple(data["recipients"]),
            recipients_lower=tuple(data["recipients_lower"]),
            content_hash=data["content_hash"],
            bag=frozenset(bag) if bag is not None else None,
        )


class CollaborativeDatabase:
    """Shared spam knowledge across all of the study's domains (Layer 3)."""

    def __init__(self, bag_of_words_minimum: int = 20) -> None:
        self.spam_senders: Set[str] = set()
        self.spam_bags: Set[FrozenSet[str]] = set()
        self._bow_minimum = bag_of_words_minimum

    def record_spam(self, sender: Optional[str], body: str) -> None:
        """Learn from one spam decision: blacklist sender, remember body."""
        self.record_summary(sender.lower() if sender else None,
                            self._bag(body))

    def matches(self, sender: Optional[str], body: str) -> Optional[str]:
        """A human-readable reason when the email matches known spam."""
        return self.matches_summary(sender, sender.lower() if sender else None,
                                    self._bag(body))

    def record_summary(self, sender_lower: Optional[str],
                       bag: Optional[FrozenSet[str]]) -> None:
        """:meth:`record_spam` with the keys already extracted (stage B)."""
        if sender_lower:
            self.spam_senders.add(sender_lower)
        if bag is not None:
            self.spam_bags.add(bag)

    def matches_summary(self, sender: Optional[str],
                        sender_lower: Optional[str],
                        bag: Optional[FrozenSet[str]]) -> Optional[str]:
        """:meth:`matches` with the keys already extracted (stage B)."""
        if sender and sender_lower in self.spam_senders:
            return f"sender {sender} previously sent spam"
        if bag is not None and bag in self.spam_bags:
            return "body bag-of-words matches known spam"
        return None

    def state_dict(self) -> Dict:
        """The learned spam knowledge, canonically ordered for JSON."""
        return {
            "spam_senders": sorted(self.spam_senders),
            "spam_bags": sorted(sorted(bag) for bag in self.spam_bags),
        }

    def restore_state(self, data: Dict) -> None:
        self.spam_senders = set(data["spam_senders"])
        self.spam_bags = {frozenset(bag) for bag in data["spam_bags"]}

    def _bag(self, body: str) -> Optional[FrozenSet[str]]:
        # the word set is a pure function of the body; campaign spam repeats
        # bodies verbatim and every survivor is bagged twice (pass 1 +
        # retroactive pass 2).  The threshold stays per-instance.
        words = _WORDS_MEMO.table.get(body)
        if words is None:
            words = frozenset(re.findall(r"[a-z0-9']+", body.lower()))
            _WORDS_MEMO.put(body, words)
        else:
            _WORDS_MEMO.hits += 1
        if len(words) > self._bow_minimum:
            return words
        return None


_SYSTEM_USERS = frozenset({
    "postmaster", "root", "admin", "administrator", "mailer-daemon",
    "noreply", "no-reply", "donotreply", "do-not-reply", "notifications",
    "notification", "alerts", "newsletter", "support", "info",
})

_REFLECTION_BODY_PHRASES = (
    "unsubscribe", "remove yourself", "opt out", "opt-out",
    "manage your preferences", "email preferences",
    "you are receiving this", "you're receiving this",
    "update your subscription", "mailing list",
)


def _reflection_body_reason(body: str) -> Optional[str]:
    """First matching reflection phrase reason, memoised per unique body.

    The empty string stands in for "no phrase matched" so the memo table
    never stores ``None`` (a miss and a negative result must differ).
    """
    reason = _REFLECTION_BODY_MEMO.table.get(body)
    if reason is None:
        lowered = body.lower()
        reason = ""
        for phrase in _REFLECTION_BODY_PHRASES:
            if phrase in lowered:
                reason = f"body contains {phrase!r}"
                break
        _REFLECTION_BODY_MEMO.put(body, reason)
    else:
        _REFLECTION_BODY_MEMO.hits += 1
    return reason or None


class FilterFunnel:
    """Classify a stream (or corpus) of tokenised study emails.

    The funnel is stateful: Layer 3 learns from every spam decision, and
    Layer 5 needs corpus-wide frequencies.  Streaming use
    (:meth:`classify`) applies frequency thresholds against counts seen so
    far; batch use (:meth:`classify_corpus`) does the paper's two-pass
    analysis, where frequencies are computed over the whole corpus before
    any Layer-5 decision.  Both are compositions of the pure
    :meth:`summarize` stage and the stateful :class:`SummaryFold` stage.
    """

    def __init__(self, our_domains: Iterable[str],
                 smtp_purpose_ips: Optional[Iterable[str]] = None,
                 config: Optional[FunnelConfig] = None,
                 scorer: Optional[SpamAssassinScorer] = None,
                 enabled_layers: Iterable[int] = (1, 2, 3, 4, 5)) -> None:
        self.our_domains = {d.lower() for d in our_domains}
        # precomputed suffix tuple: str.endswith(tuple) runs the whole
        # subdomain scan in C instead of a per-email generator expression
        self._suffix_tuple = tuple("." + d for d in sorted(self.our_domains))
        self.smtp_purpose_ips = set(smtp_purpose_ips or ())
        self.config = config or FunnelConfig()
        self.enabled_layers = frozenset(enabled_layers)
        bad_layers = self.enabled_layers - {1, 2, 3, 4, 5}
        if bad_layers:
            raise ValueError(f"unknown funnel layers: {sorted(bad_layers)}")
        self.scorer = scorer or SpamAssassinScorer(
            threshold=self.config.spamassassin_threshold)
        self.collaborative = CollaborativeDatabase(
            bag_of_words_minimum=self.config.bag_of_words_minimum)
        self._recipient_counts: Dict[str, int] = {}
        self._sender_counts: Dict[str, int] = {}
        self._content_counts: Dict[str, int] = {}

    # -- durable state (the study checkpoint's stage-B payload) --------------

    def state_dict(self) -> Dict:
        """Every piece of fold-mutable funnel state, JSON-ready.

        Configuration (domains, thresholds, enabled layers) is *not*
        included — a resumed run rebuilds the funnel from its config and
        only the learned/accumulated state needs restoring.
        """
        return {
            "collaborative": self.collaborative.state_dict(),
            "recipient_counts": dict(self._recipient_counts),
            "sender_counts": dict(self._sender_counts),
            "content_counts": dict(self._content_counts),
        }

    def restore_state(self, data: Dict) -> None:
        self.collaborative.restore_state(data["collaborative"])
        self._recipient_counts = dict(data["recipient_counts"])
        self._sender_counts = dict(data["sender_counts"])
        self._content_counts = dict(data["content_counts"])

    # -- candidate kind ------------------------------------------------------

    def candidate_kind(self, email: TokenizedEmail) -> str:
        """Receiver/reflection candidate vs SMTP-typo candidate.

        Receiver and reflection typos are *addressed to* one of our
        domains.  SMTP typos are addressed to arbitrary third parties —
        the sender's client merely connected to our IP believing it to be
        their provider's SMTP server.
        """
        for recipient in email.metadata.envelope_to:
            domain = recipient.rpartition("@")[2].lower()
            if domain in self.our_domains or self._suffix_match(domain):
                return "receiver"
        return "smtp"

    def _suffix_match(self, domain: str) -> bool:
        return domain.endswith(self._suffix_tuple) if self._suffix_tuple \
            else False

    # -- layers ---------------------------------------------------------------

    def _layer1_header_sanity(self, email: TokenizedEmail,
                              kind: str) -> Optional[str]:
        relay_hosts = _relay_chain_hosts(email)
        if relay_hosts and relay_hosts.isdisjoint(self.our_domains):
            return ("relaying server "
                    f"{'/'.join(sorted(relay_hosts))} is not one of our "
                    "domains")
        sender_domain = _sender_domain(email)
        if sender_domain and (sender_domain in self.our_domains
                              or self._suffix_match(sender_domain)):
            return "sender claims to be one of our domains"
        if kind == "receiver":
            to_domain = _header_to_domain(email)
            if to_domain is not None and to_domain not in self.our_domains \
                    and not self._suffix_match(to_domain):
                return "To: header does not point at our domains"
        return None

    def _layer2_spamassassin(self, email: TokenizedEmail) -> Optional[str]:
        if email.has_archive_attachment:
            return "ZIP/RAR attachment"
        score = self.scorer.score(email)
        if score.is_spam:
            return f"SpamAssassin score {score.total:.1f} >= {score.threshold}"
        return None

    def _layer4_reflection(self, email: TokenizedEmail) -> Optional[str]:
        metadata = email.metadata
        if metadata.list_unsubscribe:
            return "List-Unsubscribe header present"
        for label, value in (("Sender", metadata.sender_field),
                             ("From", metadata.from_field),
                             ("Reply-To", metadata.reply_to)):
            lowered = (value or "").lower()
            if "bounce" in lowered or "unsubscribe" in lowered:
                return f"{label} field contains bounce/unsubscribe"
        trio = [v for v in (metadata.from_field, metadata.reply_to,
                            metadata.return_path) if v]
        if len(set(trio)) > 1:
            return "From/Reply-To/Return-Path disagree"
        sender = _sender_address(email)
        if sender:
            local = sender.split("@", 1)[0].lower()
            if local in _SYSTEM_USERS:
                return f"system sender {local}"
        return _reflection_body_reason(email.body)

    # -- stage A: the pure per-message summary -------------------------------

    def summarize(self, email: TokenizedEmail,
                  sequence: Optional[int] = None) -> MessageSummary:
        """Evaluate the pure layers and extract the fold's inputs.

        Reads funnel *configuration* (domains, thresholds, enabled
        layers) but never funnel *state*, so it can run on any process in
        any order.  Short-circuits exactly like the serial funnel: a
        Layer-1 claim skips the Layer-2 scorer, and a Layer-1/2/4 claim
        skips the frequency-key extraction that only Layer 5 needs.
        """
        kind = self.candidate_kind(email)
        layers = self.enabled_layers
        sender = _sender_address(email)
        sender_lower = sender.lower() if sender else None
        bag = self.collaborative._bag(email.body)

        if 1 in layers:
            layer1 = self._layer1_header_sanity(email, kind)
            if layer1 is not None:
                return MessageSummary(sequence, kind, layer1, None, None,
                                      sender, sender_lower, (), (), None, bag)
        if 2 in layers:
            layer2 = self._layer2_spamassassin(email)
            if layer2 is not None:
                return MessageSummary(sequence, kind, None, layer2, None,
                                      sender, sender_lower, (), (), None, bag)
        layer4 = self._layer4_reflection(email) if 4 in layers else None
        if layer4 is not None:
            return MessageSummary(sequence, kind, None, None, layer4,
                                  sender, sender_lower, (), (), None, bag)
        recipients = email.metadata.envelope_to
        return MessageSummary(
            sequence, kind, None, None, None, sender, sender_lower,
            recipients, tuple(r.lower() for r in recipients),
            _content_hash(email.body), bag)

    # -- classification ----------------------------------------------------------

    def _terminal_result(self, summary: MessageSummary
                         ) -> Optional[FilterResult]:
        """The Layers-1..4 decision for one summary, or None (survivor).

        This is the only stage-B code that runs per message: Layer-3
        lookups against the collaborative database, and recording every
        spam decision into it.
        """
        if summary.layer1 is not None:
            self.collaborative.record_summary(summary.sender_lower,
                                              summary.bag)
            return FilterResult(Verdict.SPAM, summary.kind, 1, summary.layer1)
        if summary.layer2 is not None:
            self.collaborative.record_summary(summary.sender_lower,
                                              summary.bag)
            return FilterResult(Verdict.SPAM, summary.kind, 2, summary.layer2)
        if 3 in self.enabled_layers:
            reason = self.collaborative.matches_summary(
                summary.sender, summary.sender_lower, summary.bag)
            if reason is not None:
                self.collaborative.record_summary(summary.sender_lower,
                                                  summary.bag)
                return FilterResult(Verdict.SPAM, summary.kind, 3, reason)
        if summary.layer4 is not None:
            return FilterResult(Verdict.REFLECTION, summary.kind, 4,
                                summary.layer4)
        return None

    def classify(self, email: TokenizedEmail,
                 update_frequencies: bool = True) -> FilterResult:
        """Streaming classification of one email."""
        summary = self.summarize(email)
        result = self._terminal_result(summary)
        if result is not None:
            return result
        if update_frequencies:
            self._bump_summary(summary)
        if 5 in self.enabled_layers:
            reason = self._frequency_reason_summary(summary)
            if reason is not None:
                return FilterResult(Verdict.FREQUENCY_FILTERED, summary.kind,
                                    5, reason)
        return FilterResult(Verdict.TRUE_TYPO, summary.kind, None,
                            "passed all layers")

    def classify_corpus(self,
                        emails: Sequence[TokenizedEmail]) -> List[FilterResult]:
        """Two-pass batch classification (the paper's offline analysis).

        Pass 1 runs Layers 1–4 and accumulates corpus-wide frequencies for
        the survivors.  Pass 2 first re-applies the collaborative layer —
        the paper's wording is retroactive ("if a sender sends us spam
        once, we consider all of the emails from that sender ... to be
        spam"), so a campaign caught late still condemns its early mail —
        and then applies Layer 5 against the complete frequency counts.
        """
        fold = SummaryFold(self)
        for email in emails:
            fold.feed(self.summarize(email))
        return fold.finalize()

    # -- stage B internals ----------------------------------------------------

    def _bump_summary(self, summary: MessageSummary) -> None:
        counts = self._recipient_counts
        for key in summary.recipients_lower:
            counts[key] = counts.get(key, 0) + 1
        sender_lower = summary.sender_lower
        if sender_lower:
            self._sender_counts[sender_lower] = \
                self._sender_counts.get(sender_lower, 0) + 1
        digest = summary.content_hash
        self._content_counts[digest] = self._content_counts.get(digest, 0) + 1

    def _frequency_reason_summary(self,
                                  summary: MessageSummary) -> Optional[str]:
        config = self.config
        for recipient, key in zip(summary.recipients,
                                  summary.recipients_lower):
            count = self._recipient_counts.get(key, 0)
            if count >= config.recipient_frequency_threshold:
                return f"recipient {recipient} seen {count} times"
        sender = summary.sender
        if sender:
            count = self._sender_counts.get(summary.sender_lower, 0)
            if count >= config.sender_frequency_threshold:
                return f"sender {sender} seen {count} times"
        count = self._content_counts.get(summary.content_hash, 0)
        if count >= config.content_frequency_threshold:
            return f"identical body seen {count} times"
        return None


class SummaryFold:
    """Stage B: the serial stateful fold over stage-A summaries.

    Feed summaries in arrival order; each :meth:`feed` returns the
    email's *terminal* result (Layers 1–4) or ``None`` when the verdict
    is provisional until the corpus-wide pass.  :meth:`finalize` then
    runs the retroactive Layer-3 pass and Layer 5 against the complete
    frequency counts and returns the full result list in feed order —
    byte-identical to :meth:`FilterFunnel.classify_corpus` on the same
    email stream, however the summaries were produced (serially, per-day,
    or on worker processes).

    Only provisional summaries are retained; terminal ones are released
    as soon as their result is returned, which is what bounds the
    streaming mode's memory (spam dominates a typosquatting corpus).
    """

    def __init__(self, funnel: FilterFunnel) -> None:
        self.funnel = funnel
        self.results: List[Optional[FilterResult]] = []
        self._provisional: List[Tuple[int, MessageSummary]] = []
        self._finalized = False

    def __len__(self) -> int:
        return len(self.results)

    @property
    def pending_count(self) -> int:
        """Summaries awaiting the corpus-wide pass (memory high-water)."""
        return len(self._provisional)

    def feed(self, summary: MessageSummary) -> Optional[FilterResult]:
        """Fold in one summary; return its terminal result or None."""
        if self._finalized:
            raise RuntimeError("SummaryFold already finalized")
        funnel = self.funnel
        result = funnel._terminal_result(summary)
        if result is not None:
            self.results.append(result)
            return result
        funnel._bump_summary(summary)
        self._provisional.append((len(self.results), summary))
        self.results.append(None)
        return None

    def finalize(self) -> List[FilterResult]:
        """Run the retroactive and frequency passes; return all results."""
        if self._finalized:
            raise RuntimeError("SummaryFold already finalized")
        self._finalized = True
        funnel = self.funnel
        layers = funnel.enabled_layers
        results = self.results
        for index, summary in self._provisional:
            if 3 in layers:
                retro = funnel.collaborative.matches_summary(
                    summary.sender, summary.sender_lower, summary.bag)
                if retro is not None:
                    results[index] = FilterResult(
                        Verdict.SPAM, summary.kind, 3,
                        f"(retroactive) {retro}")
                    continue
            if 5 in layers:
                reason = funnel._frequency_reason_summary(summary)
                if reason is not None:
                    results[index] = FilterResult(
                        Verdict.FREQUENCY_FILTERED, summary.kind, 5, reason)
                    continue
            results[index] = FilterResult(Verdict.TRUE_TYPO, summary.kind,
                                          None, "passed all layers")
        self._provisional.clear()
        return results

    # -- durable state (the study checkpoint's stage-B payload) --------------

    def state_dict(self) -> Dict:
        """The fold's accumulated results and retained provisionals.

        Funnel state is captured separately (the funnel outlives the
        fold conceptually — it is the learned-filter state); here we
        snapshot only the per-run fold: emitted results in feed order
        (``None`` marks slots still provisional) and the provisional
        summaries awaiting the corpus-wide pass.
        """
        if self._finalized:
            raise RuntimeError("cannot checkpoint a finalized SummaryFold")
        return {
            "results": [r.to_canonical_dict() if r is not None else None
                        for r in self.results],
            "provisional": [[index, summary.to_canonical_dict()]
                            for index, summary in self._provisional],
        }

    def restore_state(self, data: Dict) -> None:
        self.results = [FilterResult.from_canonical_dict(entry)
                        if entry is not None else None
                        for entry in data["results"]]
        self._provisional = [
            (index, MessageSummary.from_canonical_dict(entry))
            for index, entry in data["provisional"]]
        self._finalized = False


# -- header helpers -----------------------------------------------------------

_RELAY_BY_RE = re.compile(r"by ([^\s(]+)")
_RELAY_FROM_RE = re.compile(r"from ([^\s(]+)")


def _relay_chain_hosts(email: TokenizedEmail) -> Set[str]:
    """Hosts named in the topmost Received header.

    With the Figure-1 two-hop topology the collection server's header
    reads ``from <vps-typo-domain> by collector...``; with a direct
    delivery it reads ``from <sender> by <vps-typo-domain>``.  Layer 1
    accepts the mail when *either* position names one of our domains —
    mail that reached the collector without passing a registered VPS
    names neither, and is spam by construction.
    """
    chain = email.metadata.received_chain
    if not chain:
        return set()
    # the collector stamps ``from X by Y (ip); t=<timestamp>`` — only the
    # timestamp tail varies between messages, and neither marker can occur
    # inside it, so host extraction memoises on the prefix before ';'
    prefix = chain[0].partition(";")[0]
    hosts = _RELAY_HOSTS_MEMO.table.get(prefix)
    if hosts is None:
        hosts = set()
        for pattern in (_RELAY_BY_RE, _RELAY_FROM_RE):
            match = pattern.search(prefix)
            if match:
                hosts.add(match.group(1).lower())
        hosts = frozenset(hosts)
        _RELAY_HOSTS_MEMO.put(prefix, hosts)
    else:
        _RELAY_HOSTS_MEMO.hits += 1
    return hosts


_SENDER_ADDRESS_RE = re.compile(r"[\w.+-]+@[\w.-]+")


def _sender_address(email: TokenizedEmail) -> Optional[str]:
    raw = email.metadata.envelope_from or email.metadata.from_field
    if not raw:
        return None
    # memoised per unique raw header value; the empty string stands in
    # for "no address found" so the table never stores None
    sender = _SENDER_MEMO.table.get(raw)
    if sender is None:
        match = _SENDER_ADDRESS_RE.search(raw)
        sender = match.group(0) if match else ""
        _SENDER_MEMO.put(raw, sender)
    else:
        _SENDER_MEMO.hits += 1
    return sender or None


def _sender_domain(email: TokenizedEmail) -> Optional[str]:
    sender = _sender_address(email)
    if sender is None:
        return None
    return sender.rpartition("@")[2].lower()


def _header_to_domain(email: TokenizedEmail) -> Optional[str]:
    raw = email.metadata.to_field
    if not raw:
        return None
    match = re.search(r"[\w.+-]+@([\w.-]+)", raw)
    return match.group(1).lower() if match else None


def _content_hash(body: str) -> str:
    digest = _CONTENT_HASH_MEMO.table.get(body)
    if digest is None:
        normalised = re.sub(r"\s+", " ", body.strip().lower())
        digest = hashlib.sha1(normalised.encode("utf-8")).hexdigest()
        _CONTENT_HASH_MEMO.put(body, digest)
    else:
        _CONTENT_HASH_MEMO.hits += 1
    return digest
