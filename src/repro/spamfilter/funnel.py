"""The five-layer email classification funnel (paper Section 4.3).

Each email flows through the layers in order; the first layer that claims
it determines its class, and emails claimed as spam feed the collaborative
database that strengthens Layer 3 for subsequent mail:

1. **Header sanity** — the relaying server must be one of our domains, the
   sender must *not* be (we never send), and receiver-typo candidates must
   actually be addressed to one of our domains.
2. **SpamAssassin** — rule-based scoring, plus the study's hard rule that
   ZIP/RAR attachments mean spam.
3. **Collaborative filtering** — once a sender sends spam anywhere in the
   study, all their mail is spam; ditto any message whose bag-of-words
   (>20 words) matches known spam.
4. **Reflection-typo detection** — mailing-list/automation fingerprints
   (unsubscribe headers, bounce senders, mismatched From/Reply-To/
   Return-Path, system users) mark automated reflection mail.
5. **Frequency filtering** — emails whose recipient address, sender
   address, or body text recur too often are filtered (thresholds
   20/10/10 as in the paper).  Frequency-filtered SMTP candidates form
   the ambiguous band the paper reports as 415–5,970 emails/year: one
   misconfigured client legitimately sends many emails, so some of the
   filtered mail may be real.
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.pipeline.tokenizer import TokenizedEmail
from repro.spamfilter.spamassassin import SpamAssassinScorer

__all__ = [
    "Verdict",
    "FilterResult",
    "FunnelConfig",
    "FilterFunnel",
    "CollaborativeDatabase",
]


class Verdict(enum.Enum):
    """The funnel's four terminal classifications."""
    SPAM = "spam"
    REFLECTION = "reflection"          # automated mail from a signup typo
    FREQUENCY_FILTERED = "frequency"   # too-common sender/recipient/content
    TRUE_TYPO = "true_typo"

    @property
    def figure_category(self) -> str:
        """The three series of Figures 3/4."""
        if self is Verdict.SPAM:
            return "spam_filtered"
        if self is Verdict.TRUE_TYPO:
            return "real_typos"
        return "reflection_and_frequency_filtered"


@dataclass(frozen=True)
class FilterResult:
    verdict: Verdict
    kind: str                 # receiver | smtp — candidate class from the header
    layer: Optional[int]      # which layer claimed the email (None = survived all)
    reason: str = ""

    @property
    def is_true_typo(self) -> bool:
        return self.verdict is Verdict.TRUE_TYPO


@dataclass(frozen=True)
class FunnelConfig:
    """Thresholds from the paper (Section 4.3, Layer 5)."""

    recipient_frequency_threshold: int = 20
    sender_frequency_threshold: int = 10
    content_frequency_threshold: int = 10
    bag_of_words_minimum: int = 20
    spamassassin_threshold: float = 5.0


# bounded memo tables keyed by body text, shared process-wide (both are
# pure functions of the body, so staleness is impossible)
_BODY_CACHE_MAX = 1 << 15
_WORDS_CACHE: Dict[str, FrozenSet[str]] = {}
_CONTENT_HASH_CACHE: Dict[str, str] = {}


class CollaborativeDatabase:
    """Shared spam knowledge across all of the study's domains (Layer 3)."""

    def __init__(self, bag_of_words_minimum: int = 20) -> None:
        self.spam_senders: Set[str] = set()
        self.spam_bags: Set[FrozenSet[str]] = set()
        self._bow_minimum = bag_of_words_minimum

    def record_spam(self, sender: Optional[str], body: str) -> None:
        """Learn from one spam decision: blacklist sender, remember body."""
        if sender:
            self.spam_senders.add(sender.lower())
        bag = self._bag(body)
        if bag is not None:
            self.spam_bags.add(bag)

    def matches(self, sender: Optional[str], body: str) -> Optional[str]:
        """A human-readable reason when the email matches known spam."""
        if sender and sender.lower() in self.spam_senders:
            return f"sender {sender} previously sent spam"
        bag = self._bag(body)
        if bag is not None and bag in self.spam_bags:
            return "body bag-of-words matches known spam"
        return None

    def _bag(self, body: str) -> Optional[FrozenSet[str]]:
        # the word set is a pure function of the body; campaign spam repeats
        # bodies verbatim and every survivor is bagged twice (pass 1 +
        # retroactive pass 2).  The threshold stays per-instance.
        words = _WORDS_CACHE.get(body)
        if words is None:
            words = frozenset(re.findall(r"[a-z0-9']+", body.lower()))
            if len(_WORDS_CACHE) >= _BODY_CACHE_MAX:
                _WORDS_CACHE.clear()
            _WORDS_CACHE[body] = words
        if len(words) > self._bow_minimum:
            return words
        return None


_SYSTEM_USERS = frozenset({
    "postmaster", "root", "admin", "administrator", "mailer-daemon",
    "noreply", "no-reply", "donotreply", "do-not-reply", "notifications",
    "notification", "alerts", "newsletter", "support", "info",
})

_REFLECTION_BODY_PHRASES = (
    "unsubscribe", "remove yourself", "opt out", "opt-out",
    "manage your preferences", "email preferences",
    "you are receiving this", "you're receiving this",
    "update your subscription", "mailing list",
)


class FilterFunnel:
    """Classify a stream (or corpus) of tokenised study emails.

    The funnel is stateful: Layer 3 learns from every spam decision, and
    Layer 5 needs corpus-wide frequencies.  Streaming use
    (:meth:`classify`) applies frequency thresholds against counts seen so
    far; batch use (:meth:`classify_corpus`) does the paper's two-pass
    analysis, where frequencies are computed over the whole corpus before
    any Layer-5 decision.
    """

    def __init__(self, our_domains: Iterable[str],
                 smtp_purpose_ips: Optional[Iterable[str]] = None,
                 config: Optional[FunnelConfig] = None,
                 scorer: Optional[SpamAssassinScorer] = None,
                 enabled_layers: Iterable[int] = (1, 2, 3, 4, 5)) -> None:
        self.our_domains = {d.lower() for d in our_domains}
        # precomputed suffix tuple: str.endswith(tuple) runs the whole
        # subdomain scan in C instead of a per-email generator expression
        self._suffix_tuple = tuple("." + d for d in sorted(self.our_domains))
        self.smtp_purpose_ips = set(smtp_purpose_ips or ())
        self.config = config or FunnelConfig()
        self.enabled_layers = frozenset(enabled_layers)
        bad_layers = self.enabled_layers - {1, 2, 3, 4, 5}
        if bad_layers:
            raise ValueError(f"unknown funnel layers: {sorted(bad_layers)}")
        self.scorer = scorer or SpamAssassinScorer(
            threshold=self.config.spamassassin_threshold)
        self.collaborative = CollaborativeDatabase(
            bag_of_words_minimum=self.config.bag_of_words_minimum)
        self._recipient_counts: Dict[str, int] = {}
        self._sender_counts: Dict[str, int] = {}
        self._content_counts: Dict[str, int] = {}

    # -- candidate kind ------------------------------------------------------

    def candidate_kind(self, email: TokenizedEmail) -> str:
        """Receiver/reflection candidate vs SMTP-typo candidate.

        Receiver and reflection typos are *addressed to* one of our
        domains.  SMTP typos are addressed to arbitrary third parties —
        the sender's client merely connected to our IP believing it to be
        their provider's SMTP server.
        """
        for recipient in email.metadata.envelope_to:
            domain = recipient.rpartition("@")[2].lower()
            if domain in self.our_domains or self._suffix_match(domain):
                return "receiver"
        return "smtp"

    def _suffix_match(self, domain: str) -> bool:
        return domain.endswith(self._suffix_tuple) if self._suffix_tuple \
            else False

    # -- layers ---------------------------------------------------------------

    def _layer1_header_sanity(self, email: TokenizedEmail,
                              kind: str) -> Optional[str]:
        relay_hosts = _relay_chain_hosts(email)
        if relay_hosts and not any(h in self.our_domains
                                   for h in relay_hosts):
            return ("relaying server "
                    f"{'/'.join(sorted(relay_hosts))} is not one of our "
                    "domains")
        sender_domain = _sender_domain(email)
        if sender_domain and (sender_domain in self.our_domains
                              or self._suffix_match(sender_domain)):
            return "sender claims to be one of our domains"
        if kind == "receiver":
            to_domain = _header_to_domain(email)
            if to_domain is not None and to_domain not in self.our_domains \
                    and not self._suffix_match(to_domain):
                return "To: header does not point at our domains"
        return None

    def _layer2_spamassassin(self, email: TokenizedEmail) -> Optional[str]:
        if email.has_archive_attachment:
            return "ZIP/RAR attachment"
        score = self.scorer.score(email)
        if score.is_spam:
            return f"SpamAssassin score {score.total:.1f} >= {score.threshold}"
        return None

    def _layer3_collaborative(self, email: TokenizedEmail) -> Optional[str]:
        return self.collaborative.matches(_sender_address(email), email.body)

    def _layer4_reflection(self, email: TokenizedEmail) -> Optional[str]:
        metadata = email.metadata
        if metadata.list_unsubscribe:
            return "List-Unsubscribe header present"
        for label, value in (("Sender", metadata.sender_field),
                             ("From", metadata.from_field),
                             ("Reply-To", metadata.reply_to)):
            lowered = (value or "").lower()
            if "bounce" in lowered or "unsubscribe" in lowered:
                return f"{label} field contains bounce/unsubscribe"
        trio = [v for v in (metadata.from_field, metadata.reply_to,
                            metadata.return_path) if v]
        if len(set(trio)) > 1:
            return "From/Reply-To/Return-Path disagree"
        sender = _sender_address(email)
        if sender:
            local = sender.split("@", 1)[0].lower()
            if local in _SYSTEM_USERS:
                return f"system sender {local}"
        body = email.body.lower()
        for phrase in _REFLECTION_BODY_PHRASES:
            if phrase in body:
                return f"body contains {phrase!r}"
        return None

    # -- classification ----------------------------------------------------------

    def classify(self, email: TokenizedEmail,
                 update_frequencies: bool = True) -> FilterResult:
        """Streaming classification of one email."""
        kind = self.candidate_kind(email)
        layers = self.enabled_layers

        if 1 in layers:
            reason = self._layer1_header_sanity(email, kind)
            if reason is not None:
                self._record_spam(email)
                return FilterResult(Verdict.SPAM, kind, 1, reason)

        if 2 in layers:
            reason = self._layer2_spamassassin(email)
            if reason is not None:
                self._record_spam(email)
                return FilterResult(Verdict.SPAM, kind, 2, reason)

        if 3 in layers:
            reason = self._layer3_collaborative(email)
            if reason is not None:
                self._record_spam(email)
                return FilterResult(Verdict.SPAM, kind, 3, reason)

        if 4 in layers:
            reason = self._layer4_reflection(email)
            if reason is not None:
                return FilterResult(Verdict.REFLECTION, kind, 4, reason)

        if update_frequencies:
            self._bump_frequencies(email)
        if 5 in layers:
            reason = self._frequency_reason(email)
            if reason is not None:
                return FilterResult(Verdict.FREQUENCY_FILTERED, kind, 5,
                                    reason)
        return FilterResult(Verdict.TRUE_TYPO, kind, None, "passed all layers")

    def classify_corpus(self,
                        emails: Sequence[TokenizedEmail]) -> List[FilterResult]:
        """Two-pass batch classification (the paper's offline analysis).

        Pass 1 runs Layers 1–4 and accumulates corpus-wide frequencies for
        the survivors.  Pass 2 first re-applies the collaborative layer —
        the paper's wording is retroactive ("if a sender sends us spam
        once, we consider all of the emails from that sender ... to be
        spam"), so a campaign caught late still condemns its early mail —
        and then applies Layer 5 against the complete frequency counts.
        """
        provisional: List[Tuple[int, TokenizedEmail, FilterResult]] = []
        results: List[Optional[FilterResult]] = [None] * len(emails)

        for index, email in enumerate(emails):
            result = self.classify(email, update_frequencies=False)
            if result.verdict in (Verdict.SPAM, Verdict.REFLECTION):
                results[index] = result
            else:
                self._bump_frequencies(email)
                provisional.append((index, email, result))

        for index, email, result in provisional:
            if 3 in self.enabled_layers:
                retro = self._layer3_collaborative(email)
                if retro is not None:
                    results[index] = FilterResult(
                        Verdict.SPAM, result.kind, 3,
                        f"(retroactive) {retro}")
                    continue
            if 5 in self.enabled_layers:
                reason = self._frequency_reason(email)
                if reason is not None:
                    results[index] = FilterResult(
                        Verdict.FREQUENCY_FILTERED, result.kind, 5, reason)
                    continue
            results[index] = FilterResult(Verdict.TRUE_TYPO, result.kind,
                                          None, "passed all layers")
        return [r for r in results if r is not None]

    # -- internals -----------------------------------------------------------------

    def _record_spam(self, email: TokenizedEmail) -> None:
        self.collaborative.record_spam(_sender_address(email), email.body)

    def _bump_frequencies(self, email: TokenizedEmail) -> None:
        for recipient in email.metadata.envelope_to:
            key = recipient.lower()
            self._recipient_counts[key] = self._recipient_counts.get(key, 0) + 1
        sender = _sender_address(email)
        if sender:
            key = sender.lower()
            self._sender_counts[key] = self._sender_counts.get(key, 0) + 1
        digest = _content_hash(email.body)
        self._content_counts[digest] = self._content_counts.get(digest, 0) + 1

    def _frequency_reason(self, email: TokenizedEmail) -> Optional[str]:
        config = self.config
        for recipient in email.metadata.envelope_to:
            count = self._recipient_counts.get(recipient.lower(), 0)
            if count >= config.recipient_frequency_threshold:
                return f"recipient {recipient} seen {count} times"
        sender = _sender_address(email)
        if sender:
            count = self._sender_counts.get(sender.lower(), 0)
            if count >= config.sender_frequency_threshold:
                return f"sender {sender} seen {count} times"
        count = self._content_counts.get(_content_hash(email.body), 0)
        if count >= config.content_frequency_threshold:
            return f"identical body seen {count} times"
        return None


# -- header helpers -----------------------------------------------------------

_RELAY_BY_RE = re.compile(r"by ([^\s(]+)")
_RELAY_FROM_RE = re.compile(r"from ([^\s(]+)")


def _relay_chain_hosts(email: TokenizedEmail) -> Set[str]:
    """Hosts named in the topmost Received header.

    With the Figure-1 two-hop topology the collection server's header
    reads ``from <vps-typo-domain> by collector...``; with a direct
    delivery it reads ``from <sender> by <vps-typo-domain>``.  Layer 1
    accepts the mail when *either* position names one of our domains —
    mail that reached the collector without passing a registered VPS
    names neither, and is spam by construction.
    """
    chain = email.metadata.received_chain
    if not chain:
        return set()
    hosts: Set[str] = set()
    for pattern in (_RELAY_BY_RE, _RELAY_FROM_RE):
        match = pattern.search(chain[0])
        if match:
            hosts.add(match.group(1).lower())
    return hosts


def _sender_address(email: TokenizedEmail) -> Optional[str]:
    raw = email.metadata.envelope_from or email.metadata.from_field
    if not raw:
        return None
    match = re.search(r"[\w.+-]+@[\w.-]+", raw)
    return match.group(0) if match else None


def _sender_domain(email: TokenizedEmail) -> Optional[str]:
    sender = _sender_address(email)
    if sender is None:
        return None
    return sender.rpartition("@")[2].lower()


def _header_to_domain(email: TokenizedEmail) -> Optional[str]:
    raw = email.metadata.to_field
    if not raw:
        return None
    match = re.search(r"[\w.+-]+@([\w.-]+)", raw)
    return match.group(1).lower() if match else None


def _content_hash(body: str) -> str:
    cached = _CONTENT_HASH_CACHE.get(body)
    if cached is not None:
        return cached
    normalised = re.sub(r"\s+", " ", body.strip().lower())
    digest = hashlib.sha1(normalised.encode("utf-8")).hexdigest()
    if len(_CONTENT_HASH_CACHE) >= _BODY_CACHE_MAX:
        _CONTENT_HASH_CACHE.clear()
    _CONTENT_HASH_CACHE[body] = digest
    return digest
