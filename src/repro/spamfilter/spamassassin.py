"""A SpamAssassin-style rule-based spam scorer (funnel Layer 2).

The real study ran Apache SpamAssassin in local mode with default
thresholds.  This module reproduces its architecture: a set of named
rules, each contributing a score when its predicate fires, with a message
classified as spam when the total crosses the threshold (SpamAssassin's
default 5.0).  Rule scores are hand-set the way SA's are, and the
evaluation in Table 3 measures the resulting precision/recall on four
labelled corpora — high precision, mediocre recall, which is exactly why
the paper needed three more filtering layers.

Performance model: every text-derived signal a rule needs is a pure
function of either the body or the subject, so the signals are computed
once per *unique* string and memoised in bounded content-keyed tables
(:mod:`repro.util.textcache`).  Campaign spam repeats bodies verbatim,
which turns the dominant cost of Layer 2 — phrase scans over the lowered
text — into dict hits.  This replaces the old module-level one-slot
``_LAST_TEXT`` memo, whose global mutable state was shared across all
scorer instances and broke under interleaved funnels; the only remaining
per-email memo is a one-slot cache *on each scorer instance* (see
:class:`SpamAssassinScorer`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.pipeline.tokenizer import TokenizedEmail
from repro.util.textcache import BoundedMemo

__all__ = ["SpamRule", "SpamScore", "SpamAssassinScorer", "DEFAULT_THRESHOLD"]

DEFAULT_THRESHOLD = 5.0

RulePredicate = Callable[[TokenizedEmail], bool]


@dataclass(frozen=True)
class SpamRule:
    name: str
    score: float
    predicate: RulePredicate
    description: str = ""


@dataclass(frozen=True)
class SpamScore:
    total: float
    fired_rules: Tuple[str, ...]
    threshold: float

    @property
    def is_spam(self) -> bool:
        return self.total >= self.threshold


_URL_RE = re.compile(r"https?://[^\s]+", re.IGNORECASE)
_MONEY_RE = re.compile(r"[$€£]\s?\d[\d,]*(?:\.\d{2})?|\b\d+ ?(?:million|billion) (?:dollars|usd)\b",
                       re.IGNORECASE)
_SHOUTY_RE = re.compile(r"[A-Z]{4,}")

#: Phrases harvested from classic SA rule sets; the workload generators
#: plant a configurable subset of these in synthetic spam.
_SPAM_PHRASES = (
    "viagra", "cialis", "lottery", "you have won", "winner", "claim your",
    "nigerian prince", "wire transfer", "100% free", "risk free",
    "act now", "limited time offer", "click here", "order now",
    "cheap meds", "online pharmacy", "casino", "work from home",
    "make money fast", "weight loss", "miracle cure", "dear friend",
    "urgent response", "beneficiary", "inheritance", "confidential business",
)

_PHISH_PHRASES = (
    "verify your account", "suspended account", "confirm your password",
    "unusual activity", "update your billing",
)


# -- content-keyed signal extraction ------------------------------------------
#
# No phrase contains a newline, so scanning the old combined
# ``f"{subject}\n{body}".lower()`` is equivalent to scanning the lowered
# subject and body separately — and splitting lets both halves be cached
# independently (bodies repeat across a campaign while subjects vary, and
# vice versa for reflection streams).  Each unique string is lowered at
# most once, here, for all of Layers 2/3/5.


class _BodyFeatures:
    """Every body-derived rule signal, computed once per unique body."""

    __slots__ = ("spam_phrases", "phish", "excl_burst", "many_urls",
                 "url_shortener", "money_talk", "html_heavy",
                 "tiny_body_link")

    def __init__(self, body: str) -> None:
        lowered = body.lower()
        self.spam_phrases: FrozenSet[str] = frozenset(
            p for p in _SPAM_PHRASES if p in lowered)
        self.phish = any(p in lowered for p in _PHISH_PHRASES)
        self.excl_burst = "!!!" in body
        self.many_urls = len(_URL_RE.findall(body)) >= 3
        self.url_shortener = any(
            host in lowered for host in ("bit.ly/", "tinyurl.com/", "goo.gl/"))
        self.money_talk = bool(_MONEY_RE.search(body))
        if len(body) < 40:
            self.html_heavy = False
        else:
            tags = body.count("<")
            self.html_heavy = tags > 5 and tags * 10 > len(body.split())
        self.tiny_body_link = len(body) < 60 and bool(_URL_RE.search(body))


class _SubjectFeatures:
    """Every subject-derived rule signal, computed once per unique subject."""

    __slots__ = ("spam_phrases", "phish", "excl_burst", "shouty", "missing")

    def __init__(self, subject: str) -> None:
        lowered = subject.lower()
        self.spam_phrases: FrozenSet[str] = frozenset(
            p for p in _SPAM_PHRASES if p in lowered)
        self.phish = any(p in lowered for p in _PHISH_PHRASES)
        self.excl_burst = "!!!" in subject
        letters = [c for c in subject if c.isalpha()]
        if len(letters) < 6:
            self.shouty = False
        else:
            upper = sum(c.isupper() for c in letters)
            self.shouty = upper / len(letters) > 0.7
        self.missing = subject.strip() == ""


_BODY_FEATURES = BoundedMemo("spamassassin.body_features")
_SUBJECT_FEATURES = BoundedMemo("spamassassin.subject_features")


def _body_features(body: str) -> _BodyFeatures:
    features = _BODY_FEATURES.table.get(body)
    if features is None:
        features = _BodyFeatures(body)
        _BODY_FEATURES.put(body, features)
    else:
        _BODY_FEATURES.hits += 1
    return features


def _subject_features(subject: str) -> _SubjectFeatures:
    features = _SUBJECT_FEATURES.table.get(subject)
    if features is None:
        features = _SubjectFeatures(subject)
        _SUBJECT_FEATURES.put(subject, features)
    else:
        _SUBJECT_FEATURES.hits += 1
    return features


def _spam_phrase_count(email: TokenizedEmail) -> int:
    body_hits = _body_features(email.body).spam_phrases
    subject_hits = _subject_features(email.metadata.subject).spam_phrases
    if not subject_hits:
        return len(body_hits)
    if not body_hits:
        return len(subject_hits)
    return len(body_hits | subject_hits)


def _rule_spam_phrases(email: TokenizedEmail) -> bool:
    return _spam_phrase_count(email) >= 1


def _rule_many_spam_phrases(email: TokenizedEmail) -> bool:
    return _spam_phrase_count(email) >= 3


def _rule_phishing_phrases(email: TokenizedEmail) -> bool:
    return (_body_features(email.body).phish
            or _subject_features(email.metadata.subject).phish)


def _rule_shouty_subject(email: TokenizedEmail) -> bool:
    return _subject_features(email.metadata.subject).shouty


def _rule_exclamation_burst(email: TokenizedEmail) -> bool:
    return (_subject_features(email.metadata.subject).excl_burst
            or _body_features(email.body).excl_burst)


def _rule_many_urls(email: TokenizedEmail) -> bool:
    return _body_features(email.body).many_urls


def _rule_url_shortener(email: TokenizedEmail) -> bool:
    return _body_features(email.body).url_shortener


def _rule_money_talk(email: TokenizedEmail) -> bool:
    return _body_features(email.body).money_talk


def _rule_html_only_body(email: TokenizedEmail) -> bool:
    return _body_features(email.body).html_heavy


def _rule_suspicious_sender_tld(email: TokenizedEmail) -> bool:
    sender = (email.metadata.from_field or "").lower()
    return sender.rstrip(">").endswith((".top", ".click", ".xyz", ".loan", ".win"))


def _rule_numeric_sender(email: TokenizedEmail) -> bool:
    sender = (email.metadata.from_field or "").split("@")[0].strip("<")
    digits = sum(c.isdigit() for c in sender)
    return len(sender) > 0 and digits >= max(4, len(sender) // 2)

def _rule_missing_subject(email: TokenizedEmail) -> bool:
    return _subject_features(email.metadata.subject).missing


def _rule_executable_attachment(email: TokenizedEmail) -> bool:
    risky = {"exe", "scr", "js", "vbs", "bat", "com", "jar"}
    return any(a.extension in risky for a in email.attachments)


def _rule_tiny_body_with_link(email: TokenizedEmail) -> bool:
    return _body_features(email.body).tiny_body_link


def default_rules() -> List[SpamRule]:
    """The default rule set, scored so one strong signal is not enough
    (mirroring SA, where spam usually trips several rules)."""
    return [
        SpamRule("SPAM_PHRASE", 2.5, _rule_spam_phrases,
                 "contains a known spam phrase"),
        SpamRule("SPAM_PHRASE_MANY", 2.5, _rule_many_spam_phrases,
                 "contains three or more spam phrases"),
        SpamRule("PHISH_PHRASE", 2.8, _rule_phishing_phrases,
                 "contains account-phishing language"),
        SpamRule("SUBJ_ALL_CAPS", 1.5, _rule_shouty_subject,
                 "subject is mostly upper-case"),
        SpamRule("EXCL_BURST", 1.0, _rule_exclamation_burst,
                 "multiple exclamation marks"),
        SpamRule("MANY_URLS", 1.5, _rule_many_urls, "three or more URLs"),
        SpamRule("URL_SHORTENER", 1.2, _rule_url_shortener,
                 "link through a URL shortener"),
        SpamRule("MONEY_TALK", 1.5, _rule_money_talk,
                 "mentions money amounts"),
        SpamRule("HTML_HEAVY", 1.2, _rule_html_only_body,
                 "body is mostly HTML markup"),
        SpamRule("BAD_SENDER_TLD", 1.8, _rule_suspicious_sender_tld,
                 "sender in a spam-heavy TLD"),
        SpamRule("NUMERIC_SENDER", 1.0, _rule_numeric_sender,
                 "sender local part is mostly digits"),
        SpamRule("NO_SUBJECT", 0.8, _rule_missing_subject, "empty subject"),
        SpamRule("EXE_ATTACH", 3.0, _rule_executable_attachment,
                 "executable attachment"),
        SpamRule("TINY_BODY_LINK", 1.3, _rule_tiny_body_with_link,
                 "near-empty body with a link"),
    ]


#: SpamScore per unique (from, subject, body, extensions) — the complete
#: input surface of the *default* rule set; custom rule lists may read
#: anything, so only default-rule scorers use this table.  A hit from a
#: scorer with a different threshold is rebuilt against that threshold.
_SCORE_MEMO = BoundedMemo("spamassassin.score")


class SpamAssassinScorer:
    """Score emails against a rule set with a spam threshold.

    Each instance keeps a one-slot memo of its last ``(email, threshold)``
    and the resulting :class:`SpamScore` — callers like the funnel score
    the same tokenised email from more than one code path in a row.  The
    memo is *per instance* (not module-level) so two scorers with
    different thresholds or rule sets interleaving over the same emails
    can never serve each other stale scores.

    Default-rule scorers additionally share a content-keyed table: every
    default predicate is a pure function of the From header, subject,
    body, and attachment extensions, so equal inputs score equally no
    matter which message carries them — campaign spam repeats all four,
    which is what makes the classify stage's 3x throughput bar reachable
    on one core.
    """

    def __init__(self, rules: Optional[List[SpamRule]] = None,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.threshold = threshold
        #: content-keyed memoisation is only sound for the default rules
        self._content_keyed = rules is None
        self._last_email: Optional[TokenizedEmail] = None
        self._last_score: Optional[SpamScore] = None

    def score(self, email: TokenizedEmail) -> SpamScore:
        """Total score and fired rules for one email."""
        last = self._last_score
        if (email is self._last_email and last is not None
                and last.threshold == self.threshold):
            return last
        key = None
        if self._content_keyed:
            metadata = email.metadata
            key = (metadata.from_field, metadata.subject, email.body,
                   tuple(a.extension for a in email.attachments))
            cached = _SCORE_MEMO.table.get(key)
            if cached is not None:
                _SCORE_MEMO.hits += 1
                if cached.threshold != self.threshold:
                    # another scorer instance cached it — same total and
                    # fired rules, but rebuild against our threshold
                    cached = SpamScore(total=cached.total,
                                       fired_rules=cached.fired_rules,
                                       threshold=self.threshold)
                self._last_email = email
                self._last_score = cached
                return cached
        fired = []
        total = 0.0
        for rule in self.rules:
            if rule.predicate(email):
                fired.append(rule.name)
                total += rule.score
        result = SpamScore(total=total, fired_rules=tuple(fired),
                           threshold=self.threshold)
        if key is not None:
            _SCORE_MEMO.put(key, result)
        self._last_email = email
        self._last_score = result
        return result

    def is_spam(self, email: TokenizedEmail) -> bool:
        """Whether the email's score crosses the spam threshold."""
        return self.score(email).is_spam
