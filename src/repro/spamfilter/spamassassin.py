"""A SpamAssassin-style rule-based spam scorer (funnel Layer 2).

The real study ran Apache SpamAssassin in local mode with default
thresholds.  This module reproduces its architecture: a set of named
rules, each contributing a score when its predicate fires, with a message
classified as spam when the total crosses the threshold (SpamAssassin's
default 5.0).  Rule scores are hand-set the way SA's are, and the
evaluation in Table 3 measures the resulting precision/recall on four
labelled corpora — high precision, mediocre recall, which is exactly why
the paper needed three more filtering layers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.pipeline.tokenizer import TokenizedEmail

__all__ = ["SpamRule", "SpamScore", "SpamAssassinScorer", "DEFAULT_THRESHOLD"]

DEFAULT_THRESHOLD = 5.0

RulePredicate = Callable[[TokenizedEmail], bool]


@dataclass(frozen=True)
class SpamRule:
    name: str
    score: float
    predicate: RulePredicate
    description: str = ""


@dataclass(frozen=True)
class SpamScore:
    total: float
    fired_rules: Tuple[str, ...]
    threshold: float

    @property
    def is_spam(self) -> bool:
        return self.total >= self.threshold


_URL_RE = re.compile(r"https?://[^\s]+", re.IGNORECASE)
_MONEY_RE = re.compile(r"[$€£]\s?\d[\d,]*(?:\.\d{2})?|\b\d+ ?(?:million|billion) (?:dollars|usd)\b",
                       re.IGNORECASE)
_SHOUTY_RE = re.compile(r"[A-Z]{4,}")

#: Phrases harvested from classic SA rule sets; the workload generators
#: plant a configurable subset of these in synthetic spam.
_SPAM_PHRASES = (
    "viagra", "cialis", "lottery", "you have won", "winner", "claim your",
    "nigerian prince", "wire transfer", "100% free", "risk free",
    "act now", "limited time offer", "click here", "order now",
    "cheap meds", "online pharmacy", "casino", "work from home",
    "make money fast", "weight loss", "miracle cure", "dear friend",
    "urgent response", "beneficiary", "inheritance", "confidential business",
)

_PHISH_PHRASES = (
    "verify your account", "suspended account", "confirm your password",
    "unusual activity", "update your billing",
)


# Three phrase rules lower-case the same subject+body per score() call;
# scoring walks rules in order, so a one-slot memo keyed on the email's
# identity collapses the repeats without keeping old emails alive long.
_LAST_TEXT: Tuple[Optional[TokenizedEmail], str] = (None, "")


def _body_and_subject(email: TokenizedEmail) -> str:
    global _LAST_TEXT
    last_email, last_text = _LAST_TEXT
    if last_email is email:
        return last_text
    text = f"{email.metadata.subject}\n{email.body}".lower()
    _LAST_TEXT = (email, text)
    return text


_LAST_PHRASE_COUNT: Tuple[Optional[TokenizedEmail], int] = (None, -1)


def _spam_phrase_count(email: TokenizedEmail) -> int:
    # the two phrase rules below would otherwise scan the phrase table
    # twice per scored email; same one-slot memo pattern as _LAST_TEXT
    global _LAST_PHRASE_COUNT
    last_email, last_count = _LAST_PHRASE_COUNT
    if last_email is email:
        return last_count
    text = _body_and_subject(email)
    count = sum(phrase in text for phrase in _SPAM_PHRASES)
    _LAST_PHRASE_COUNT = (email, count)
    return count


def _rule_spam_phrases(email: TokenizedEmail) -> bool:
    return _spam_phrase_count(email) >= 1


def _rule_many_spam_phrases(email: TokenizedEmail) -> bool:
    return _spam_phrase_count(email) >= 3


def _rule_phishing_phrases(email: TokenizedEmail) -> bool:
    text = _body_and_subject(email)
    return any(phrase in text for phrase in _PHISH_PHRASES)


def _rule_shouty_subject(email: TokenizedEmail) -> bool:
    subject = email.metadata.subject
    if not subject:
        return False
    letters = [c for c in subject if c.isalpha()]
    if len(letters) < 6:
        return False
    upper = sum(c.isupper() for c in letters)
    return upper / len(letters) > 0.7


def _rule_exclamation_burst(email: TokenizedEmail) -> bool:
    return "!!!" in email.metadata.subject or "!!!" in email.body


def _rule_many_urls(email: TokenizedEmail) -> bool:
    return len(_URL_RE.findall(email.body)) >= 3


def _rule_url_shortener(email: TokenizedEmail) -> bool:
    body = email.body.lower()
    return any(host in body for host in ("bit.ly/", "tinyurl.com/", "goo.gl/"))


def _rule_money_talk(email: TokenizedEmail) -> bool:
    return bool(_MONEY_RE.search(email.body))


def _rule_html_only_body(email: TokenizedEmail) -> bool:
    body = email.body
    if len(body) < 40:
        return False
    tags = body.count("<")
    return tags > 5 and tags * 10 > len(body.split())


def _rule_suspicious_sender_tld(email: TokenizedEmail) -> bool:
    sender = (email.metadata.from_field or "").lower()
    return sender.rstrip(">").endswith((".top", ".click", ".xyz", ".loan", ".win"))


def _rule_numeric_sender(email: TokenizedEmail) -> bool:
    sender = (email.metadata.from_field or "").split("@")[0].strip("<")
    digits = sum(c.isdigit() for c in sender)
    return len(sender) > 0 and digits >= max(4, len(sender) // 2)

def _rule_missing_subject(email: TokenizedEmail) -> bool:
    return email.metadata.subject.strip() == ""


def _rule_executable_attachment(email: TokenizedEmail) -> bool:
    risky = {"exe", "scr", "js", "vbs", "bat", "com", "jar"}
    return any(a.extension in risky for a in email.attachments)


def _rule_tiny_body_with_link(email: TokenizedEmail) -> bool:
    return len(email.body) < 60 and bool(_URL_RE.search(email.body))


def default_rules() -> List[SpamRule]:
    """The default rule set, scored so one strong signal is not enough
    (mirroring SA, where spam usually trips several rules)."""
    return [
        SpamRule("SPAM_PHRASE", 2.5, _rule_spam_phrases,
                 "contains a known spam phrase"),
        SpamRule("SPAM_PHRASE_MANY", 2.5, _rule_many_spam_phrases,
                 "contains three or more spam phrases"),
        SpamRule("PHISH_PHRASE", 2.8, _rule_phishing_phrases,
                 "contains account-phishing language"),
        SpamRule("SUBJ_ALL_CAPS", 1.5, _rule_shouty_subject,
                 "subject is mostly upper-case"),
        SpamRule("EXCL_BURST", 1.0, _rule_exclamation_burst,
                 "multiple exclamation marks"),
        SpamRule("MANY_URLS", 1.5, _rule_many_urls, "three or more URLs"),
        SpamRule("URL_SHORTENER", 1.2, _rule_url_shortener,
                 "link through a URL shortener"),
        SpamRule("MONEY_TALK", 1.5, _rule_money_talk,
                 "mentions money amounts"),
        SpamRule("HTML_HEAVY", 1.2, _rule_html_only_body,
                 "body is mostly HTML markup"),
        SpamRule("BAD_SENDER_TLD", 1.8, _rule_suspicious_sender_tld,
                 "sender in a spam-heavy TLD"),
        SpamRule("NUMERIC_SENDER", 1.0, _rule_numeric_sender,
                 "sender local part is mostly digits"),
        SpamRule("NO_SUBJECT", 0.8, _rule_missing_subject, "empty subject"),
        SpamRule("EXE_ATTACH", 3.0, _rule_executable_attachment,
                 "executable attachment"),
        SpamRule("TINY_BODY_LINK", 1.3, _rule_tiny_body_with_link,
                 "near-empty body with a link"),
    ]


class SpamAssassinScorer:
    """Score emails against a rule set with a spam threshold."""

    def __init__(self, rules: Optional[List[SpamRule]] = None,
                 threshold: float = DEFAULT_THRESHOLD) -> None:
        self.rules = rules if rules is not None else default_rules()
        self.threshold = threshold

    def score(self, email: TokenizedEmail) -> SpamScore:
        """Total score and fired rules for one email."""
        fired = []
        total = 0.0
        for rule in self.rules:
            if rule.predicate(email):
                fired.append(rule.name)
                total += rule.score
        return SpamScore(total=total, fired_rules=tuple(fired),
                         threshold=self.threshold)

    def is_spam(self, email: TokenizedEmail) -> bool:
        """Whether the email's score crosses the spam threshold."""
        return self.score(email).is_spam
