"""Spam generation — the overwhelming bulk of the study's traffic.

The paper projects ~118.9 million emails/year across 76 domains, of which
only a few thousand survive filtering: the corpus is dominated by spam
aimed at the catch-all servers.  Two streams matter, because the funnel
classifies candidates by header:

* **receiver-candidate spam** — addressed *to* the study domains
  (harvested/dictionary addresses), indistinguishable in kind from
  receiver typos until filtered;
* **SMTP-candidate spam** — blasted at the open SMTP ports with
  third-party recipients, which is why the paper saw 102.7M *SMTP-typo
  candidates* a year: spammers probing open relays.

Spam arrives in campaigns (one sender, one body template, many hits) plus
a singleton tail.  Campaign "obviousness" controls whether Layer 2 catches
a given email; stealthy campaign mail is then mopped up by Layer 3
(collaborative) and Layer 5 (frequency), and a residue survives — the
paper's manual analysis found ~20% of surviving "typos" were such spam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.targets import StudyCorpus
from repro.core.taxonomy import TypoEmailKind
from repro.smtpsim.message import Attachment, EmailMessage
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY
from repro.workloads.events import SendRequest
from repro.workloads.textgen import BodyBuilder, PersonaFactory, make_attachment_payload

__all__ = ["SpamGenerator", "SpamConfig", "SpamCampaign"]

_SPAM_SUBJECTS = (
    "YOU HAVE WON!!!",
    "claim your prize now",
    "RE: urgent response needed",
    "cheap meds online pharmacy",
    "limited time offer inside",
    "your account needs attention",
)

_SPAM_BODY_TEMPLATES = (
    "dear friend, you have won ${amount}. claim your prize today. act now "
    "risk free at http://{host}/win",
    "verify your account immediately. unusual activity detected. click here "
    "http://{host}/verify to confirm your password",
    "online pharmacy sale! viagra and cialis 100% free shipping. order now "
    "http://{host}/shop http://{host}/deals http://{host}/meds",
    "work from home and make money fast. wire transfer ${amount} weekly. "
    "limited time offer http://{host}/job",
)

_SPAM_ATTACHMENT_EXTENSIONS = ("zip", "rar", "doc", "docm", "xls", "xlsm",
                               "exe", "js", "pdf")


@dataclass
class SpamCampaign:
    """One bulk-mailing operation."""

    sender: str
    body: str
    subject: str
    obviousness: float          # probability a given email trips Layer 2
    forged_headers: bool        # Layer-1-detectable header games
    daily_volume: float         # emails/day while active
    remaining_days: int
    attaches_malware: bool = False


@dataclass(frozen=True)
class SpamConfig:
    """Volume knobs, in emails/year before ``volume_scale``.

    Defaults approximate the paper's mix: receiver-candidate spam ~16.2M,
    SMTP-candidate spam ~102.7M (here scaled implicitly by the caller —
    running the real yearly volume is neither feasible nor needed for
    shape reproduction).
    """

    receiver_spam_per_year: float = 16_200_000.0
    smtp_spam_per_year: float = 102_700_000.0
    campaign_fraction: float = 0.92       # rest is singleton spam
    mean_campaign_days: float = 4.0
    obvious_campaign_fraction: float = 0.8
    forged_header_fraction: float = 0.25
    attachment_probability: float = 0.25
    malware_fraction_of_attachments: float = 0.03


class SpamGenerator:
    """Day-by-day spam for the whole study corpus."""

    def __init__(self, corpus: StudyCorpus, rng: SeededRng,
                 config: Optional[SpamConfig] = None,
                 volume_scale: float = 1.0) -> None:
        self._rng = rng
        self._config = config or SpamConfig()
        self._bodies = BodyBuilder(rng.child("bodies"))
        self._personas = PersonaFactory(rng.child("personas"))
        self._receiver_domains = [d.domain for d in corpus.domains]
        self._smtp_capable = [d.domain for d in corpus.domains]
        self._scale = volume_scale
        self._campaigns: List[SpamCampaign] = []
        #: sha256 of every malware payload produced — the simulated
        #: VirusTotal database for the attachment analysis.
        self.malicious_hashes: Set[str] = set()

        self._receiver_daily = (self._config.receiver_spam_per_year / 365.0
                                * volume_scale)
        self._smtp_daily = (self._config.smtp_spam_per_year / 365.0
                            * volume_scale)
        # stealth singletons mostly recycle a small pool of chain-letter
        # bodies (real spam reuses text heavily); a small residue is
        # genuinely unique and survives to the manual-analysis stage,
        # like the ~20% spam the paper found among its "true typos"
        self._stealth_body_pool = [self._bodies.body(sentences=4)
                                   for _ in range(25)]

    @property
    def expected_daily_total(self) -> float:
        return self._receiver_daily + self._smtp_daily

    # -- durable state (the study checkpoint's generator payload) ------------

    def state_dict(self) -> Dict:
        """Mid-window mutable state: live campaigns + the malware DB.

        Everything else (rates, the stealth body pool) is derived at
        construction from the config and init-time RNG draws, which a
        resumed run repeats identically before restoring stream
        positions.
        """
        return {
            "campaigns": [
                {"sender": c.sender, "body": c.body, "subject": c.subject,
                 "obviousness": c.obviousness,
                 "forged_headers": c.forged_headers,
                 "daily_volume": c.daily_volume,
                 "remaining_days": c.remaining_days,
                 "attaches_malware": c.attaches_malware}
                for c in self._campaigns],
            "malicious_hashes": sorted(self.malicious_hashes),
        }

    def restore_state(self, data: Dict) -> None:
        self._campaigns = [SpamCampaign(**entry)
                           for entry in data["campaigns"]]
        self.malicious_hashes = set(data["malicious_hashes"])

    # -- campaign lifecycle ------------------------------------------------------

    def _ensure_campaigns(self, needed_daily: float) -> None:
        active = sum(c.daily_volume for c in self._campaigns)
        while active < needed_daily * self._config.campaign_fraction:
            campaign = self._new_campaign(needed_daily)
            self._campaigns.append(campaign)
            active += campaign.daily_volume

    def _new_campaign(self, needed_daily: float) -> SpamCampaign:
        rng = self._rng
        host = f"{rng.token(8)}.{rng.choice(('top', 'click', 'xyz', 'biz'))}"
        obvious = rng.bernoulli(self._config.obvious_campaign_fraction)
        if obvious:
            body = rng.choice(_SPAM_BODY_TEMPLATES).format(
                amount=f"{rng.randint(1, 9)},000,000", host=host)
            subject = rng.choice(_SPAM_SUBJECTS)
            obviousness = rng.uniform(0.85, 1.0)
        else:
            # stealth campaign: benign-looking prose, unique host
            body = self._bodies.body(sentences=4)
            subject = self._bodies.subject()
            obviousness = rng.uniform(0.0, 0.15)
        return SpamCampaign(
            sender=f"{rng.token(6)}{rng.randint(10, 9999)}@{host}",
            body=body,
            subject=subject,
            obviousness=obviousness,
            forged_headers=rng.bernoulli(self._config.forged_header_fraction),
            daily_volume=max(1.0, needed_daily
                             * rng.uniform(0.02, 0.2)),
            remaining_days=1 + rng.poisson(self._config.mean_campaign_days),
            attaches_malware=rng.bernoulli(0.1),
        )

    # -- generation ----------------------------------------------------------------

    def emails_for_day(self, day: int) -> List[SendRequest]:
        """The day's spam across both streams; campaigns age afterwards."""
        out: List[SendRequest] = []
        out.extend(self._stream_for_day(day, self._receiver_daily,
                                        receiver_stream=True))
        out.extend(self._stream_for_day(day, self._smtp_daily,
                                        receiver_stream=False))
        for campaign in self._campaigns:
            campaign.remaining_days -= 1
        self._campaigns = [c for c in self._campaigns if c.remaining_days > 0]
        return out

    def _stream_for_day(self, day: int, daily_rate: float,
                        receiver_stream: bool) -> List[SendRequest]:
        rng = self._rng
        total = rng.poisson(daily_rate)
        if total == 0:
            return []
        self._ensure_campaigns(daily_rate)
        campaign_count = round(total * self._config.campaign_fraction)
        out: List[SendRequest] = []
        for _ in range(campaign_count):
            campaign = rng.choice(self._campaigns)
            out.append(self._campaign_email(day, campaign, receiver_stream))
        for _ in range(total - campaign_count):
            out.append(self._singleton_email(day, receiver_stream))
        return out

    def _campaign_email(self, day: int, campaign: SpamCampaign,
                        receiver_stream: bool) -> SendRequest:
        rng = self._rng
        study_domain = rng.choice(self._receiver_domains)
        if receiver_stream:
            recipient = f"{rng.token(7)}@{study_domain}"
        else:
            recipient = f"{rng.token(7)}@{rng.token(6)}.example"

        # real campaigns reuse their template: the body is a campaign-level
        # property (which is exactly what makes collaborative bag-of-words
        # and content-frequency filtering bite)
        body = campaign.body
        subject = campaign.subject

        to_header = recipient
        if campaign.forged_headers:
            # classic spammer trick the paper's Layer 1 catches: pretend to
            # send *from* the victim domain, or use an unrelated To header
            if rng.bernoulli(0.5):
                sender = f"{rng.token(6)}@{study_domain}"
            else:
                sender = campaign.sender
                to_header = f"{rng.token(7)}@unrelated.example"
        else:
            sender = campaign.sender

        # only loud campaigns push attachments; stealth campaigns stay lean
        attachments = (self._maybe_attachments(campaign.attaches_malware)
                       if campaign.obviousness > 0.5 else [])
        message = EmailMessage.create(
            from_addr=sender, to_addr=to_header, subject=subject, body=body,
            attachments=attachments)
        message.envelope_to = [recipient]
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(timestamp=timestamp, message=message,
                           recipient=recipient,
                           true_kind=TypoEmailKind.SPAM,
                           study_domain=study_domain,
                           smtp_port=25)

    def _singleton_email(self, day: int,
                         receiver_stream: bool) -> SendRequest:
        rng = self._rng
        study_domain = rng.choice(self._receiver_domains)
        recipient = (f"{rng.token(7)}@{study_domain}" if receiver_stream
                     else f"{rng.token(7)}@{rng.token(6)}.example")
        host = f"{rng.token(8)}.{rng.choice(('top', 'click', 'net'))}"
        attachments: List[Attachment] = []
        if rng.bernoulli(0.7):
            body = rng.choice(_SPAM_BODY_TEMPLATES).format(
                amount=f"{rng.randint(1, 9)}00,000", host=host)
            subject = rng.choice(_SPAM_SUBJECTS)
            # malware rides on the loud mass mail, not the stealthy tail
            attachments = self._maybe_attachments(rng.bernoulli(0.05))
        elif rng.bernoulli(0.8):
            body = rng.choice(self._stealth_body_pool)
            subject = self._bodies.subject()
        else:
            # the genuinely unique residue that defeats every filter
            body = self._bodies.body(sentences=2)
            subject = self._bodies.subject()
        message = EmailMessage.create(
            from_addr=f"{rng.token(8)}@{host}",
            to_addr=recipient, subject=subject, body=body,
            attachments=attachments)
        message.envelope_to = [recipient]
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(timestamp=timestamp, message=message,
                           recipient=recipient,
                           true_kind=TypoEmailKind.SPAM,
                           study_domain=study_domain,
                           smtp_port=25)

    def _maybe_attachments(self, malware_biased: bool) -> List[Attachment]:
        rng = self._rng
        probability = self._config.attachment_probability
        if not rng.bernoulli(probability):
            return []
        extension = rng.choice(_SPAM_ATTACHMENT_EXTENSIONS)
        is_malware = malware_biased or rng.bernoulli(
            self._config.malware_fraction_of_attachments)
        payload_text = ("MALSIG-" + rng.token(16)) if is_malware \
            else self._bodies.body(sentences=1)
        attachment = Attachment(f"{rng.token(6)}.{extension}",
                                make_attachment_payload(extension, payload_text))
        if is_malware:
            self.malicious_hashes.add(attachment.sha256())
        return [attachment]
