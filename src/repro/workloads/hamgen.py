"""Receiver-typo email generation — the "legitimate" misdirected mail.

A receiver typo happens when a real person emails a real correspondent but
fat-fingers the recipient's domain.  The generator draws the daily count
per study domain from the typing model (Pt, Pc, target popularity), and
builds plausible personal/business mail: benign prose, occasional
attachments (the Figure 7 extension mix), and occasional sensitive
identifiers with per-target-category profiles (the Figure 6 heat map —
typos of disposable-mail providers see credentials, typos of financial
domains see payment details).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.targets import (
    EMAIL_TARGETS,
    RegisteredTypoDomain,
    StudyCorpus,
    TargetDomain,
)
from repro.core.taxonomy import TypoEmailKind
from repro.smtpsim.message import Attachment, EmailMessage
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY
from repro.workloads.events import SendRequest
from repro.workloads.textgen import BodyBuilder, PersonaFactory, make_attachment_payload
from repro.workloads.typo_model import TypingMistakeModel, calibrate_global_volume

__all__ = ["ReceiverTypoGenerator", "ATTACHMENT_EXTENSION_WEIGHTS"]

#: Extension mix for true-typo attachments, shaped like the paper's
#: Figure 7 (txt/jpg dominate; office formats follow; a long tail).
ATTACHMENT_EXTENSION_WEIGHTS: Mapping[str, float] = {
    "txt": 4571, "jpg": 1617, "pdf": 1113, "png": 335, "docx": 307,
    "xml": 146, "gif": 80, "doc": 65, "jpeg": 52, "xlsx": 19,
    "xls": 18, "ics": 11, "html": 10, "docm": 9, "pptx": 9,
    "rtf": 6,
}

#: Per-target-category sensitive-content profiles: (kind, probability).
#: Figure 6's heavy cells: yopmail typos collect usernames+passwords,
#: provider typos a mix, financial typos payment identifiers.
_SENSITIVE_PROFILES: Mapping[str, Sequence] = {
    # throwaway addresses exist to receive registration credentials:
    # the paper's Figure 6 shows 128 usernames and 16 passwords at a
    # single yopmail typo domain
    "disposable": (("username", 0.55), ("password", 0.30)),
    "provider": (("username", 0.015), ("password", 0.01),
                 ("creditcard", 0.006), ("ein", 0.004), ("vin", 0.003)),
    "isp": (("username", 0.01), ("creditcard", 0.004), ("vin", 0.004)),
    "financial": (("creditcard", 0.03), ("ein", 0.01)),
    "bulk": (("username", 0.01),),
}

#: Valid (Luhn) PANs per brand for planting.
_SAMPLE_CARDS = {
    "visa": "4111111111111111",
    "mastercard": "5500005555555559",
    "amex": "371449635398431",
    "dinersclub": "30569309025904",
    "jcb": "3530111333300000",
}


@dataclass
class _DomainPlan:
    domain: RegisteredTypoDomain
    daily_rate: float


class ReceiverTypoGenerator:
    """Generates receiver-typo mail for the study corpus.

    ``yearly_true_typos`` calibrates the world so the whole corpus
    receives roughly that many receiver typos per year (the paper measured
    ~6,041/year including reflections); ``volume_scale`` scales everything
    down for fast simulation runs.
    """

    def __init__(self, corpus: StudyCorpus, rng: SeededRng,
                 model: Optional[TypingMistakeModel] = None,
                 yearly_true_typos: float = 5300.0,
                 volume_scale: float = 1.0,
                 smtp_domain_leak_rate: float = 700.0) -> None:
        self._rng = rng
        self._model = model or TypingMistakeModel()
        self._personas = PersonaFactory(rng.child("personas"))
        self._bodies = BodyBuilder(rng.child("bodies"))
        self._volume_scale = volume_scale
        self._targets = {t.name: t for t in EMAIL_TARGETS}

        annotated = [d for d in corpus.domains
                     if d.purpose in ("receiver", "reflection")
                     and d.candidate is not None]
        global_volume = calibrate_global_volume(
            [d.candidate for d in annotated], self._targets, self._model,
            desired_total_yearly=yearly_true_typos)

        self._plans: List[_DomainPlan] = []
        for domain in annotated:
            target = self._targets[domain.target]
            yearly = self._model.expected_yearly_emails(
                global_volume * target.email_share, domain.candidate)
            self._plans.append(_DomainPlan(
                domain=domain, daily_rate=yearly / 365.0 * volume_scale))

        # the paper's unexplained ~700/yr receiver typos at SMTP-purpose
        # domains, spread uniformly over them
        smtp_domains = corpus.by_purpose("smtp")
        if smtp_domains:
            per_domain = (smtp_domain_leak_rate / 365.0 / len(smtp_domains)
                          * volume_scale)
            for domain in smtp_domains:
                self._plans.append(_DomainPlan(domain=domain,
                                               daily_rate=per_domain))

    # -- introspection (used by analyses/tests) -------------------------------

    def expected_daily_rate(self, domain: str) -> float:
        """The calibrated mean receiver typos/day for one study domain."""
        for plan in self._plans:
            if plan.domain.domain == domain:
                return plan.daily_rate
        return 0.0

    def total_daily_rate(self) -> float:
        """Mean receiver typos/day across the whole corpus."""
        return sum(plan.daily_rate for plan in self._plans)

    # -- generation --------------------------------------------------------------

    #: Mild weekly seasonality: human email dips on weekends.  The paper's
    #: yearly normalisation (y = x*365/d) assumes the window averages out
    #: "daily, weekly, monthly, and most seasonal effects" — which only
    #: holds if such effects exist to be averaged.
    WEEKDAY_FACTORS = (1.1, 1.1, 1.1, 1.1, 1.05, 0.75, 0.8)

    def emails_for_day(self, day: int) -> List[SendRequest]:
        """The day's receiver-typo send requests (Poisson per domain)."""
        factor = self.WEEKDAY_FACTORS[day % 7]
        out: List[SendRequest] = []
        for plan in self._plans:
            count = self._rng.poisson(plan.daily_rate * factor)
            for _ in range(count):
                out.append(self._one_email(day, plan.domain))
        return out

    def _one_email(self, day: int, domain: RegisteredTypoDomain) -> SendRequest:
        rng = self._rng
        target = self._targets.get(domain.target)
        category = target.category if target else "provider"

        sender = self._personas.make(
            rng.choice(("fastmail.org", "corporate.example", "mail.example",
                        "university.example", "smallbiz.example")))
        intended = self._personas.make(domain.target)
        # the typo: same local part, mistyped domain
        typoed_address = f"{intended.email.split('@')[0]}@{domain.domain}"

        topic = rng.choice(self._bodies.topics())
        body = self._bodies.body(topic=topic, sentences=rng.randint(2, 5),
                                 recipient_name=intended.first_name,
                                 closing_name=sender.first_name)
        body = self._maybe_add_sensitive(body, category)

        attachments = self._maybe_attachments(topic)
        message = EmailMessage.create(
            from_addr=sender.full_address,
            to_addr=f"{intended.display_name} <{typoed_address}>",
            subject=self._bodies.subject(topic),
            body=body,
            attachments=attachments,
        )
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(
            timestamp=timestamp,
            message=message,
            recipient=typoed_address,
            true_kind=TypoEmailKind.RECEIVER,
            study_domain=domain.domain,
        )

    # -- content helpers -----------------------------------------------------------

    def _maybe_add_sensitive(self, body: str, category: str) -> str:
        rng = self._rng
        extra: List[str] = []
        for kind, probability in _SENSITIVE_PROFILES.get(category, ()):
            if not rng.bernoulli(probability):
                continue
            if kind == "creditcard":
                brand = rng.choice(sorted(_SAMPLE_CARDS))
                extra.append(f"you can put it on my card {_SAMPLE_CARDS[brand]}")
            elif kind == "password":
                extra.append(f"the password is {rng.token(8)}")
            elif kind == "username":
                extra.append(f"my username is {rng.token(6)}{rng.randint(1, 99)}")
            elif kind == "ein":
                extra.append(
                    f"our EIN {rng.randint(10, 99)}-{rng.randint(1000000, 9999999)}")
            elif kind == "vin":
                alphabet = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"
                vin = "1" + "".join(rng.choice(alphabet) for _ in range(15)) + "2"
                extra.append(f"the car vin is {vin}")
        if extra:
            return body + "\n" + "\n".join(extra)
        return body

    def _maybe_attachments(self, topic: str) -> List[Attachment]:
        rng = self._rng
        if not rng.bernoulli(0.18):
            return []
        extensions = list(ATTACHMENT_EXTENSION_WEIGHTS)
        weights = [ATTACHMENT_EXTENSION_WEIGHTS[e] for e in extensions]
        extension = extensions[rng.weighted_index(weights)]
        text = self._bodies.body(topic=topic, sentences=2)
        filename = f"{rng.token(6)}.{extension}"
        return [Attachment(filename,
                           make_attachment_payload(extension, text))]
