"""Traffic events shared by all workload generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.taxonomy import TypoEmailKind
from repro.smtpsim.message import EmailMessage

__all__ = ["SendRequest"]


@dataclass
class SendRequest:
    """One email the simulated world wants to send.

    ``true_kind`` is ground truth known only to the simulation — the
    filtering funnel never sees it; tests and analyses use it to measure
    how well the funnel recovers the truth (the paper could only do this
    by manually sampling 103 emails).
    """

    timestamp: float              # seconds since the collection epoch
    message: EmailMessage
    recipient: str                # envelope RCPT TO
    true_kind: TypoEmailKind
    study_domain: Optional[str]   # which study domain should attract it
    smtp_port: int = 25
    #: monotone per-run send sequence, stamped by the experiment runner
    #: at dispatch (mirrored onto ``message.sequence``); ground-truth
    #: attribution joins on this instead of object identity
    sequence: Optional[int] = None

    @property
    def day(self) -> int:
        return int(self.timestamp // 86_400)
