"""A labelled Enron-like corpus for evaluating the scrubber (Table 2).

The paper tested its sensitive-information regexes against the public
Enron email corpus by manually labelling samples.  We instead *plant*
identifiers with ground-truth labels into Enron-flavoured business prose,
which turns Table 2 into an exact computation instead of a manual
sampling exercise.  Three ingredient classes drive the precision and
sensitivity numbers:

* **detectable identifiers** — planted in the formats the detectors parse;
* **evasive identifiers** — real identifiers in formats the detectors miss
  ("bob at gmail dot com", unseparated phone digits), producing the
  false negatives behind sensitivities below 1.0;
* **decoys** — text that *triggers* a detector without being sensitive
  ("the password is not required"), producing the false positives behind
  the low precision of the password/username/idnumber detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.sensitive import SensitiveScrubber
from repro.util.rand import SeededRng
from repro.util.stats import BinaryClassificationScores
from repro.workloads.textgen import BodyBuilder, PersonaFactory

__all__ = ["LabeledEntity", "LabeledEmail", "EnronLikeCorpus",
           "evaluate_scrubber"]


@dataclass(frozen=True)
class LabeledEntity:
    """One planted ground-truth identifier."""

    kind: str
    value: str


@dataclass
class LabeledEmail:
    """A corpus email with its ground-truth sensitive content."""

    text: str
    entities: List[LabeledEntity] = field(default_factory=list)


#: (kind, detectable-template, evasive-template, decoy-template,
#:  plant-probability, evasive-rate, decoy-rate)
#: Rates are tuned so the computed Table 2 approximates the paper's.
_PLANTING_SPECS = (
    ("creditcard",
     "charge it to my card {card}",
     None,
     "tracking number {card} confirms shipment",
     0.10, 0.0, 0.08),
    ("ssn",
     "my social security number is {ssn}",
     "ssn on file ending {digits4}",
     "internal doc code {ssnlike} filed",
     0.05, 0.0, 0.30),
    ("ein",
     "the company EIN {ein} is registered",
     None,
     "part no {einlike} restocked",
     0.06, 0.0, 0.13),
    ("password",
     "the password is {token}",
     None,
     "the password is {decoy_word}",
     0.08, 0.0, 0.65),
    ("vin",
     "truck vin {vin} needs service",
     None, None,
     0.05, 0.0, 0.0),
    ("username",
     "my username is {token}",
     None,
     "your username is {decoy_word}",
     0.08, 0.0, 0.45),
    ("zip",
     "ship to Houston, TX {zip5}",
     None, None,
     0.10, 0.0, 0.0),
    ("idnumber",
     "account number: {token_upper}",
     "their file code is {token_upper}",
     "case number: {decoy_word}",
     0.10, 0.40, 0.20),
    ("email",
     "copy {email} on this",
     "reach me at {user} at {host} dot com",
     None,
     0.25, 0.02, 0.0),
    ("phone",
     "call me at {phone}",
     "cell {digits10}",
     "po line item {phonelike} approved",
     0.20, 0.05, 0.20),
    ("date",
     "the contract closes {date}",
     None, None,
     0.30, 0.0, 0.0),
)

_DECOY_WORDS = ("required", "changed", "here", "below", "attached",
                "confidential", "unchanged", "ready")

_SAMPLE_CARDS = ("4111111111111111", "5500005555555559", "371449635398431",
                 "30569309025904", "3530111333300000")


class EnronLikeCorpus:
    """Deterministic generator of labelled business emails."""

    def __init__(self, rng: SeededRng) -> None:
        self._rng = rng
        self._bodies = BodyBuilder(rng.child("bodies"))
        self._personas = PersonaFactory(rng.child("personas"))

    def generate(self, count: int) -> List[LabeledEmail]:
        """Mint ``count`` labelled business emails."""
        return [self._one_email() for _ in range(count)]

    def _one_email(self) -> LabeledEmail:
        rng = self._rng
        persona = self._personas.make("enron-like.example")
        lines = [self._bodies.body(sentences=rng.randint(2, 4),
                                   closing_name=persona.first_name)]
        entities: List[LabeledEntity] = []

        for spec in _PLANTING_SPECS:
            (kind, detectable, evasive, decoy,
             plant_p, evasive_rate, decoy_rate) = spec
            if decoy is not None and rng.bernoulli(plant_p * decoy_rate):
                lines.append(self._fill_decoy(decoy))
            if not rng.bernoulli(plant_p):
                continue
            use_evasive = evasive is not None and rng.bernoulli(evasive_rate)
            template = evasive if use_evasive else detectable
            line, value = self._fill(template, kind)
            lines.append(line)
            entities.append(LabeledEntity(kind=kind, value=value))

        return LabeledEmail(text="\n".join(lines), entities=entities)

    def _fill_decoy(self, template: str) -> str:
        """Render a false-positive trap: detector-shaped but not sensitive."""
        rng = self._rng
        return template.format(
            decoy_word=rng.choice(_DECOY_WORDS),
            card=rng.choice(_SAMPLE_CARDS),
            ssnlike=(f"{rng.randint(100, 999)}-{rng.randint(10, 99)}-"
                     f"{rng.randint(1000, 9999)}"),
            einlike=f"{rng.randint(10, 99)}-{rng.randint(1000000, 9999999)}",
            phonelike=(f"{rng.randint(200, 999)}-{rng.randint(200, 999)}-"
                       f"{rng.randint(1000, 9999)}"),
        )

    def _fill(self, template: str, kind: str) -> Tuple[str, str]:
        rng = self._rng
        fillers: Dict[str, str] = {}
        if "{card}" in template:
            fillers["card"] = rng.choice(_SAMPLE_CARDS)
            value = fillers["card"]
        elif "{ssn}" in template:
            fillers["ssn"] = (f"{rng.randint(100, 772)}-"
                              f"{rng.randint(10, 99)}-{rng.randint(1000, 9999)}")
            value = fillers["ssn"]
        elif "{digits4}" in template:
            fillers["digits4"] = str(rng.randint(1000, 9999))
            value = fillers["digits4"]
        elif "{ein}" in template:
            fillers["ein"] = f"{rng.randint(10, 99)}-{rng.randint(1000000, 9999999)}"
            value = fillers["ein"]
        elif "{vin}" in template:
            alphabet = "ABCDEFGHJKLMNPRSTUVWXYZ0123456789"
            fillers["vin"] = "1" + "".join(
                rng.choice(alphabet) for _ in range(15)) + "4"
            value = fillers["vin"]
        elif "{zip5}" in template:
            fillers["zip5"] = f"{rng.randint(10000, 99999)}"
            value = fillers["zip5"]
        elif "{token_upper}" in template:
            fillers["token_upper"] = f"AC-{rng.randint(10000, 99999)}"
            value = fillers["token_upper"]
        elif "{email}" in template:
            fillers["email"] = f"{rng.token(6)}@{rng.token(5)}.com"
            value = fillers["email"]
        elif "{user}" in template and "{host}" in template:
            fillers["user"] = rng.token(6)
            fillers["host"] = rng.token(5)
            value = f"{fillers['user']}@{fillers['host']}.com"
        elif "{phone}" in template:
            fillers["phone"] = (f"({rng.randint(200, 989)}) "
                                f"{rng.randint(200, 999)}-{rng.randint(1000, 9999)}")
            value = fillers["phone"]
        elif "{digits10}" in template:
            fillers["digits10"] = str(rng.randint(2_000_000_000, 9_899_999_999))
            value = fillers["digits10"]
        elif "{date}" in template:
            fillers["date"] = (f"{rng.randint(1, 12):02d}/"
                               f"{rng.randint(1, 28):02d}/{rng.randint(1998, 2002)}")
            value = fillers["date"]
        elif "{token}" in template:
            fillers["token"] = rng.token(8)
            value = fillers["token"]
        else:
            raise AssertionError(f"template without filler: {template}")
        if "{token}" in template and "token" not in fillers:
            fillers["token"] = rng.token(8)
        return template.format(**fillers), value


def evaluate_scrubber(corpus: Sequence[LabeledEmail],
                      scrubber: Optional[SensitiveScrubber] = None
                      ) -> Dict[str, BinaryClassificationScores]:
    """Per-kind precision/sensitivity of the scrubber on a labelled corpus.

    A detection counts as a true positive when a planted entity of the
    same kind appears in the email and the detected text covers its value;
    unmatched detections are false positives, unmatched plants false
    negatives — the exact bookkeeping behind the paper's Table 2.
    """
    scrubber = scrubber or SensitiveScrubber()
    tallies: Dict[str, Dict[str, int]] = {}

    def tally(kind: str) -> Dict[str, int]:
        return tallies.setdefault(kind, {"tp": 0, "fp": 0, "fn": 0})

    for email in corpus:
        detections = scrubber.find(email.text)
        remaining = list(email.entities)
        for detection in detections:
            match_index = None
            for i, entity in enumerate(remaining):
                if entity.kind == detection.kind and (
                        entity.value in detection.text
                        or detection.text in entity.value):
                    match_index = i
                    break
            if match_index is not None:
                tally(detection.kind)["tp"] += 1
                remaining.pop(match_index)
            else:
                tally(detection.kind)["fp"] += 1
        for entity in remaining:
            tally(entity.kind)["fn"] += 1

    return {
        kind: BinaryClassificationScores(
            true_positives=t["tp"], false_positives=t["fp"],
            false_negatives=t["fn"])
        for kind, t in sorted(tallies.items())
    }
