"""SMTP-typo email generation (paper Sections 3 and 4.4).

An SMTP typo is a client-side misconfiguration: the victim typed, say,
``smtpverizon.net`` instead of ``smtp.verizon.net`` in their mail client,
so *everything they send* goes to the squatter until they notice.  The
paper's empirical shape, which this generator reproduces:

* events are rare and bursty (Figure 4's sparse spikes vs. Figure 3's
  near-constant receiver stream);
* 70% of victims send exactly one email (persistence zero);
* 83% of mistakes last under a day, 90% under a week, with a long tail
  out to ~209 days;
* 90% of victims send four or fewer emails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.targets import StudyCorpus
from repro.core.taxonomy import TypoEmailKind
from repro.smtpsim.message import EmailMessage
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY
from repro.workloads.events import SendRequest
from repro.workloads.textgen import BodyBuilder, PersonaFactory

__all__ = ["SmtpTypoGenerator", "SmtpTypoEvent"]


@dataclass
class SmtpTypoEvent:
    """One victim's misconfiguration episode."""

    victim_address: str
    study_domain: str
    start_day: int
    persistence_days: float      # 0 = single email
    email_count: int


class SmtpTypoGenerator:
    """Generates misconfiguration episodes and their outgoing mail.

    ``events_per_year`` is the corpus-wide rate of *new* victims; the
    per-victim email count and persistence follow the paper's observed
    distributions.
    """

    def __init__(self, corpus: StudyCorpus, rng: SeededRng,
                 events_per_year: float = 160.0,
                 volume_scale: float = 1.0) -> None:
        self._rng = rng
        self._bodies = BodyBuilder(rng.child("bodies"))
        self._personas = PersonaFactory(rng.child("personas"))
        self._domains = [d for d in corpus.by_purpose("smtp")]
        if not self._domains:
            raise ValueError("corpus has no SMTP-purpose domains")
        self._daily_event_rate = events_per_year / 365.0 * volume_scale
        self._active: List[SmtpTypoEvent] = []
        self.completed_events: List[SmtpTypoEvent] = []

    # -- durable state (the study checkpoint's generator payload) ------------

    def state_dict(self) -> Dict:
        """Mid-window mutable state: active and completed episodes."""
        def encode(event: SmtpTypoEvent) -> Dict:
            return {"victim_address": event.victim_address,
                    "study_domain": event.study_domain,
                    "start_day": event.start_day,
                    "persistence_days": event.persistence_days,
                    "email_count": event.email_count}

        return {"active": [encode(e) for e in self._active],
                "completed": [encode(e) for e in self.completed_events]}

    def restore_state(self, data: Dict) -> None:
        self._active = [SmtpTypoEvent(**entry) for entry in data["active"]]
        self.completed_events = [SmtpTypoEvent(**entry)
                                 for entry in data["completed"]]

    # -- the paper's persistence distribution ---------------------------------

    def _draw_event(self, day: int) -> SmtpTypoEvent:
        rng = self._rng
        domain = rng.choice(self._domains)
        # ISP users: victim believes they configured their ISP's SMTP host
        victim = self._personas.make(domain.target)

        roll = rng.random()
        if roll < 0.70:
            persistence = 0.0
            count = 1
        elif roll < 0.83:
            persistence = rng.uniform(0.05, 1.0)       # under a day
            count = rng.randint(2, 4)
        elif roll < 0.90:
            persistence = rng.uniform(1.0, 7.0)        # under a week
            count = rng.randint(2, 12)
        else:
            # the long tail: a misconfigured client quietly leaking all
            # outgoing mail for weeks (the paper saw up to 209 days) —
            # these heavy senders are what frequency filtering swallows
            persistence = min(209.0, rng.lognormal(3.0, 1.0))
            count = rng.randint(10, 90)

        return SmtpTypoEvent(
            victim_address=victim.email,
            study_domain=domain.domain,
            start_day=day,
            persistence_days=persistence,
            email_count=count,
        )

    # -- generation -----------------------------------------------------------

    def emails_for_day(self, day: int) -> List[SendRequest]:
        """New victim episodes plus mail from episodes still active."""
        rng = self._rng
        for _ in range(rng.poisson(self._daily_event_rate)):
            event = self._draw_event(day)
            self._active.append(event)

        out: List[SendRequest] = []
        still_active: List[SmtpTypoEvent] = []
        for event in self._active:
            end_day = event.start_day + event.persistence_days
            if day > end_day and event.email_count <= 0:
                self.completed_events.append(event)
                continue
            emails_today = self._emails_today(event, day)
            for _ in range(emails_today):
                out.append(self._one_email(day, event))
                event.email_count -= 1
            if event.email_count > 0 and day <= end_day:
                still_active.append(event)
            else:
                self.completed_events.append(event)
        self._active = still_active
        return out

    def _emails_today(self, event: SmtpTypoEvent, day: int) -> int:
        if event.email_count <= 0:
            return 0
        if event.persistence_days == 0.0:
            return event.email_count if day == event.start_day else 0
        remaining_days = max(1.0, event.start_day + event.persistence_days - day)
        expected = event.email_count / remaining_days
        return min(event.email_count, self._rng.poisson(expected))

    def _one_email(self, day: int, event: SmtpTypoEvent) -> SendRequest:
        """Mail the victim *meant to send to a third party* — the squatter
        sees it only because the victim's client connected to its IP."""
        rng = self._rng
        correspondent = self._personas.make(
            rng.choice(("gmail.example", "outlook.example", "corporate.example")))
        victim_name = event.victim_address.split("@")[0].split(".")[0]
        body = self._bodies.body(sentences=rng.randint(2, 4),
                                 recipient_name=correspondent.first_name,
                                 closing_name=victim_name)
        message = EmailMessage.create(
            from_addr=event.victim_address,
            to_addr=correspondent.email,
            subject=self._bodies.subject(),
            body=body,
        )
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(
            timestamp=timestamp,
            message=message,
            recipient=correspondent.email,
            true_kind=TypoEmailKind.SMTP,
            study_domain=event.study_domain,
            smtp_port=rng.choice((25, 465, 587)),
        )
