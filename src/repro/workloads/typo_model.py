"""The typing-mistake model: Pt and Pc (paper Section 6.1).

The paper's projection model is

    E_ij = E_i * Pt_ij * (1 - Pc_ij)

where ``E_i`` is the yearly email volume destined for target domain ``i``,
``Pt_ij`` the probability of typing typo ``j`` instead of ``i``, and
``Pc_ij`` the probability the user notices and corrects the mistake before
sending.  The paper cannot observe Pt/Pc directly; here they are the
*ground truth* of the simulated world — the traffic generator draws from
them, and the regression experiment (Section 6) must recover the resulting
volumes from features, exactly as the paper's regression does.

The model encodes the paper's three empirical findings:

* deletion and transposition mistakes are more frequent than addition and
  substitution (Figure 9);
* fat-finger (adjacent-key) substitutions/insertions are far more likely
  than random ones;
* visually obvious mistakes get corrected (high Pc), nearly invisible
  ones (``outlo0k``) slip through — "visual distance seems more important
  than keyboard distance".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.targets import TargetDomain
from repro.core.typogen import TypoCandidate, TypoGenerator

__all__ = ["TypoModelConfig", "TypingMistakeModel", "calibrate_global_volume"]


@dataclass(frozen=True)
class TypoModelConfig:
    """Knobs of the generative typing model."""

    #: probability that a typed domain name contains some uncorrected-at-
    #: keystroke-time mistake (before the verification step).
    base_typo_probability: float = 0.004

    #: relative frequency of mistake types (Figure 9 ordering: deletion and
    #: transposition dominate).
    #: Figure 9 spans roughly an order of magnitude between deletion and
    #: addition mistakes on Alexa's popularity estimates.
    edit_type_weights: Mapping[str, float] = field(default_factory=lambda: {
        "deletion": 3.5,
        "transposition": 3.0,
        "substitution": 0.9,
        "addition": 0.35,
    })

    #: multiplier for substitutions/additions of QWERTY-adjacent keys.
    fat_finger_multiplier: float = 4.0

    #: correction probability floor/ceiling as visual distance grows.
    correction_floor: float = 0.45
    correction_ceiling: float = 0.995
    #: how fast Pc saturates with normalised visual distance.
    correction_steepness: float = 14.0


class TypingMistakeModel:
    """Computes Pt, Pc, and expected typo-email volume per candidate."""

    def __init__(self, config: Optional[TypoModelConfig] = None,
                 generator: Optional[TypoGenerator] = None) -> None:
        self.config = config or TypoModelConfig()
        self._generator = generator or TypoGenerator()
        self._weight_totals: Dict[str, float] = {}

    # -- raw weights -----------------------------------------------------------

    def _raw_weight(self, candidate: TypoCandidate) -> float:
        weight = self.config.edit_type_weights.get(candidate.edit_type, 1.0)
        if candidate.edit_type in ("substitution", "addition") \
                and candidate.is_fat_finger:
            weight *= self.config.fat_finger_multiplier
        return weight

    def _total_weight(self, target: str) -> float:
        cached = self._weight_totals.get(target)
        if cached is not None:
            return cached
        total = sum(self._raw_weight(c) for c in self._generator.generate(target))
        self._weight_totals[target] = total
        return total

    # -- the model -------------------------------------------------------------

    def mistype_probability(self, candidate: TypoCandidate) -> float:
        """Pt_ij: probability of typing this candidate instead of the target."""
        total = self._total_weight(candidate.target)
        if total == 0:
            return 0.0
        share = self._raw_weight(candidate) / total
        return self.config.base_typo_probability * share

    def correction_probability(self, candidate: TypoCandidate) -> float:
        """Pc_ij: probability the user notices before hitting send.

        A saturating exponential in normalised visual distance: invisible
        edits sit at the floor, clearly visible ones at the ceiling.
        """
        config = self.config
        visibility = 1.0 - math.exp(
            -config.correction_steepness * candidate.normalized_visual)
        return (config.correction_floor
                + (config.correction_ceiling - config.correction_floor)
                * visibility)

    def expected_yearly_emails(self, target_yearly_volume: float,
                               candidate: TypoCandidate) -> float:
        """E_ij = E_i * Pt * (1 - Pc)."""
        pt = self.mistype_probability(candidate)
        pc = self.correction_probability(candidate)
        return target_yearly_volume * pt * (1.0 - pc)


def calibrate_global_volume(candidates: Iterable[TypoCandidate],
                            targets: Mapping[str, TargetDomain],
                            model: TypingMistakeModel,
                            desired_total_yearly: float,
                            global_volume_guess: float = 1e9) -> float:
    """Find the global email volume that makes the corpus receive
    ``desired_total_yearly`` true typo emails per year.

    ``E_i = global_volume * email_share_i``; expected corpus volume is
    linear in the global volume, so calibration is a single rescale.
    """
    expected = 0.0
    for candidate in candidates:
        target = targets.get(candidate.target)
        if target is None:
            continue
        yearly = global_volume_guess * target.email_share
        expected += model.expected_yearly_emails(yearly, candidate)
    if expected <= 0:
        raise ValueError("corpus has zero expected volume; cannot calibrate")
    return global_volume_guess * desired_total_yearly / expected
