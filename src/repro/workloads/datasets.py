"""Labelled spam datasets for the SpamAssassin evaluation (Table 3).

The paper evaluated SpamAssassin (local mode, default thresholds) on four
public corpora — TREC, CSDMC 2010, the SpamAssassin corpus, and the
Untroubled spam archive — finding high precision but recall between 0.23
and 0.87.  We synthesise four corpora with the same *difficulty profile*:
each dataset mixes obvious spam (trips several rules), stealthy spam
(benign-looking prose, slips through), and ham with a small rate of
marketing-flavoured messages that can false-positive.  Untroubled is
spam-only (no precision can be computed, as in the paper's Table 3) and
skews heavily stealthy, reproducing the 0.23 recall of a modern,
adversarial archive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.pipeline.tokenizer import TokenizedEmail, tokenize
from repro.smtpsim.message import EmailMessage
from repro.spamfilter.spamassassin import SpamAssassinScorer
from repro.util.rand import SeededRng
from repro.util.stats import BinaryClassificationScores, score_binary
from repro.workloads.textgen import BodyBuilder, PersonaFactory

__all__ = ["DatasetProfile", "LabeledDataset", "build_dataset",
           "DATASET_PROFILES", "evaluate_spamassassin"]


@dataclass(frozen=True)
class DatasetProfile:
    """Difficulty profile of one synthetic corpus."""

    name: str
    ham_fraction: float          # 0 for a spam-only archive
    spam_obvious_fraction: float # fraction of spam that trips Layer-2 rules
    ham_marketing_rate: float    # ham that flirts with spam phrasing


#: Profiles tuned to land near the paper's Table 3 rows.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "trec": DatasetProfile("trec", ham_fraction=0.5,
                           spam_obvious_fraction=0.79,
                           ham_marketing_rate=0.018),
    "csdmc": DatasetProfile("csdmc", ham_fraction=0.5,
                            spam_obvious_fraction=0.87,
                            ham_marketing_rate=0.020),
    "spamassassin": DatasetProfile("spamassassin", ham_fraction=0.5,
                                   spam_obvious_fraction=0.84,
                                   ham_marketing_rate=0.028),
    "untroubled": DatasetProfile("untroubled", ham_fraction=0.0,
                                 spam_obvious_fraction=0.23,
                                 ham_marketing_rate=0.0),
}

_OBVIOUS_BODIES = (
    "dear friend you have won $2,000,000 in the lottery. claim your prize "
    "now, act now! http://{h}/a http://{h}/b http://{h}/c",
    "online pharmacy viagra cialis cheap meds 100% free order now "
    "http://{h}/shop",
    "verify your account: unusual activity. confirm your password at "
    "http://{h}/login immediately",
    "make money fast! work from home, wire transfer weekly, risk free "
    "limited time offer http://{h}/go",
)

_MARKETING_HAM_BODIES = (
    # legitimate but promotional: enough signal to occasionally cross 5.0
    "our spring sale is a limited time offer! click here and order now "
    "http://{h}/sale http://{h}/new http://{h}/cat",
    "WINTER CLEARANCE EVENT!!! everything must go, act now and save big "
    "at http://{h}/clearance",
)


@dataclass
class LabeledDataset:
    """Emails with spam/ham ground truth."""

    name: str
    emails: List[TokenizedEmail]
    labels: List[bool]  # True = spam

    def __len__(self) -> int:
        return len(self.emails)

    @property
    def spam_count(self) -> int:
        return sum(self.labels)


def build_dataset(profile: DatasetProfile, size: int,
                  rng: SeededRng) -> LabeledDataset:
    """Synthesise one labelled corpus following ``profile``."""
    bodies = BodyBuilder(rng.child("bodies"))
    personas = PersonaFactory(rng.child("personas"))
    emails: List[TokenizedEmail] = []
    labels: List[bool] = []

    for _ in range(size):
        if rng.bernoulli(profile.ham_fraction):
            emails.append(_ham_email(rng, bodies, personas,
                                     profile.ham_marketing_rate))
            labels.append(False)
        else:
            emails.append(_spam_email(rng, bodies,
                                      profile.spam_obvious_fraction))
            labels.append(True)
    return LabeledDataset(name=profile.name, emails=emails, labels=labels)


def _ham_email(rng: SeededRng, bodies: BodyBuilder,
               personas: PersonaFactory, marketing_rate: float) -> TokenizedEmail:
    sender = personas.make("colleague.example")
    recipient = personas.make("workplace.example")
    if rng.bernoulli(marketing_rate):
        host = f"{rng.token(6)}.example"
        body = rng.choice(_MARKETING_HAM_BODIES).format(h=host)
        subject = "newsletter: seasonal savings"
    else:
        body = bodies.body(sentences=rng.randint(2, 5),
                           recipient_name=recipient.first_name,
                           closing_name=sender.first_name)
        subject = bodies.subject()
    message = EmailMessage.create(sender.full_address, recipient.email,
                                  subject, body)
    return tokenize(message)


def _spam_email(rng: SeededRng, bodies: BodyBuilder,
                obvious_fraction: float) -> TokenizedEmail:
    host = f"{rng.token(8)}.{rng.choice(('top', 'click', 'xyz'))}"
    if rng.bernoulli(obvious_fraction):
        body = rng.choice(_OBVIOUS_BODIES).format(h=host)
        subject = rng.choice(("YOU HAVE WON!!!", "claim your prize",
                              "URGENT RESPONSE NEEDED"))
        sender = f"{rng.token(5)}{rng.randint(100, 99999)}@{host}"
    else:
        # stealth spam: indistinguishable prose, ordinary-looking sender
        body = bodies.body(sentences=rng.randint(2, 4))
        subject = bodies.subject()
        sender = f"{rng.token(7)}@{rng.token(6)}.example"
    message = EmailMessage.create(sender, f"{rng.token(6)}@victim.example",
                                  subject, body)
    return tokenize(message)


def evaluate_spamassassin(dataset: LabeledDataset,
                          scorer: Optional[SpamAssassinScorer] = None
                          ) -> BinaryClassificationScores:
    """Precision/recall of the Layer-2 scorer on one dataset (Table 3 row)."""
    scorer = scorer or SpamAssassinScorer()
    predicted = [scorer.is_spam(email) for email in dataset.emails]
    return score_binary(predicted, dataset.labels)
