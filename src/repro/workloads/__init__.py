"""Synthetic workload generation: typo traffic, spam, and labelled corpora."""

from repro.workloads.corpus import (
    EnronLikeCorpus,
    LabeledEmail,
    LabeledEntity,
    evaluate_scrubber,
)
from repro.workloads.datasets import (
    DATASET_PROFILES,
    DatasetProfile,
    LabeledDataset,
    build_dataset,
    evaluate_spamassassin,
)
from repro.workloads.events import SendRequest
from repro.workloads.hamgen import ATTACHMENT_EXTENSION_WEIGHTS, ReceiverTypoGenerator
from repro.workloads.reflection import ReflectionTypoGenerator
from repro.workloads.smtp_typo import SmtpTypoEvent, SmtpTypoGenerator
from repro.workloads.spamgen import SpamCampaign, SpamConfig, SpamGenerator
from repro.workloads.textgen import BodyBuilder, Persona, PersonaFactory
from repro.workloads.typo_model import (
    TypingMistakeModel,
    TypoModelConfig,
    calibrate_global_volume,
)

__all__ = [
    "SendRequest",
    "ReceiverTypoGenerator",
    "ATTACHMENT_EXTENSION_WEIGHTS",
    "ReflectionTypoGenerator",
    "SmtpTypoGenerator",
    "SmtpTypoEvent",
    "SpamGenerator",
    "SpamConfig",
    "SpamCampaign",
    "TypingMistakeModel",
    "TypoModelConfig",
    "calibrate_global_volume",
    "EnronLikeCorpus",
    "LabeledEmail",
    "LabeledEntity",
    "evaluate_scrubber",
    "DatasetProfile",
    "LabeledDataset",
    "DATASET_PROFILES",
    "build_dataset",
    "evaluate_spamassassin",
    "BodyBuilder",
    "Persona",
    "PersonaFactory",
]
