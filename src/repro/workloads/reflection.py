"""Reflection-typo email generation (paper Section 3, "reflection typos").

A reflection typo starts with a victim mistyping *their own* address when
registering with an online service; the service then mails the mistyped
address — our typo domain — forever after.  The traffic is automated
(newsletters, receipts, notifications) and carries the machine fingerprints
that funnel Layer 4 keys on: List-Unsubscribe headers, bounce senders,
unsubscribe footers.

The generator also reproduces the paper's ``zohomil.com`` anecdote: one
mistyped address published in job postings attracts a steady stream of
CVs — which are *human* mail and sail through Layer 4 as true typos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.targets import StudyCorpus
from repro.core.taxonomy import TypoEmailKind
from repro.smtpsim.message import Attachment, EmailMessage
from repro.util.rand import SeededRng
from repro.util.simtime import SECONDS_PER_DAY
from repro.workloads.events import SendRequest
from repro.workloads.textgen import BodyBuilder, PersonaFactory, make_attachment_payload

__all__ = ["ReflectionTypoGenerator"]

_SERVICES = (
    ("news-weekly.example", "Your weekly digest"),
    ("shop-deals.example", "Order confirmation"),
    ("travel-fares.example", "Fare alert"),
    ("forum-hub.example", "New replies to your thread"),
    ("fitness-app.example", "Your activity summary"),
    ("raffle-site.example", "Entry received"),
)

_UNSUBSCRIBE_FOOTERS = (
    "to unsubscribe from these emails click the link below",
    "you are receiving this because you signed up at our site",
    "manage your preferences or remove yourself from this list",
)


@dataclass
class _SignupTypo:
    """One victim's mistyped signup: a service keeps mailing the address."""

    service_domain: str
    subject_base: str
    victim_address: str     # the mistyped address at our typo domain
    daily_rate: float       # service emails per day to this address


class ReflectionTypoGenerator:
    """Automated service mail to mistyped signup addresses.

    ``signups_per_domain`` controls how many standing subscriptions each
    reflection-purpose study domain accumulates; a disposable-mail typo
    domain sees many (its whole user base registers with throwaway
    addresses), which is why the paper targeted 10MinuteMail/YOPmail
    typos for this mistake class.
    """

    def __init__(self, corpus: StudyCorpus, rng: SeededRng,
                 signups_per_domain: int = 6,
                 volume_scale: float = 1.0,
                 job_posting_domain: Optional[str] = "zohomil.com",
                 job_posting_daily_rate: float = 1.2) -> None:
        self._rng = rng
        self._bodies = BodyBuilder(rng.child("bodies"))
        self._personas = PersonaFactory(rng.child("personas"))
        self._volume_scale = volume_scale
        self._signups: List[_SignupTypo] = []

        reflection_domains = [d.domain for d in corpus.by_purpose("reflection")]
        # provider typo domains also collect some reflections (signup typos
        # happen with any provider, just less often)
        receiver_domains = [d.domain for d in corpus.by_purpose("receiver")]

        for domain in reflection_domains:
            self._add_signups(domain, signups_per_domain)
        for domain in receiver_domains:
            if rng.bernoulli(0.35):
                self._add_signups(domain, 1)

        # residual promo lists from a previous life (paper §4.3: some
        # study domains "might have also been previously registered, and
        # could still appear in certain promotional lists") — old
        # addresses at the domain keep receiving newsletters
        for registered in corpus.domains:
            if registered.previously_registered:
                self._add_signups(registered.domain, 2)

        self._job_posting_address: Optional[str] = None
        self._job_posting_rate = job_posting_daily_rate * volume_scale
        if job_posting_domain and corpus.lookup(job_posting_domain):
            persona = self._personas.make(job_posting_domain)
            self._job_posting_address = persona.email

    def _add_signups(self, domain: str, count: int) -> None:
        for _ in range(count):
            service, subject = self._rng.choice(_SERVICES)
            persona = self._personas.make(domain)
            self._signups.append(_SignupTypo(
                service_domain=service,
                subject_base=subject,
                victim_address=persona.email,
                daily_rate=self._rng.uniform(0.05, 0.5) * self._volume_scale,
            ))

    @property
    def standing_signups(self) -> int:
        return len(self._signups)

    # -- generation -------------------------------------------------------------

    def emails_for_day(self, day: int) -> List[SendRequest]:
        """The day's reflection traffic: service mail plus CV stream."""
        out: List[SendRequest] = []
        for signup in self._signups:
            count = self._rng.poisson(signup.daily_rate)
            for _ in range(count):
                out.append(self._service_email(day, signup))
        if self._job_posting_address is not None:
            for _ in range(self._rng.poisson(self._job_posting_rate)):
                out.append(self._job_application(day))
        return out

    def _service_email(self, day: int, signup: _SignupTypo) -> SendRequest:
        rng = self._rng
        domain = signup.victim_address.rpartition("@")[2]
        body = "\n".join([
            self._bodies.sentence("work"),
            rng.choice(_UNSUBSCRIBE_FOOTERS),
        ])
        message = EmailMessage.create(
            from_addr=f"noreply@{signup.service_domain}",
            to_addr=signup.victim_address,
            subject=f"{signup.subject_base} #{rng.randint(100, 999)}",
            body=body,
            extra_headers={
                "List-Unsubscribe": f"<mailto:unsub@{signup.service_domain}>",
                "Return-Path": f"bounce-{rng.token(8)}@{signup.service_domain}",
            },
        )
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(
            timestamp=timestamp,
            message=message,
            recipient=signup.victim_address,
            true_kind=TypoEmailKind.REFLECTION,
            study_domain=domain,
        )

    def _job_application(self, day: int) -> SendRequest:
        """A CV sent by a human to the mistyped address in a job posting.

        Human-authored, so it should pass Layer 4 — the paper observed
        these as a "nasty variant" of reflection typos that look like
        perfectly legitimate mail.
        """
        rng = self._rng
        applicant = self._personas.make(
            rng.choice(("gmail.example", "outlook.example", "mail.example")))
        domain = self._job_posting_address.rpartition("@")[2]
        body = self._bodies.body(topic="jobsearch", sentences=3,
                                 recipient_name="hiring team",
                                 closing_name=applicant.display_name)
        cv_text = self._bodies.body(topic="jobsearch", sentences=4)
        attachment = Attachment(
            f"cv_{applicant.last_name}.pdf",
            make_attachment_payload("pdf", cv_text))
        message = EmailMessage.create(
            from_addr=applicant.full_address,
            to_addr=self._job_posting_address,
            subject=f"application for the {rng.choice(('analyst', 'engineer', 'designer'))} position",
            body=body,
            attachments=[attachment],
        )
        timestamp = day * SECONDS_PER_DAY + rng.uniform(0, SECONDS_PER_DAY)
        return SendRequest(
            timestamp=timestamp,
            message=message,
            recipient=self._job_posting_address,
            true_kind=TypoEmailKind.REFLECTION,
            study_domain=domain,
        )
