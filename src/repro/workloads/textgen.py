"""Synthetic text generation for email bodies, names, and attachments.

All workload generators build their content here so that vocabulary
control lives in one place: ham must *not* accidentally contain the
phrases the SpamAssassin layer keys on, spam must contain them with a
configurable probability, and sensitive identifiers are planted with
ground-truth labels for the Table 2 evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.rand import SeededRng

__all__ = ["PersonaFactory", "Persona", "BodyBuilder", "make_attachment_payload"]

FIRST_NAMES = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "daniel",
    "nancy", "matthew", "lisa", "anthony", "betty", "mark", "margaret",
    "donald", "sandra", "steven", "ashley", "paul", "kimberly", "andrew",
    "emily", "joshua", "donna", "kenneth", "michelle",
)

LAST_NAMES = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
)

#: Benign vocabulary: none of these words appear in the SA phrase lists.
_TOPIC_WORDS: Dict[str, Sequence[str]] = {
    "work": ("meeting", "deadline", "quarterly", "report", "slides",
             "project", "review", "budget", "agenda", "notes", "deck",
             "standup", "sprint", "roadmap", "hire", "interview"),
    "family": ("dinner", "weekend", "birthday", "kids", "vacation",
               "grandma", "photos", "recipe", "garden", "barbecue",
               "holidays", "graduation", "soccer", "school"),
    "travel": ("flight", "hotel", "itinerary", "reservation", "airport",
               "luggage", "passport", "rooms", "checkin", "conference",
               "taxi", "train", "departure"),
    "finance": ("invoice", "statement", "payment", "balance", "mortgage",
                "lease", "insurance", "premium", "deductible", "quote",
                "closing", "escrow", "appraisal"),
    "health": ("appointment", "prescription", "checkup", "clinic",
               "referral", "results", "therapy", "dentist", "allergy"),
    "jobsearch": ("resume", "cover", "letter", "position", "opening",
                  "recruiter", "salary", "reference", "portfolio"),
}

_SENTENCE_TEMPLATES = (
    "hi {name}, quick note about the {w1} and the {w2}.",
    "can we talk about the {w1} before the {w2} on {day}?",
    "i attached the {w1} you asked for, let me know about the {w2}.",
    "thanks for sending the {w1}, the {w2} looks good to me.",
    "just a reminder that the {w1} is scheduled after the {w2}.",
    "sorry for the delay, the {w1} took longer than the {w2}.",
    "see you at the {w1}; bring the {w2} if you can.",
    "the {w1} went well, though we still owe them the {w2}.",
    "could you double check the {w1} against last month's {w2}?",
    "my flight lands early so the {w1} before the {w2} works.",
)

_WEEKDAYS = ("monday", "tuesday", "wednesday", "thursday", "friday")


@dataclass(frozen=True)
class Persona:
    """A synthetic user with a stable identity."""

    first_name: str
    last_name: str
    email: str

    @property
    def display_name(self) -> str:
        return f"{self.first_name.title()} {self.last_name.title()}"

    @property
    def full_address(self) -> str:
        return f"{self.display_name} <{self.email}>"


class PersonaFactory:
    """Mints personas deterministically from a seeded RNG."""

    def __init__(self, rng: SeededRng) -> None:
        self._rng = rng
        self._counter = 0

    def make(self, domain: str, style: Optional[str] = None) -> Persona:
        """A persona with a mailbox at ``domain``.

        ``style`` controls the local part: "firstlast" (default),
        "initials", or "numbered" — matching the mix of address shapes a
        real provider hosts.
        """
        first = self._rng.choice(FIRST_NAMES)
        last = self._rng.choice(LAST_NAMES)
        self._counter += 1
        style = style or self._rng.choice(("firstlast", "firstlast",
                                           "initials", "numbered"))
        if style == "firstlast":
            sep = self._rng.choice((".", "_", ""))
            local = f"{first}{sep}{last}"
        elif style == "initials":
            local = f"{first[0]}{last}{self._rng.randint(1, 99)}"
        else:
            local = f"{first}{self._rng.randint(1950, 2005)}"
        return Persona(first, last, f"{local}@{domain}")


class BodyBuilder:
    """Builds benign prose bodies on a topic."""

    def __init__(self, rng: SeededRng) -> None:
        self._rng = rng

    def topics(self) -> List[str]:
        """The available benign conversation topics."""
        return sorted(_TOPIC_WORDS)

    def sentence(self, topic: str, name: str = "there") -> str:
        """One templated sentence on ``topic``."""
        words = _TOPIC_WORDS[topic]
        template = self._rng.choice(_SENTENCE_TEMPLATES)
        return template.format(
            name=name,
            w1=self._rng.choice(words),
            w2=self._rng.choice(words),
            day=self._rng.choice(_WEEKDAYS),
        )

    def body(self, topic: Optional[str] = None, sentences: int = 3,
             recipient_name: str = "there",
             closing_name: str = "me") -> str:
        """A multi-sentence benign body with a signature line."""
        topic = topic or self._rng.choice(self.topics())
        lines = [self.sentence(topic, recipient_name)
                 for _ in range(max(1, sentences))]
        lines.append(f"thanks, {closing_name}")
        return "\n".join(lines)

    def subject(self, topic: Optional[str] = None) -> str:
        """A short subject line on ``topic`` (random topic if None)."""
        topic = topic or self._rng.choice(self.topics())
        words = _TOPIC_WORDS[topic]
        return f"{self._rng.choice(words)} {self._rng.choice(words)}"


def make_attachment_payload(extension: str, text: str) -> bytes:
    """Wrap ``text`` in the simulated container for ``extension``.

    The containers match what :mod:`repro.pipeline.extraction` opens, so
    planted content round-trips through the pipeline.
    """
    if extension in ("pdf",):
        return f"%PDF-SIM\n{text}".encode("utf-8")
    if extension in ("docx", "docm", "doc", "pptx"):
        paragraphs = "".join(f"<w:t>{line}</w:t>"
                             for line in text.split("\n"))
        return f"PK-OOXML\n{paragraphs}".encode("utf-8")
    if extension in ("xls", "xlsx", "xlsm"):
        cells = "\n".join(f"A{i+1}={line}"
                          for i, line in enumerate(text.split("\n")))
        return f"XLS-SIM\n{cells}".encode("utf-8")
    if extension in ("jpg", "jpeg", "png", "gif"):
        if text:
            return f"BINIMG OCR:{text}".encode("utf-8")
        return b"BINIMG \x00\x01pixels"
    if extension in ("zip", "rar"):
        return b"PK\x03\x04 opaque archive"
    # txt, html, xml, ics, rtf and anything else: text as-is
    return text.encode("utf-8")
