"""What correlates with a typo domain's haul (paper §4.4.2).

The paper: "We only found a statistically significant correlation between
the popularity of the target domain and the number of reflection and
receiver typo [emails] received.  This is not surprising since the
popularity of the target domain outweighs the other attributes" — visual
and keyboard distance matter, but only show up once popularity is
controlled for (which is the regression's job in §6).

This module computes Spearman rank correlations, with p-values, between
per-domain measured volume and each candidate feature, plus the partial
(within-target) effect of visual distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.targets import StudyCorpus

__all__ = ["FeatureCorrelation", "volume_feature_correlations",
           "within_target_visual_effect"]


@dataclass(frozen=True)
class FeatureCorrelation:
    """Spearman correlation of one feature against measured volume."""

    feature: str
    rho: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def _spearman(xs: Sequence[float], ys: Sequence[float]
              ) -> Tuple[float, float]:
    from scipy import stats

    rho, p_value = stats.spearmanr(xs, ys)
    if math.isnan(rho):
        return 0.0, 1.0
    return float(rho), float(p_value)


def volume_feature_correlations(per_domain_yearly: Mapping[str, float],
                                corpus: StudyCorpus
                                ) -> List[FeatureCorrelation]:
    """Correlate measured per-domain volume with the candidate features.

    Features per domain: target popularity (email share), negative Alexa
    rank, normalised visual distance, and the fat-finger indicator.
    Domains without a DL-1 annotation (the missing-dot SMTP names) are
    skipped, as in the paper's per-domain analysis.
    """
    volumes: List[float] = []
    popularity: List[float] = []
    rank: List[float] = []
    visual: List[float] = []
    fat_finger: List[float] = []

    for domain in corpus.domains:
        if domain.candidate is None or domain.target_domain is None:
            continue
        volumes.append(float(per_domain_yearly.get(domain.domain, 0.0)))
        popularity.append(domain.target_domain.email_share)
        rank.append(-float(domain.target_domain.alexa_rank))
        visual.append(domain.candidate.normalized_visual)
        fat_finger.append(1.0 if domain.candidate.is_fat_finger else 0.0)

    n = len(volumes)
    out = []
    for feature, values in (("target_popularity", popularity),
                            ("negative_alexa_rank", rank),
                            ("normalized_visual", visual),
                            ("fat_finger", fat_finger)):
        rho, p_value = _spearman(values, volumes)
        out.append(FeatureCorrelation(feature=feature, rho=rho,
                                      p_value=p_value, n=n))
    return out


def within_target_visual_effect(per_domain_yearly: Mapping[str, float],
                                corpus: StudyCorpus,
                                min_domains_per_target: int = 3
                                ) -> Optional[FeatureCorrelation]:
    """The visual-distance effect once target popularity is held fixed.

    Volumes are rank-normalised *within* each target's typo set before
    pooling, removing the popularity confound; the paper's qualitative
    claim ("visual distance seems more important than keyboard distance")
    predicts a significantly negative correlation here even though the
    raw pooled correlation is washed out.
    """
    by_target: Dict[str, List[Tuple[float, float]]] = {}
    for domain in corpus.domains:
        if domain.candidate is None:
            continue
        volume = float(per_domain_yearly.get(domain.domain, 0.0))
        by_target.setdefault(domain.target, []).append(
            (domain.candidate.normalized_visual, volume))

    visuals: List[float] = []
    relative_volumes: List[float] = []
    for entries in by_target.values():
        if len(entries) < min_domains_per_target:
            continue
        mean_volume = sum(v for _, v in entries) / len(entries)
        if mean_volume <= 0:
            continue
        for visual, volume in entries:
            visuals.append(visual)
            relative_volumes.append(volume / mean_volume)

    if len(visuals) < 5:
        return None
    rho, p_value = _spearman(visuals, relative_volumes)
    return FeatureCorrelation(feature="within_target_visual", rho=rho,
                              p_value=p_value, n=len(visuals))
