"""Per-domain analysis (paper §4.4.2, Figure 5).

The paper's finding: of 27 receiver-typo domains targeting full email
providers, *two* received the majority of all receiver typos and twelve
received 99% — "some typosquatting domains are orders of magnitude better
than others".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.core.targets import StudyCorpus

__all__ = ["DomainVolumeTable", "per_domain_typo_counts", "figure5_curve"]


@dataclass(frozen=True)
class DomainVolumeTable:
    """Receiver-typo counts per study domain, descending."""

    entries: Tuple[Tuple[str, int], ...]   # (domain, count)

    @property
    def total(self) -> int:
        return sum(count for _, count in self.entries)

    def cumulative_shares(self) -> List[float]:
        """Running share of the total, Figure-5 style."""
        total = self.total
        if total == 0:
            return [0.0] * len(self.entries)
        shares = []
        running = 0
        for _, count in self.entries:
            running += count
            shares.append(running / total)
        return shares

    def domains_for_share(self, share: float) -> int:
        """How many top domains jointly reach ``share`` of the volume."""
        for index, cumulative in enumerate(self.cumulative_shares()):
            if cumulative >= share:
                return index + 1
        return len(self.entries)


def per_domain_typo_counts(records: Sequence[CollectedRecord],
                           domains: Sequence[str]) -> DomainVolumeTable:
    """True receiver-typo counts for the given study domains."""
    wanted = {d.lower() for d in domains}
    counts: Dict[str, int] = {d.lower(): 0 for d in domains}
    for record in records:
        if not record.is_true_typo or record.result.kind != "receiver":
            continue
        domain = (record.study_domain or "").lower()
        if domain in wanted:
            counts[domain] += 1
    ordered = sorted(counts.items(), key=lambda kv: -kv[1])
    return DomainVolumeTable(entries=tuple(ordered))


def figure5_curve(records: Sequence[CollectedRecord],
                  corpus: StudyCorpus,
                  exclude_categories: Sequence[str] = ("disposable", "bulk")
                  ) -> DomainVolumeTable:
    """Figure 5's domain set: receiver-purpose domains of *email providers*.

    The paper excludes temporary-address providers and bulk senders from
    the 31 receiver domains, leaving 27.
    """
    excluded = set(exclude_categories)
    domains = []
    for domain in corpus.by_purpose("receiver"):
        target = domain.target_domain
        if target is not None and target.category in excluded:
            continue
        domains.append(domain.domain)
    return per_domain_typo_counts(records, domains)
