"""Per-layer attribution: which funnel layer claimed how much mail.

The paper describes the funnel qualitatively; operationally, the first
question about any filtering cascade is *where the volume goes*.  This
report cross-tabulates layer × candidate-kind over a classified corpus,
giving the §4.3 funnel its missing operator dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.spamfilter.funnel import Verdict

__all__ = ["FunnelLayerReport", "funnel_layer_report"]

_LAYER_LABELS = {
    1: "L1 header sanity",
    2: "L2 spamassassin",
    3: "L3 collaborative",
    4: "L4 reflection",
    5: "L5 frequency",
    None: "survived",
}


@dataclass
class FunnelLayerReport:
    """counts[(layer, kind)] over one classified corpus."""

    counts: Dict[Tuple[Optional[int], str], int] = field(default_factory=dict)
    total: int = 0

    def claimed_by_layer(self, layer: Optional[int]) -> int:
        """Emails (both kinds) claimed at ``layer`` (None = survivors)."""
        return sum(count for (claimed_layer, _), count in self.counts.items()
                   if claimed_layer == layer)

    def survival_rate(self) -> float:
        """Fraction of all mail that survived every layer."""
        if self.total == 0:
            return 0.0
        return self.claimed_by_layer(None) / self.total

    def cumulative_removal(self) -> List[Tuple[str, int, float]]:
        """Funnel rows: (label, claimed, cumulative removed fraction)."""
        out: List[Tuple[str, int, float]] = []
        removed = 0
        for layer in (1, 2, 3, 4, 5):
            claimed = self.claimed_by_layer(layer)
            removed += claimed
            fraction = removed / self.total if self.total else 0.0
            out.append((_LAYER_LABELS[layer], claimed, fraction))
        out.append((_LAYER_LABELS[None], self.claimed_by_layer(None),
                    removed / self.total if self.total else 0.0))
        return out

    def rows(self) -> List[Tuple[str, str, int]]:
        """Sorted (layer label, kind, count) triples."""
        return sorted(
            (_LAYER_LABELS[layer], kind, count)
            for (layer, kind), count in self.counts.items())


def funnel_layer_report(records: Sequence[CollectedRecord]
                        ) -> FunnelLayerReport:
    """Tabulate which layer claimed each record, split by candidate kind."""
    report = FunnelLayerReport()
    for record in records:
        key = (record.result.layer, record.result.kind)
        report.counts[key] = report.counts.get(key, 0) + 1
        report.total += 1
    return report
