"""Analyses over the collected corpus (paper Section 4.4)."""

from repro.analysis.correlates import (
    FeatureCorrelation,
    volume_feature_correlations,
    within_target_visual_effect,
)
from repro.analysis.funnel_report import (
    FunnelLayerReport,
    funnel_layer_report,
)
from repro.analysis.campaigns import (
    CampaignReport,
    SpamCampaignView,
    reconstruct_campaigns,
)
from repro.analysis.attachments import (
    MalwareLookupReport,
    extension_histogram,
    malware_lookup,
)
from repro.analysis.perdomain import (
    DomainVolumeTable,
    figure5_curve,
    per_domain_typo_counts,
)
from repro.analysis.persistence import PersistenceStats, smtp_persistence
from repro.analysis.records import CollectedRecord
from repro.analysis.sensitive_heatmap import SensitiveHeatmap, sensitive_heatmap
from repro.analysis.volume import (
    DailySeries,
    VolumeReport,
    daily_series,
    volume_report,
)

__all__ = [
    "CollectedRecord",
    "DailySeries",
    "VolumeReport",
    "daily_series",
    "volume_report",
    "DomainVolumeTable",
    "per_domain_typo_counts",
    "figure5_curve",
    "PersistenceStats",
    "smtp_persistence",
    "extension_histogram",
    "malware_lookup",
    "MalwareLookupReport",
    "SensitiveHeatmap",
    "sensitive_heatmap",
    "FeatureCorrelation",
    "volume_feature_correlations",
    "within_target_visual_effect",
    "reconstruct_campaigns",
    "CampaignReport",
    "SpamCampaignView",
    "funnel_layer_report",
    "FunnelLayerReport",
]
