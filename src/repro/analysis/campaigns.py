"""Spam-campaign reconstruction from the collected corpus.

The funnel treats spam per-email; this analysis looks at the stream the
way an operator debugging the "overwhelmed infrastructure" problem would:
group spam-classified mail into campaigns by shared sender or shared body,
and characterise the campaign-size distribution.  Two uses inside this
repository: it validates the traffic generator (the recovered campaign
structure must resemble the ground-truth campaign process), and it
explains *why* collaborative and frequency filtering work — most spam
arrives in a few large campaigns.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.spamfilter.funnel import Verdict

__all__ = ["SpamCampaignView", "CampaignReport", "reconstruct_campaigns"]


@dataclass
class SpamCampaignView:
    """One reconstructed campaign: emails sharing a sender or a body."""

    campaign_id: int
    size: int
    senders: Tuple[str, ...]
    first_day: int
    last_day: int
    sample_subject: str

    @property
    def duration_days(self) -> int:
        return self.last_day - self.first_day + 1


@dataclass
class CampaignReport:
    """The reconstructed campaign structure of one run's spam."""

    campaigns: List[SpamCampaignView] = field(default_factory=list)
    singleton_count: int = 0
    spam_total: int = 0

    @property
    def campaign_spam_fraction(self) -> float:
        """Share of spam that arrived as part of a multi-email campaign."""
        if self.spam_total == 0:
            return 0.0
        in_campaigns = sum(c.size for c in self.campaigns)
        return in_campaigns / self.spam_total

    def top_campaigns(self, n: int = 10) -> List[SpamCampaignView]:
        """The n largest campaigns."""
        return sorted(self.campaigns, key=lambda c: -c.size)[:n]


class _UnionFind:
    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def _body_key(body: str) -> str:
    normalised = re.sub(r"\s+", " ", body.strip().lower())
    return hashlib.sha1(normalised.encode("utf-8")).hexdigest()


def reconstruct_campaigns(records: Sequence[CollectedRecord],
                          min_campaign_size: int = 2) -> CampaignReport:
    """Group spam-classified records into campaigns.

    Two spam emails belong to one campaign when they share an envelope
    sender or an identical (whitespace-normalised) body — the same
    signals Layers 3 and 5 exploit, applied transitively via union-find.
    """
    spam = [r for r in records if r.verdict is Verdict.SPAM]
    union = _UnionFind(len(spam))

    by_sender: Dict[str, int] = {}
    by_body: Dict[str, int] = {}
    for index, record in enumerate(spam):
        sender = (record.tokenized.metadata.envelope_from or "").lower()
        if sender:
            anchor = by_sender.setdefault(sender, index)
            union.union(anchor, index)
        body_key = _body_key(record.tokenized.body)
        anchor = by_body.setdefault(body_key, index)
        union.union(anchor, index)

    groups: Dict[int, List[int]] = {}
    for index in range(len(spam)):
        groups.setdefault(union.find(index), []).append(index)

    report = CampaignReport(spam_total=len(spam))
    next_id = 0
    for members in groups.values():
        if len(members) < min_campaign_size:
            report.singleton_count += len(members)
            continue
        member_records = [spam[i] for i in members]
        senders = tuple(sorted({
            (r.tokenized.metadata.envelope_from or "?").lower()
            for r in member_records}))
        days = [r.day for r in member_records]
        report.campaigns.append(SpamCampaignView(
            campaign_id=next_id,
            size=len(members),
            senders=senders,
            first_day=min(days),
            last_day=max(days),
            sample_subject=member_records[0].tokenized.metadata.subject,
        ))
        next_id += 1
    report.campaigns.sort(key=lambda c: -c.size)
    for new_id, campaign in enumerate(report.campaigns):
        campaign.campaign_id = new_id
    return report
