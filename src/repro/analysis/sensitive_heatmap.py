"""Sensitive-information heat map (paper §4.4.3, Figure 6).

Cross-tabulates, over true typo emails only, the sensitive-information
labels the scrubber found against the study domain that received them.
The paper's stand-out cell: typos of a disposable-address provider
(yopmail) collect usernames and passwords, because those addresses get
used for throwaway registrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord

__all__ = ["SensitiveHeatmap", "sensitive_heatmap"]


@dataclass
class SensitiveHeatmap:
    """counts[(domain, label)] -> occurrences among true typos."""

    counts: Dict[Tuple[str, str], int]

    def domains(self) -> List[str]:
        """Domains with at least one sensitive find."""
        return sorted({domain for domain, _ in self.counts})

    def labels(self) -> List[str]:
        """Sensitive labels observed anywhere."""
        return sorted({label for _, label in self.counts})

    def get(self, domain: str, label: str) -> int:
        """One heat-map cell."""
        return self.counts.get((domain.lower(), label), 0)

    def totals_by_label(self) -> Dict[str, int]:
        """Column sums of the heat map."""
        totals: Dict[str, int] = {}
        for (_, label), count in self.counts.items():
            totals[label] = totals.get(label, 0) + count
        return totals

    def totals_by_domain(self) -> Dict[str, int]:
        """Row sums of the heat map."""
        totals: Dict[str, int] = {}
        for (domain, _), count in self.counts.items():
            totals[domain] = totals.get(domain, 0) + count
        return totals

    def rows(self) -> List[Tuple[str, str, int]]:
        """Sorted (domain, label, count) triples."""
        return sorted((domain, label, count)
                      for (domain, label), count in self.counts.items())


def sensitive_heatmap(records: Sequence[CollectedRecord],
                      true_typos_only: bool = True) -> SensitiveHeatmap:
    """Cross-tabulate sensitive labels against receiving domains."""
    counts: Dict[Tuple[str, str], int] = {}
    for record in records:
        if true_typos_only and not record.is_true_typo:
            continue
        if record.processed is None or record.study_domain is None:
            continue
        domain = record.study_domain.lower()
        for label, count in record.processed.sensitive_counts().items():
            key = (domain, label)
            counts[key] = counts.get(key, 0) + count
    return SensitiveHeatmap(counts=counts)
