"""SMTP-typo persistence analysis (paper §4.4.2).

For every sender observed on an SMTP-purpose path, persistence is the
time between their first and last captured email (zero, by convention,
for single-email senders).  The paper's distribution: 70% of victims sent
exactly one email, 83% of mistakes lasted under a day, 90% under a week,
maximum 209 days; 90% of victims sent four or fewer emails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord

__all__ = ["PersistenceStats", "smtp_persistence"]

_DAY = 86_400.0


@dataclass(frozen=True)
class PersistenceStats:
    """Distribution summary over per-sender persistence."""

    sender_count: int
    single_email_fraction: float
    under_one_day_fraction: float
    under_one_week_fraction: float
    max_persistence_days: float
    at_most_four_emails_fraction: float

    def matches_paper_shape(self) -> bool:
        """The qualitative §4.4.2 claims, with generous tolerances."""
        return (self.single_email_fraction > 0.5
                and self.under_one_day_fraction > self.single_email_fraction
                and self.under_one_week_fraction >= self.under_one_day_fraction
                and self.at_most_four_emails_fraction > 0.7)


def smtp_persistence(records: Sequence[CollectedRecord],
                     include_frequency_filtered: bool = False
                     ) -> PersistenceStats:
    """Compute persistence over SMTP-candidate senders.

    By default only unfiltered ("true") SMTP typos count, as in the
    paper's main analysis; ``include_frequency_filtered`` widens to the
    ambiguous band the paper acknowledges may hide real victims.
    """
    by_sender: Dict[str, List[float]] = {}
    for record in records:
        if record.result.kind != "smtp":
            continue
        if not record.is_true_typo and not include_frequency_filtered:
            continue
        sender = record.tokenized.metadata.envelope_from
        if not sender:
            continue
        by_sender.setdefault(sender.lower(), []).append(record.timestamp)

    if not by_sender:
        return PersistenceStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    persistences: List[float] = []
    email_counts: List[int] = []
    for timestamps in by_sender.values():
        email_counts.append(len(timestamps))
        if len(timestamps) == 1:
            persistences.append(0.0)
        else:
            persistences.append((max(timestamps) - min(timestamps)) / _DAY)

    n = len(persistences)
    return PersistenceStats(
        sender_count=n,
        single_email_fraction=sum(1 for c in email_counts if c == 1) / n,
        under_one_day_fraction=sum(1 for p in persistences if p < 1.0) / n,
        under_one_week_fraction=sum(1 for p in persistences if p < 7.0) / n,
        max_persistence_days=max(persistences),
        at_most_four_emails_fraction=sum(1 for c in email_counts if c <= 4) / n,
    )
