"""Attachment analysis (paper §4.4.3, Figure 7 and the VirusTotal check).

Two results: the extension histogram among *true typo* emails (Figure 7),
which differs markedly from the spam mix (spam skews toward exploitable
formats and archives), and the hash lookup against a malware database —
in the paper, 304 of 323 VirusTotal-known hashes were malicious, and
every email carrying one had already been classified as spam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.records import CollectedRecord
from repro.spamfilter.funnel import Verdict

__all__ = ["extension_histogram", "MalwareLookupReport", "malware_lookup"]


def extension_histogram(records: Sequence[CollectedRecord],
                        verdicts: Optional[Sequence[Verdict]] = None
                        ) -> Dict[str, int]:
    """Attachment-extension counts, optionally restricted by verdict.

    ``verdicts=None`` counts everything; Figure 7 uses
    ``[Verdict.TRUE_TYPO]``.
    """
    wanted = set(verdicts) if verdicts is not None else None
    counts: Dict[str, int] = {}
    for record in records:
        if wanted is not None and record.verdict not in wanted:
            continue
        for extension in record.tokenized.attachment_extensions:
            if extension:
                counts[extension] = counts.get(extension, 0) + 1
    return counts


@dataclass(frozen=True)
class MalwareLookupReport:
    """Result of looking up attachment hashes in a malware database."""

    hashes_checked: int
    hashes_known_malicious: int
    malicious_emails_all_spam: bool   # the paper's key safety finding

    @property
    def malicious_fraction(self) -> float:
        if self.hashes_checked == 0:
            return 0.0
        return self.hashes_known_malicious / self.hashes_checked


def malware_lookup(records: Sequence[CollectedRecord],
                   malware_database: Set[str]) -> MalwareLookupReport:
    """Check every attachment hash against the (simulated) VT database.

    Also verifies the paper's finding that every email carrying a known
    malicious attachment was already classified as spam by the funnel.
    """
    seen: Set[str] = set()
    malicious: Set[str] = set()
    all_spam = True
    for record in records:
        for attachment in record.tokenized.attachments:
            digest = attachment.sha256()
            seen.add(digest)
            if digest in malware_database:
                malicious.add(digest)
                if record.verdict is not Verdict.SPAM:
                    all_spam = False
    return MalwareLookupReport(
        hashes_checked=len(seen),
        hashes_known_malicious=len(malicious),
        malicious_emails_all_spam=all_spam,
    )
