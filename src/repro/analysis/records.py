"""The unit of analysis: one collected, classified email."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.taxonomy import TypoEmailKind
from repro.pipeline.processor import ProcessedEmail
from repro.pipeline.tokenizer import TokenizedEmail
from repro.spamfilter.funnel import FilterResult, Verdict

__all__ = ["CollectedRecord"]


@dataclass
class CollectedRecord:
    """One email as it sits in the study's dataset after classification.

    ``study_domain`` is the researchers' attribution (recipient domain for
    receiver candidates, VPS IP for SMTP candidates); ``true_kind`` is the
    simulation's ground truth, which the paper never had — it is used
    only to evaluate the funnel, mirroring the paper's manual sampling.
    """

    tokenized: TokenizedEmail
    result: FilterResult
    study_domain: Optional[str]
    timestamp: float
    true_kind: Optional[TypoEmailKind] = None
    processed: Optional[ProcessedEmail] = None

    @property
    def day(self) -> int:
        return int(self.timestamp // 86_400)

    @property
    def verdict(self) -> Verdict:
        return self.result.verdict

    @property
    def is_true_typo(self) -> bool:
        return self.result.is_true_typo
