"""Email volume analysis (paper §4.4.1, Figures 3 and 4).

Everything is normalised to a full year via the paper's formula
``y = x * 365 / d`` with ``d`` the effective collection days, and split
three ways per figure: spam-filtered, reflection-and-frequency-filtered,
and real email typos — separately for receiver candidates (Figure 3) and
SMTP candidates (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.records import CollectedRecord
from repro.spamfilter.funnel import Verdict
from repro.util.simtime import CollectionWindow

__all__ = ["DailySeries", "VolumeReport", "daily_series", "volume_report",
           "descaled_volume_report"]

FIGURE_CATEGORIES = ("spam_filtered", "reflection_and_frequency_filtered",
                     "real_typos")


@dataclass
class DailySeries:
    """Per-day counts for one figure (3 or 4)."""

    kind: str  # receiver | smtp
    days: List[int]
    categories: Dict[str, List[int]]

    def total(self, category: str) -> int:
        """Sum of one category's daily series."""
        return sum(self.categories[category])

    def active_days(self, category: str) -> int:
        """Number of days with at least one email in the category."""
        return sum(1 for value in self.categories[category] if value > 0)


def daily_series(records: Sequence[CollectedRecord], kind: str,
                 window: CollectionWindow) -> DailySeries:
    """Figure 3 (kind="receiver") or Figure 4 (kind="smtp") series."""
    days = list(range(window.total_days))
    categories = {name: [0] * window.total_days for name in FIGURE_CATEGORIES}
    for record in records:
        if record.result.kind != kind:
            continue
        if not 0 <= record.day < window.total_days:
            continue
        categories[record.verdict.figure_category][record.day] += 1
    return DailySeries(kind=kind, days=days, categories=categories)


@dataclass(frozen=True)
class VolumeReport:
    """The §4.4.1 headline numbers, projected to a year.

    ``raw_survivors_total``/``raw_survivors_spam`` carry the unprojected
    survivor composition: the paper's manual analysis of surviving emails
    found ~20% residual spam, and corrected 7,260 "passed all filters"
    down to 6,041 genuine typos — the same correction this pair allows.
    """

    total_received: float
    receiver_candidates: float
    smtp_candidates: float
    passed_all_filters: float
    true_receiver_reflection: float
    smtp_true_unfiltered: float        # paper: 415/yr
    smtp_frequency_filtered: float     # paper: 5,555/yr (ambiguous band)
    receiver_typos_at_smtp_domains: float
    raw_survivors_total: int = 0
    raw_survivors_spam: int = 0

    def smtp_typo_range(self) -> Tuple[float, float]:
        """The paper's 415–5,970 emails/year band."""
        return (self.smtp_true_unfiltered,
                self.smtp_true_unfiltered + self.smtp_frequency_filtered)

    @property
    def survivor_spam_fraction(self) -> float:
        """Fraction of surviving emails that are actually spam (~0.2 in
        the paper's manual sample)."""
        if self.raw_survivors_total == 0:
            return 0.0
        return self.raw_survivors_spam / self.raw_survivors_total


def volume_report(records: Sequence[CollectedRecord],
                  window: CollectionWindow,
                  smtp_purpose_domains: Sequence[str] = ()) -> VolumeReport:
    """The raw yearly projections over one run's records."""
    smtp_purpose = {d.lower() for d in smtp_purpose_domains}
    project = window.yearly_projection

    total = len(records)
    receiver_candidates = sum(1 for r in records if r.result.kind == "receiver")
    smtp_candidates = total - receiver_candidates
    passed = sum(1 for r in records if r.is_true_typo)
    true_receiver = sum(1 for r in records
                        if r.is_true_typo and r.result.kind == "receiver")
    smtp_true = sum(1 for r in records
                    if r.is_true_typo and r.result.kind == "smtp")
    smtp_frequency = sum(
        1 for r in records
        if r.result.kind == "smtp" and r.verdict is Verdict.FREQUENCY_FILTERED)
    receiver_at_smtp_domains = sum(
        1 for r in records
        if r.is_true_typo and r.result.kind == "receiver"
        and (r.study_domain or "").lower() in smtp_purpose)

    return VolumeReport(
        total_received=project(total),
        receiver_candidates=project(receiver_candidates),
        smtp_candidates=project(smtp_candidates),
        passed_all_filters=project(passed),
        true_receiver_reflection=project(true_receiver),
        smtp_true_unfiltered=project(smtp_true),
        smtp_frequency_filtered=project(smtp_frequency),
        receiver_typos_at_smtp_domains=project(receiver_at_smtp_domains),
    )


def descaled_volume_report(records: Sequence[CollectedRecord],
                           window: CollectionWindow,
                           ham_scale: float, spam_scale: float,
                           smtp_purpose_domains: Sequence[str] = ()
                           ) -> VolumeReport:
    """Paper-comparable yearly volumes, correcting for simulation scales.

    The simulation runs spam at ``spam_scale`` of real volume and typo
    traffic at ``ham_scale``; each record's *candidate* contribution is
    weighted by the inverse of its ground-truth stream's scale, which
    reproduces the paper's 119M/16M/103M totals.

    Survivor metrics (passed filters, true typos) are computed over
    ground-truth-genuine records only: a single leaked spam email would
    otherwise be inflated by ``1/spam_scale`` into hundreds of thousands
    of phantom yearly survivors, an artifact of subsampling rather than
    of the filtering.  The raw survivor composition — including the
    residual leaked spam, which the paper estimated at ~20% by manual
    analysis — is reported alongside.
    """
    from repro.core.taxonomy import TypoEmailKind

    smtp_purpose = {d.lower() for d in smtp_purpose_domains}
    project = window.yearly_projection

    def candidate_weight(record: CollectedRecord) -> float:
        if record.true_kind is TypoEmailKind.SPAM:
            return 1.0 / spam_scale
        return 1.0 / ham_scale

    def genuine(record: CollectedRecord) -> bool:
        return record.true_kind is not TypoEmailKind.SPAM

    ham_weight = 1.0 / ham_scale
    total = sum(candidate_weight(r) for r in records)
    receiver_candidates = sum(candidate_weight(r) for r in records
                              if r.result.kind == "receiver")
    passed = sum(ham_weight for r in records
                 if r.is_true_typo and genuine(r))
    true_receiver = sum(ham_weight for r in records
                        if r.is_true_typo and genuine(r)
                        and r.result.kind == "receiver")
    smtp_true = sum(ham_weight for r in records
                    if r.is_true_typo and genuine(r)
                    and r.result.kind == "smtp")
    smtp_frequency = sum(
        ham_weight for r in records
        if r.result.kind == "smtp" and genuine(r)
        and r.verdict is Verdict.FREQUENCY_FILTERED)
    receiver_at_smtp = sum(
        ham_weight for r in records
        if r.is_true_typo and genuine(r) and r.result.kind == "receiver"
        and (r.study_domain or "").lower() in smtp_purpose)

    raw_survivors = [r for r in records if r.is_true_typo]
    raw_spam = sum(1 for r in raw_survivors if not genuine(r))

    return VolumeReport(
        total_received=project(total),
        receiver_candidates=project(receiver_candidates),
        smtp_candidates=project(total - receiver_candidates),
        passed_all_filters=project(passed),
        true_receiver_reflection=project(true_receiver),
        smtp_true_unfiltered=project(smtp_true),
        smtp_frequency_filtered=project(smtp_frequency),
        receiver_typos_at_smtp_domains=project(receiver_at_smtp),
        raw_survivors_total=len(raw_survivors),
        raw_survivors_spam=raw_spam,
    )
