"""Runtime fault injection driven by a :class:`~repro.faultsim.plan.FaultPlan`.

The injector is the bridge between a declarative plan and the live
simulation objects: the study runner advances it day by day
(:meth:`StudyFaultInjector.begin_day`), attaches its gates to the VPS
SMTP servers, and wraps the client's resolver with
:class:`FaultyResolver`.

Every probabilistic decision comes from :func:`unit_draw`, a pure hash
of ``(plan seed, stable context strings)`` — no shared RNG stream — so
decisions are independent of evaluation order, worker counts, and how
many other faults fired before them.  The only injector *state* is the
greylist's seen-envelope set, which the serial day loop drives in a
deterministic order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dnssim.resolver import MailRoute, ResolutionStatus, Resolver
from repro.faultsim.plan import FaultPlan
from repro.smtpsim.protocol import SmtpReply
from repro.util.rand import derive_seed

__all__ = ["unit_draw", "FaultStats", "StudyFaultInjector", "FaultyResolver"]

_TWO_64 = float(2 ** 64)


def unit_draw(seed: int, *context: object) -> float:
    """A uniform in [0, 1) that is a pure function of (seed, context).

    Built on the same SHA-256 derivation as :func:`derive_seed`, so the
    draw is stable across Python versions and independent of every other
    draw — the property that makes fault decisions replayable no matter
    the order in which the simulation happens to evaluate them.
    """
    label = "/".join(str(part) for part in context)
    return derive_seed(seed, label) / _TWO_64


@dataclass
class FaultStats:
    """What the injector actually did to one run."""

    outage_tempfails: int = 0
    smtp_tempfails: int = 0
    smtp_drops: int = 0
    greylist_tempfails: int = 0
    dns_servfails: int = 0
    dns_timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "outage_tempfails": self.outage_tempfails,
            "smtp_tempfails": self.smtp_tempfails,
            "smtp_drops": self.smtp_drops,
            "greylist_tempfails": self.greylist_tempfails,
            "dns_servfails": self.dns_servfails,
            "dns_timeouts": self.dns_timeouts,
        }

    @property
    def total_injected(self) -> int:
        return (self.outage_tempfails + self.smtp_tempfails
                + self.smtp_drops + self.greylist_tempfails
                + self.dns_servfails + self.dns_timeouts)


# interned fault replies — every injection site returns one of these
_REPLY_OUTAGE = SmtpReply(
    451, "4.3.2 system not accepting network messages (collection outage)")
_REPLY_TEMPFAIL = SmtpReply(451, "4.7.1 please try again later")
_REPLY_GREYLIST = SmtpReply(451, "4.7.1 greylisted, retry later")
_REPLY_DROP = SmtpReply(421, "4.4.2 connection dropped mid-session")


class StudyFaultInjector:
    """Applies a plan's outage/DNS/SMTP spells to one study run."""

    def __init__(self, plan: FaultPlan, total_days: int) -> None:
        self.plan = plan
        self.total_days = total_days
        self.stats = FaultStats()
        self.current_day = 0
        self._greylist_seen: Set[Tuple[str, str, str]] = set()
        # per-day active-spell caches, refreshed by begin_day
        self._active_smtp = ()
        self._active_dns = ()
        self._vps_outage = False

    # -- the day clock (driven by the runner's serial loop) ------------------

    def begin_day(self, day: int) -> None:
        self.current_day = day
        self._active_smtp = tuple(spell for spell in self.plan.smtp_spells
                                  if spell.covers(day))
        self._active_dns = tuple(spell for spell in self.plan.dns_spells
                                 if spell.covers(day))
        self._vps_outage = any(span.covers(day) and span.mode == "tempfail"
                               for span in self.plan.collector_outages)

    # -- durable state (the study checkpoint's injector payload) -------------

    def state_dict(self) -> Dict:
        """The injector's only mutable state: stats + greylist envelopes.

        The per-day spell caches are recomputed by :meth:`begin_day` and
        need no persistence; the greylist set must survive a resume or
        already-seen envelopes would tempfail a second time.
        """
        return {
            "stats": self.stats.as_dict(),
            "greylist_seen": sorted(list(envelope)
                                    for envelope in self._greylist_seen),
        }

    def restore_state(self, data: Dict) -> None:
        self.stats = FaultStats(**data["stats"])
        self._greylist_seen = {tuple(envelope)
                               for envelope in data["greylist_seen"]}

    def collector_drop(self, day: int) -> bool:
        """Whether the central collector black-holes mail on ``day``."""
        return any(span.covers(day) and span.mode == "drop"
                   for span in self.plan.collector_outages)

    def drop_days(self) -> List[int]:
        """Every day on which a drop-mode outage is scheduled."""
        return sorted({day for span in self.plan.collector_outages
                       if span.mode == "drop"
                       for day in range(span.start_day,
                                        min(span.end_day, self.total_days))})

    # -- SMTP-side injection -------------------------------------------------

    def smtp_fault(self, hostname: str, sender: str, recipient: str,
                   timestamp: float) -> Optional[SmtpReply]:
        """The 4yz/421 reply this attempt suffers, or None to proceed."""
        if self._vps_outage:
            self.stats.outage_tempfails += 1
            return _REPLY_OUTAGE
        for index, spell in enumerate(self._active_smtp):
            if not spell.matches_host(hostname):
                continue
            if spell.greylist:
                envelope = (hostname, sender, recipient)
                if envelope not in self._greylist_seen:
                    self._greylist_seen.add(envelope)
                    self.stats.greylist_tempfails += 1
                    return _REPLY_GREYLIST
            if spell.drop_probability > 0.0 and unit_draw(
                    self.plan.seed, "smtp-drop", index, hostname,
                    repr(timestamp), sender, recipient
            ) < spell.drop_probability:
                self.stats.smtp_drops += 1
                return _REPLY_DROP
            if spell.tempfail_probability > 0.0 and unit_draw(
                    self.plan.seed, "smtp-tempfail", index, hostname,
                    repr(timestamp), sender, recipient
            ) < spell.tempfail_probability:
                self.stats.smtp_tempfails += 1
                return _REPLY_TEMPFAIL
        return None

    def make_gate(self, hostname: str):
        """A :data:`~repro.smtpsim.server.FaultGate` bound to ``hostname``."""

        def gate(session, message, timestamp: float) -> Optional[SmtpReply]:
            sender = session.envelope_from or ""
            recipient = session.envelope_to[0] if session.envelope_to else ""
            return self.smtp_fault(hostname, sender, recipient, timestamp)

        return gate

    # -- DNS-side injection --------------------------------------------------

    def dns_fault(self, domain: str) -> Optional[str]:
        """``"servfail"``/``"timeout"`` for this resolution, or None."""
        for index, spell in enumerate(self._active_dns):
            if not spell.matches_domain(domain):
                continue
            if unit_draw(self.plan.seed, "dns", index, self.current_day,
                         domain) < spell.probability:
                if spell.mode == "timeout":
                    self.stats.dns_timeouts += 1
                else:
                    self.stats.dns_servfails += 1
                return spell.mode
        return None


class FaultyResolver:
    """A resolver decorator that injects the plan's DNS fault spells.

    Duck-types the :class:`~repro.dnssim.resolver.Resolver` surface the
    SMTP client uses; with no spell active for the current day it defers
    verbatim to the wrapped resolver.
    """

    def __init__(self, inner: Resolver,
                 injector: StudyFaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def resolve_a(self, name: str):
        return self._inner.resolve_a(name)

    def resolve_mx(self, name: str):
        return self._inner.resolve_mx(name)

    def mail_route(self, domain: str) -> MailRoute:
        mode = self._injector.dns_fault(domain.lower())
        if mode == "servfail":
            return MailRoute(domain, ResolutionStatus.SERVFAIL)
        if mode == "timeout":
            return MailRoute(domain, ResolutionStatus.TIMEOUT)
        return self._inner.mail_route(domain)
