"""Runtime fault injection driven by a :class:`~repro.faultsim.plan.FaultPlan`.

The injector is the bridge between a declarative plan and the live
simulation objects: the study runner advances it day by day
(:meth:`StudyFaultInjector.begin_day`), attaches its gates to the VPS
SMTP servers, and wraps the client's resolver with
:class:`FaultyResolver`.

Every probabilistic decision comes from :func:`unit_draw`, a pure hash
of ``(plan seed, stable context strings)`` — no shared RNG stream — so
decisions are independent of evaluation order, worker counts, and how
many other faults fired before them.  The only injector *state* is the
greylist's seen-envelope set, which the serial day loop drives in a
deterministic order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dnssim.resolver import MailRoute, ResolutionStatus, Resolver
from repro.faultsim.plan import FaultPlan
from repro.smtpsim.protocol import SmtpReply
from repro.util.rand import derive_seed

__all__ = ["unit_draw", "FaultStats", "StudyFaultInjector", "FaultyResolver",
           "LookupFaults", "ServiceFaultStats", "ServiceFaultInjector",
           "NO_LOOKUP_FAULTS"]

_TWO_64 = float(2 ** 64)


def unit_draw(seed: int, *context: object) -> float:
    """A uniform in [0, 1) that is a pure function of (seed, context).

    Built on the same SHA-256 derivation as :func:`derive_seed`, so the
    draw is stable across Python versions and independent of every other
    draw — the property that makes fault decisions replayable no matter
    the order in which the simulation happens to evaluate them.
    """
    label = "/".join(str(part) for part in context)
    return derive_seed(seed, label) / _TWO_64


@dataclass
class FaultStats:
    """What the injector actually did to one run."""

    outage_tempfails: int = 0
    smtp_tempfails: int = 0
    smtp_drops: int = 0
    greylist_tempfails: int = 0
    dns_servfails: int = 0
    dns_timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "outage_tempfails": self.outage_tempfails,
            "smtp_tempfails": self.smtp_tempfails,
            "smtp_drops": self.smtp_drops,
            "greylist_tempfails": self.greylist_tempfails,
            "dns_servfails": self.dns_servfails,
            "dns_timeouts": self.dns_timeouts,
        }

    @property
    def total_injected(self) -> int:
        return (self.outage_tempfails + self.smtp_tempfails
                + self.smtp_drops + self.greylist_tempfails
                + self.dns_servfails + self.dns_timeouts)


# interned fault replies — every injection site returns one of these
_REPLY_OUTAGE = SmtpReply(
    451, "4.3.2 system not accepting network messages (collection outage)")
_REPLY_TEMPFAIL = SmtpReply(451, "4.7.1 please try again later")
_REPLY_GREYLIST = SmtpReply(451, "4.7.1 greylisted, retry later")
_REPLY_DROP = SmtpReply(421, "4.4.2 connection dropped mid-session")


class StudyFaultInjector:
    """Applies a plan's outage/DNS/SMTP spells to one study run."""

    def __init__(self, plan: FaultPlan, total_days: int) -> None:
        self.plan = plan
        self.total_days = total_days
        self.stats = FaultStats()
        self.current_day = 0
        self._greylist_seen: Set[Tuple[str, str, str]] = set()
        # per-day active-spell caches, refreshed by begin_day
        self._active_smtp = ()
        self._active_dns = ()
        self._vps_outage = False

    # -- the day clock (driven by the runner's serial loop) ------------------

    def begin_day(self, day: int) -> None:
        self.current_day = day
        self._active_smtp = tuple(spell for spell in self.plan.smtp_spells
                                  if spell.covers(day))
        self._active_dns = tuple(spell for spell in self.plan.dns_spells
                                 if spell.covers(day))
        self._vps_outage = any(span.covers(day) and span.mode == "tempfail"
                               for span in self.plan.collector_outages)

    # -- durable state (the study checkpoint's injector payload) -------------

    def state_dict(self) -> Dict:
        """The injector's only mutable state: stats + greylist envelopes.

        The per-day spell caches are recomputed by :meth:`begin_day` and
        need no persistence; the greylist set must survive a resume or
        already-seen envelopes would tempfail a second time.
        """
        return {
            "stats": self.stats.as_dict(),
            "greylist_seen": sorted(list(envelope)
                                    for envelope in self._greylist_seen),
        }

    def restore_state(self, data: Dict) -> None:
        self.stats = FaultStats(**data["stats"])
        self._greylist_seen = {tuple(envelope)
                               for envelope in data["greylist_seen"]}

    def collector_drop(self, day: int) -> bool:
        """Whether the central collector black-holes mail on ``day``."""
        return any(span.covers(day) and span.mode == "drop"
                   for span in self.plan.collector_outages)

    def drop_days(self) -> List[int]:
        """Every day on which a drop-mode outage is scheduled."""
        return sorted({day for span in self.plan.collector_outages
                       if span.mode == "drop"
                       for day in range(span.start_day,
                                        min(span.end_day, self.total_days))})

    # -- SMTP-side injection -------------------------------------------------

    def smtp_fault(self, hostname: str, sender: str, recipient: str,
                   timestamp: float) -> Optional[SmtpReply]:
        """The 4yz/421 reply this attempt suffers, or None to proceed."""
        if self._vps_outage:
            self.stats.outage_tempfails += 1
            return _REPLY_OUTAGE
        for index, spell in enumerate(self._active_smtp):
            if not spell.matches_host(hostname):
                continue
            if spell.greylist:
                envelope = (hostname, sender, recipient)
                if envelope not in self._greylist_seen:
                    self._greylist_seen.add(envelope)
                    self.stats.greylist_tempfails += 1
                    return _REPLY_GREYLIST
            if spell.drop_probability > 0.0 and unit_draw(
                    self.plan.seed, "smtp-drop", index, hostname,
                    repr(timestamp), sender, recipient
            ) < spell.drop_probability:
                self.stats.smtp_drops += 1
                return _REPLY_DROP
            if spell.tempfail_probability > 0.0 and unit_draw(
                    self.plan.seed, "smtp-tempfail", index, hostname,
                    repr(timestamp), sender, recipient
            ) < spell.tempfail_probability:
                self.stats.smtp_tempfails += 1
                return _REPLY_TEMPFAIL
        return None

    def make_gate(self, hostname: str):
        """A :data:`~repro.smtpsim.server.FaultGate` bound to ``hostname``."""

        def gate(session, message, timestamp: float) -> Optional[SmtpReply]:
            sender = session.envelope_from or ""
            recipient = session.envelope_to[0] if session.envelope_to else ""
            return self.smtp_fault(hostname, sender, recipient, timestamp)

        return gate

    # -- DNS-side injection --------------------------------------------------

    def dns_fault(self, domain: str) -> Optional[str]:
        """``"servfail"``/``"timeout"`` for this resolution, or None."""
        for index, spell in enumerate(self._active_dns):
            if not spell.matches_domain(domain):
                continue
            if unit_draw(self.plan.seed, "dns", index, self.current_day,
                         domain) < spell.probability:
                if spell.mode == "timeout":
                    self.stats.dns_timeouts += 1
                else:
                    self.stats.dns_servfails += 1
                return spell.mode
        return None


class FaultyResolver:
    """A resolver decorator that injects the plan's DNS fault spells.

    Duck-types the :class:`~repro.dnssim.resolver.Resolver` surface the
    SMTP client uses; with no spell active for the current day it defers
    verbatim to the wrapped resolver.
    """

    def __init__(self, inner: Resolver,
                 injector: StudyFaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def resolve_a(self, name: str):
        return self._inner.resolve_a(name)

    def resolve_mx(self, name: str):
        return self._inner.resolve_mx(name)

    def mail_route(self, domain: str) -> MailRoute:
        mode = self._injector.dns_fault(domain.lower())
        if mode == "servfail":
            return MailRoute(domain, ResolutionStatus.SERVFAIL)
        if mode == "timeout":
            return MailRoute(domain, ResolutionStatus.TIMEOUT)
        return self._inner.mail_route(domain)


# -- service-lane injection ---------------------------------------------------


@dataclass(frozen=True)
class LookupFaults:
    """Every fault the plan schedules against one served lookup.

    ``stall_ms`` is the virtual scorer stall for this lookup (0.0 when
    none), ``index_error`` marks an injected index-probe failure,
    ``memory_pressure`` forces a verdict-memo shrink, and ``churn_day``
    (when not ``None``) schedules a mid-traffic index hot-swap to that
    churn day at rate ``churn_rate`` before the lookup is answered.
    """

    stall_ms: float = 0.0
    index_error: bool = False
    memory_pressure: bool = False
    churn_day: Optional[int] = None
    churn_rate: float = 0.0

    @property
    def any(self) -> bool:
        return (self.stall_ms > 0.0 or self.index_error
                or self.memory_pressure or self.churn_day is not None)


#: the interned no-fault answer — the empty plan returns this for every
#: lookup, which is how the fault-free fast path stays allocation-free
NO_LOOKUP_FAULTS = LookupFaults()


@dataclass
class ServiceFaultStats:
    """What the service injector actually did to one serving run."""

    scorer_stalls: int = 0
    stall_ms_injected: float = 0.0
    index_errors: int = 0
    memory_pressure_events: int = 0
    churn_deltas: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scorer_stalls": self.scorer_stalls,
            "stall_ms_injected": round(self.stall_ms_injected, 3),
            "index_errors": self.index_errors,
            "memory_pressure_events": self.memory_pressure_events,
            "churn_deltas": self.churn_deltas,
        }

    @property
    def total_injected(self) -> int:
        return (self.scorer_stalls + self.index_errors
                + self.memory_pressure_events + self.churn_deltas)


class ServiceFaultInjector:
    """Applies a plan's service spells to the resident query service.

    One :meth:`step` per served lookup, in stream order.  Every draw is
    a pure function of ``(plan seed, kind, spell index, sequence)`` —
    the injector carries no RNG stream — so a sharded batch worker can
    :meth:`fast_forward` to its global offset and see exactly the fault
    history the serial path saw, and the whole fault timeline replays
    byte-identically for any ``(seed, plan, workload)`` triple.  The
    only cross-lookup state is the once-per-spell churn latch.
    """

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.stats = ServiceFaultStats()
        self.sequence = 0
        self._spells = tuple(enumerate(self.plan.service_spells))
        self._churn_fired: Set[int] = set()

    @property
    def is_empty(self) -> bool:
        return not self._spells

    def step(self) -> LookupFaults:
        """The faults for the current lookup; advances the sequence."""
        sequence = self.sequence
        self.sequence = sequence + 1
        if not self._spells:
            return NO_LOOKUP_FAULTS
        stall_ms = 0.0
        index_error = False
        memory_pressure = False
        churn_day: Optional[int] = None
        churn_rate = 0.0
        seed = self.plan.seed
        for spell_index, spell in self._spells:
            if not spell.covers(sequence):
                continue
            kind = spell.kind
            if kind == "churn_delta":
                # fires once, at the first served lookup in the window
                if spell_index not in self._churn_fired:
                    self._churn_fired.add(spell_index)
                    self.stats.churn_deltas += 1
                    churn_day = spell.churn_day
                    churn_rate = spell.churn_rate
                continue
            if spell.probability < 1.0 and unit_draw(
                    seed, "svc", kind, spell_index,
                    sequence) >= spell.probability:
                continue
            if kind == "scorer_stall":
                stall_ms += spell.stall_ms
                self.stats.scorer_stalls += 1
                self.stats.stall_ms_injected += spell.stall_ms
            elif kind == "index_error":
                index_error = True
                self.stats.index_errors += 1
            else:  # memory_pressure
                memory_pressure = True
                self.stats.memory_pressure_events += 1
        if not (stall_ms or index_error or memory_pressure
                or churn_day is not None):
            return NO_LOOKUP_FAULTS
        return LookupFaults(stall_ms=stall_ms, index_error=index_error,
                            memory_pressure=memory_pressure,
                            churn_day=churn_day, churn_rate=churn_rate)

    def fast_forward(self, sequence: int) -> None:
        """Advance to global lookup ``sequence`` without serving.

        A batch shard replays the timeline's draws (cheap hashes, no
        kernel work) so its churn latch — and every consumer fed from
        :meth:`step`, like the health monitor — reaches exactly the
        state the serial path holds at that position.
        """
        if sequence < self.sequence:
            raise ValueError(
                f"cannot rewind injector from {self.sequence} "
                f"to {sequence}")
        while self.sequence < sequence:
            self.step()
