"""Deterministic chaos/resilience layer: seeded, schedulable faults.

``plan`` declares *what* goes wrong and when (:class:`FaultPlan`);
``inject`` applies it to a live run (:class:`StudyFaultInjector`,
:class:`FaultyResolver`).  The scan-side consumers live in
:mod:`repro.experiment.parallel` (crash injection, retry/requeue,
checkpoint/resume).
"""

from repro.faultsim.inject import (
    NO_LOOKUP_FAULTS,
    FaultStats,
    FaultyResolver,
    LookupFaults,
    ServiceFaultInjector,
    ServiceFaultStats,
    StudyFaultInjector,
    unit_draw,
)
from repro.faultsim.plan import (
    SERVICE_FAULT_KINDS,
    DnsFaultSpell,
    FaultPlan,
    InjectedWorkerCrash,
    OutageSpan,
    ServiceFaultSpell,
    ShardCrashSpec,
    SmtpFaultSpell,
)

__all__ = [
    "FaultPlan",
    "OutageSpan",
    "DnsFaultSpell",
    "SmtpFaultSpell",
    "ShardCrashSpec",
    "ServiceFaultSpell",
    "SERVICE_FAULT_KINDS",
    "InjectedWorkerCrash",
    "StudyFaultInjector",
    "FaultyResolver",
    "FaultStats",
    "ServiceFaultInjector",
    "ServiceFaultStats",
    "LookupFaults",
    "NO_LOOKUP_FAULTS",
    "unit_draw",
]
