"""Deterministic chaos/resilience layer: seeded, schedulable faults.

``plan`` declares *what* goes wrong and when (:class:`FaultPlan`);
``inject`` applies it to a live run (:class:`StudyFaultInjector`,
:class:`FaultyResolver`).  The scan-side consumers live in
:mod:`repro.experiment.parallel` (crash injection, retry/requeue,
checkpoint/resume).
"""

from repro.faultsim.inject import (
    FaultStats,
    FaultyResolver,
    StudyFaultInjector,
    unit_draw,
)
from repro.faultsim.plan import (
    DnsFaultSpell,
    FaultPlan,
    InjectedWorkerCrash,
    OutageSpan,
    ShardCrashSpec,
    SmtpFaultSpell,
)

__all__ = [
    "FaultPlan",
    "OutageSpan",
    "DnsFaultSpell",
    "SmtpFaultSpell",
    "ShardCrashSpec",
    "InjectedWorkerCrash",
    "StudyFaultInjector",
    "FaultyResolver",
    "FaultStats",
    "unit_draw",
]
