"""Seeded, time-windowed fault plans for the whole reproduction.

The paper's seven-month live collection ran on infrastructure that
faulted — the collection server crashed under spam for roughly two
months, typo-domain MX hosts flapped, and senders retried transient
errors — and those faults shaped the reported volumes.  A
:class:`FaultPlan` makes that class of event a first-class, *scheduled*
simulation input:

* **collector outages** — day spans during which the study's VPS fleet
  tempfails inbound mail with a 4yz (``mode="tempfail"``, recoverable by
  the sender's retry queue) or the central collector silently drops it
  (``mode="drop"``, the paper's crash);
* **DNS spells** — windows during which resolution SERVFAILs or times
  out with some probability, per domain-suffix;
* **SMTP spells** — windows of probabilistic 4yz tempfails, greylisting
  (first attempt per envelope tempfails), and mid-session 421 drops;
* **shard crashes** — injected worker-process deaths (or hangs) in the
  sharded ecosystem scan, keyed by the rank a shard covers;
* **service spells** — lookup-windowed faults against the resident
  typo-risk query service (:mod:`repro.service`): scorer stalls,
  index-probe error bursts, memory-pressure memo shrinks, and scheduled
  mid-traffic churn deltas, keyed by the lookup sequence number instead
  of the study day clock.

Determinism is the design invariant: every probabilistic decision is a
pure function of ``(plan.seed, stable context)`` (see
:mod:`repro.faultsim.inject`), so the same ``(seed, plan)`` pair replays
byte-identically across runs and across worker counts, and an **empty
plan is exactly the fault-free simulation**.  Plans round-trip through
canonical JSON and are identified by a SHA-256 digest, which is how a
degraded run is reproduced after the fact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.smtpsim.retryqueue import RetryPolicy

__all__ = [
    "OutageSpan",
    "DnsFaultSpell",
    "SmtpFaultSpell",
    "ShardCrashSpec",
    "StudyCrashSpec",
    "ServiceFaultSpell",
    "SERVICE_FAULT_KINDS",
    "FaultPlan",
    "InjectedWorkerCrash",
    "InjectedStudyCrash",
]


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a scan worker to simulate its process dying."""


class InjectedStudyCrash(RuntimeError):
    """Raised at a study-day boundary to simulate the whole run dying.

    Only fires when the run is checkpointing — the point is to prove the
    kill→resume→identical loop, and a crash without a checkpoint is just
    a dead run.  :func:`~repro.experiment.runner.run_durable_study`
    catches it and resumes from the last day-boundary checkpoint.
    """


def _check_span(start_day: int, end_day: int) -> None:
    if start_day < 0 or end_day <= start_day:
        raise ValueError(
            f"need 0 <= start_day < end_day, got [{start_day}, {end_day})")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class OutageSpan:
    """A half-open ``[start_day, end_day)`` collection-infrastructure outage.

    ``mode="tempfail"`` (default): the VPS fleet 451s inbound mail, so
    sending MTAs queue and retry — mail is *recovered* once the span
    ends, unless the retry horizon expires first.  ``mode="drop"``: the
    central collector black-holes forwarded mail, reproducing the
    paper's crashed-infrastructure gap (counted, never recovered).
    """

    start_day: int
    end_day: int
    mode: str = "tempfail"

    def __post_init__(self) -> None:
        _check_span(self.start_day, self.end_day)
        if self.mode not in ("tempfail", "drop"):
            raise ValueError(f"unknown outage mode {self.mode!r}")

    def covers(self, day: int) -> bool:
        return self.start_day <= day < self.end_day


@dataclass(frozen=True)
class DnsFaultSpell:
    """A window of transient resolver failures.

    ``mode`` is ``"servfail"`` or ``"timeout"`` (both retryable by the
    sender).  ``domain_suffixes`` limits the blast radius (a domain is
    affected when it equals or ends with ``"." + suffix``); empty means
    every resolution.  Each (day, domain) pair draws once against
    ``probability`` — stateless, so retries on later days re-draw.
    """

    start_day: int
    end_day: int
    mode: str = "servfail"
    probability: float = 1.0
    domain_suffixes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_span(self.start_day, self.end_day)
        if self.mode not in ("servfail", "timeout"):
            raise ValueError(f"unknown DNS fault mode {self.mode!r}")
        _check_probability("probability", self.probability)
        object.__setattr__(self, "domain_suffixes",
                           tuple(s.lower() for s in self.domain_suffixes))

    def covers(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def matches_domain(self, domain: str) -> bool:
        if not self.domain_suffixes:
            return True
        return any(domain == suffix or domain.endswith("." + suffix)
                   for suffix in self.domain_suffixes)


@dataclass(frozen=True)
class SmtpFaultSpell:
    """A window of server-side SMTP misbehaviour on the gated hosts.

    Per delivery attempt, in order: a greylisting check (first attempt
    for a new ``(host, sender, recipient)`` envelope tempfails with 451),
    then a ``drop_probability`` draw (421 — the server hangs up
    mid-session), then a ``tempfail_probability`` draw (451).  Draws are
    keyed by the attempt's timestamp, so a retried message re-rolls.
    ``host_suffixes`` restricts the spell to matching server hostnames.
    """

    start_day: int
    end_day: int
    tempfail_probability: float = 0.0
    drop_probability: float = 0.0
    greylist: bool = False
    host_suffixes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_span(self.start_day, self.end_day)
        _check_probability("tempfail_probability", self.tempfail_probability)
        _check_probability("drop_probability", self.drop_probability)
        object.__setattr__(self, "host_suffixes",
                           tuple(s.lower() for s in self.host_suffixes))

    def covers(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def matches_host(self, hostname: str) -> bool:
        if not self.host_suffixes:
            return True
        hostname = hostname.lower()
        return any(hostname == suffix or hostname.endswith("." + suffix)
                   for suffix in self.host_suffixes)


@dataclass(frozen=True)
class ShardCrashSpec:
    """Crash (or hang) injection for the scan shard covering ``rank``.

    The shard whose ``[start_rank, stop_rank)`` range contains ``rank``
    fails its first ``failures`` attempts.  ``mode="crash"`` raises
    :class:`InjectedWorkerCrash` (a worker death the scheduler must
    requeue); ``mode="hang"`` sleeps ``hang_seconds`` before proceeding,
    which trips a per-shard timeout when one is configured.
    """

    rank: int
    failures: int = 1
    mode: str = "crash"
    hang_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError("rank must be >= 1")
        if self.failures < 1:
            raise ValueError("failures must be >= 1")
        if self.mode not in ("crash", "hang"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")


@dataclass(frozen=True)
class StudyCrashSpec:
    """Kill the whole study run when it reaches ``day``.

    Fires at the start of the day, before any of that day's work, and
    only on the first ``failures`` visits to the day *across process
    restarts* — the resume-attempt counter lives in the study checkpoint,
    so a ``failures=N`` spec dies N times and then lets the N+1-th
    (resumed) visit proceed.  This is how the chaos lane proves
    kill→resume→identical end to end without real SIGKILLs.

    ``phase`` picks the injection point inside the day: ``"day"`` (the
    default, day start) or ``"retrain"`` — after a scenario-scheduled
    shadow retrain has produced its candidate but before the gated
    promote publishes, the mid-lifecycle boundary the drift-resilience
    chaos lane kills at.
    """

    day: int
    failures: int = 1
    phase: str = "day"

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError("day must be >= 0")
        if self.failures < 1:
            raise ValueError("failures must be >= 1")
        if self.phase not in ("day", "retrain"):
            raise ValueError(f"unknown study crash phase {self.phase!r}")


#: the service-lane fault kinds a :class:`ServiceFaultSpell` may schedule
SERVICE_FAULT_KINDS = ("scorer_stall", "index_error", "memory_pressure",
                       "churn_delta")


@dataclass(frozen=True)
class ServiceFaultSpell:
    """A half-open ``[start_lookup, end_lookup)`` window of service faults.

    The resident query service has no day clock, so service spells are
    keyed by the **lookup sequence number** — the position of a query in
    the served stream.  Within the window, each lookup draws once
    against ``probability`` (a pure :func:`~repro.faultsim.inject.unit_draw`
    of ``(plan seed, kind, spell index, sequence)``), so the same
    ``(seed, plan, workload)`` triple replays byte-identically at any
    worker count.  Kinds:

    * ``"scorer_stall"`` — the kernel scorer stalls for ``stall_ms`` of
      *virtual* latency on hit lookups; stall backlog drives the
      engine's deterministic admission-control queue depth (and hence
      load shedding), never a real ``sleep``;
    * ``"index_error"`` — the index probe errors on hit lookups; the
      engine answers degraded (never an exception) and enough errors in
      a window trip the circuit breaker toward rules-only serving;
    * ``"memory_pressure"`` — hit lookups force a verdict-memo shrink
      (the old memo generation is dropped), modelling an OOM-killer
      near miss; verdicts are pure so only hit rates move;
    * ``"churn_delta"`` — at the first served lookup inside the window
      the engine hot-swaps its index to churn day ``churn_day`` (rate
      ``churn_rate``) mid-traffic — the two-phase generation swap under
      live load.  Fires once per spell; ``probability`` is ignored.
    """

    start_lookup: int
    end_lookup: int
    kind: str
    probability: float = 1.0
    stall_ms: float = 5.0
    churn_day: int = 0
    churn_rate: float = 0.004

    def __post_init__(self) -> None:
        if self.start_lookup < 0 or self.end_lookup <= self.start_lookup:
            raise ValueError(
                f"need 0 <= start_lookup < end_lookup, got "
                f"[{self.start_lookup}, {self.end_lookup})")
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r} "
                f"(expected one of {', '.join(SERVICE_FAULT_KINDS)})")
        _check_probability("probability", self.probability)
        if self.stall_ms < 0:
            raise ValueError("stall_ms must be non-negative")
        if self.kind == "churn_delta":
            if self.churn_day < 1:
                raise ValueError("churn_delta spells need churn_day >= 1")
            _check_probability("churn_rate", self.churn_rate)

    def covers(self, sequence: int) -> bool:
        return self.start_lookup <= sequence < self.end_lookup


@dataclass(frozen=True)
class FaultPlan:
    """Everything the chaos layer may do to one run, fully seeded."""

    seed: int = 0
    collector_outages: Tuple[OutageSpan, ...] = ()
    dns_spells: Tuple[DnsFaultSpell, ...] = ()
    smtp_spells: Tuple[SmtpFaultSpell, ...] = ()
    shard_crashes: Tuple[ShardCrashSpec, ...] = ()
    study_crashes: Tuple[StudyCrashSpec, ...] = ()
    service_spells: Tuple[ServiceFaultSpell, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules no fault of any kind."""
        return not (self.collector_outages or self.dns_spells
                    or self.smtp_spells or self.shard_crashes
                    or self.study_crashes or self.service_spells)

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        """The do-nothing plan: byte-identical to running without one."""
        return cls(seed=seed)

    # -- scan-shard lookups --------------------------------------------------

    def crash_spec_for_shard(self, start_rank: int, stop_rank: int,
                             attempt: int) -> Optional[ShardCrashSpec]:
        """The spec that fails this shard's ``attempt`` (1-based), if any."""
        for spec in self.shard_crashes:
            if start_rank <= spec.rank < stop_rank and attempt <= spec.failures:
                return spec
        return None

    # -- study-day lookups ---------------------------------------------------

    def crash_spec_for_study_day(self, day: int, attempt: int,
                                 phase: str = "day"
                                 ) -> Optional[StudyCrashSpec]:
        """The spec that kills this visit to ``day`` (1-based attempt)."""
        for spec in self.study_crashes:
            if (spec.day == day and spec.phase == phase
                    and attempt <= spec.failures):
                return spec
        return None

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "collector_outages": [
                {"start_day": o.start_day, "end_day": o.end_day,
                 "mode": o.mode}
                for o in self.collector_outages],
            "dns_spells": [
                {"start_day": s.start_day, "end_day": s.end_day,
                 "mode": s.mode, "probability": s.probability,
                 "domain_suffixes": list(s.domain_suffixes)}
                for s in self.dns_spells],
            "smtp_spells": [
                {"start_day": s.start_day, "end_day": s.end_day,
                 "tempfail_probability": s.tempfail_probability,
                 "drop_probability": s.drop_probability,
                 "greylist": s.greylist,
                 "host_suffixes": list(s.host_suffixes)}
                for s in self.smtp_spells],
            "shard_crashes": [
                {"rank": c.rank, "failures": c.failures, "mode": c.mode,
                 "hang_seconds": c.hang_seconds}
                for c in self.shard_crashes],
            "study_crashes": [
                # phase is emitted only when non-default so pre-existing
                # plan digests stay stable
                ({"day": c.day, "failures": c.failures}
                 if c.phase == "day" else
                 {"day": c.day, "failures": c.failures, "phase": c.phase})
                for c in self.study_crashes],
            "service_spells": [
                {"start_lookup": s.start_lookup,
                 "end_lookup": s.end_lookup, "kind": s.kind,
                 "probability": s.probability, "stall_ms": s.stall_ms,
                 "churn_day": s.churn_day, "churn_rate": s.churn_rate}
                for s in self.service_spells],
            "retry": self.retry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            collector_outages=tuple(
                OutageSpan(**entry)
                for entry in data.get("collector_outages", ())),
            dns_spells=tuple(
                DnsFaultSpell(**{**entry,
                                 "domain_suffixes": tuple(
                                     entry.get("domain_suffixes", ()))})
                for entry in data.get("dns_spells", ())),
            smtp_spells=tuple(
                SmtpFaultSpell(**{**entry,
                                  "host_suffixes": tuple(
                                      entry.get("host_suffixes", ()))})
                for entry in data.get("smtp_spells", ())),
            shard_crashes=tuple(
                ShardCrashSpec(**entry)
                for entry in data.get("shard_crashes", ())),
            study_crashes=tuple(
                StudyCrashSpec(**entry)
                for entry in data.get("study_crashes", ())),
            service_spells=tuple(
                ServiceFaultSpell(**entry)
                for entry in data.get("service_spells", ())),
            retry=RetryPolicy.from_dict(
                data.get("retry", RetryPolicy().to_dict())),
        )

    def to_json(self) -> str:
        """Canonical JSON — the digest input and the ``--fault-plan`` format."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON: the plan's reproducible identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- the demo plan behind ``--chaos`` ------------------------------------

    @classmethod
    def chaos_demo(cls, seed: int = 0) -> "FaultPlan":
        """A representative mid-severity plan for ``--chaos`` runs.

        A recoverable ten-day tempfail outage, a shorter hard drop, a
        flaky-DNS week, a greylisting spell, probabilistic tempfails,
        and one injected worker crash in the sharded scan.
        """
        return cls(
            seed=seed,
            collector_outages=(
                OutageSpan(40, 50, mode="tempfail"),
                OutageSpan(150, 153, mode="drop"),
            ),
            dns_spells=(
                DnsFaultSpell(60, 67, mode="servfail", probability=0.25),
            ),
            smtp_spells=(
                SmtpFaultSpell(90, 104, tempfail_probability=0.15),
                SmtpFaultSpell(120, 127, greylist=True),
            ),
            shard_crashes=(
                ShardCrashSpec(rank=1, failures=1, mode="crash"),
            ),
        )

    @classmethod
    def service_chaos_demo(cls, seed: int = 0,
                           lookups: int = 100_000) -> "FaultPlan":
        """A representative service-lane plan for ``serve-bench --chaos``.

        Windows scale with the served stream: an index-error burst deep
        enough to trip the circuit breaker into degraded (and briefly
        rules-only) serving, a scorer-stall storm that overloads the
        deterministic admission queue into load shedding, one
        memory-pressure memo shrink, and a mid-traffic churn delta
        exercising the two-phase index hot-swap under live lookups.
        """
        if lookups < 100:
            raise ValueError("service_chaos_demo needs lookups >= 100")
        tenth = lookups // 10
        return cls(
            seed=seed,
            service_spells=(
                ServiceFaultSpell(1 * tenth, 3 * tenth, "index_error",
                                  probability=0.6),
                ServiceFaultSpell(4 * tenth, 6 * tenth, "scorer_stall",
                                  probability=0.7, stall_ms=8.0),
                ServiceFaultSpell(7 * tenth, 7 * tenth + max(1, tenth // 8),
                                  "memory_pressure", probability=1.0),
                ServiceFaultSpell(8 * tenth, 8 * tenth + 1, "churn_delta",
                                  churn_day=30, churn_rate=0.01),
            ),
        )
