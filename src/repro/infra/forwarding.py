"""SMTP forwarding from the VPS fleet to the main collection server.

Figure 1's topology is two SMTP hops: a typo domain's dedicated VPS
accepts the mail, then *relays it over SMTP* to the main collection
server.  The indirection is deliberate — people who look up a typo domain
see only an anonymous VPS, not the research infrastructure — and it
leaves a fingerprint the funnel's Layer 1 checks: the collection server's
Received header names the VPS (one of the registered typo domains) as the
connecting client.

:func:`attach_forwarding` rewires a provisioned infrastructure from the
direct-callback shortcut to the real two-hop path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.infra.collector import MainCollectionServer
from repro.smtpsim.message import EmailMessage
from repro.smtpsim.protocol import accept_all_policy
from repro.smtpsim.server import SmtpServer
from repro.smtpsim.transport import Network

__all__ = ["COLLECTOR_HOSTNAME", "COLLECTOR_IP", "attach_forwarding",
           "ForwardingStats"]

COLLECTOR_HOSTNAME = "collector.study-infra.net"
COLLECTOR_IP = "198.51.99.1"


@dataclass
class ForwardingStats:
    forwarded: int = 0
    forward_failures: int = 0


def attach_forwarding(infra, network: Network,
                      collector: Optional[MainCollectionServer] = None
                      ) -> ForwardingStats:
    """Rewire each VPS to relay over SMTP into a central collector server.

    ``infra`` is a :class:`~repro.infra.provisioning.CollectionInfrastructure`
    whose VPS servers currently deliver straight into the Python-level
    collector; afterwards each accepted message makes a real second SMTP
    hop, gaining the collector's Received header stamped with the VPS
    hostname.
    """
    collector = collector or infra.collector
    stats = ForwardingStats()

    collector_server = SmtpServer(
        hostname=COLLECTOR_HOSTNAME,
        ip=COLLECTOR_IP,
        rcpt_policy=accept_all_policy,
        on_delivery=collector.ingest,
    )
    network.attach(COLLECTOR_IP, collector_server)

    for domain, vps in infra.servers.items():
        vps.on_delivery = _make_forwarder(vps, collector_server, stats)
    return stats


def _make_forwarder(vps: SmtpServer, collector_server: SmtpServer,
                    stats: ForwardingStats):
    """The VPS-side relay: one SMTP transaction into the collector."""

    def forward(message: EmailMessage) -> None:
        session = collector_server.open_session()
        session.banner()
        # the VPS identifies itself with its typo-domain hostname: the
        # fingerprint Layer 1 verifies
        session.command(f"EHLO {vps.hostname}")
        sender = message.envelope_from or "forwarder@invalid"
        reply = session.command(f"MAIL FROM:<{sender}>")
        if not reply.is_success:
            stats.forward_failures += 1
            return
        recipients = message.envelope_to or ["catchall@collector"]
        accepted_any = False
        for recipient in recipients:
            if session.command(f"RCPT TO:<{recipient}>").is_success:
                accepted_any = True
        if not accepted_any:
            stats.forward_failures += 1
            return
        if session.command("DATA").code != 354:
            stats.forward_failures += 1
            return
        reply = collector_server.receive(session, message,
                                         timestamp=message.received_at)
        if reply.is_success:
            stats.forwarded += 1
        else:
            stats.forward_failures += 1

    return forward
