"""Collection infrastructure: VPS provisioning, the main collector, encrypted storage."""

from repro.infra.collector import CollectorStats, MainCollectionServer
from repro.infra.forwarding import (
    COLLECTOR_HOSTNAME,
    COLLECTOR_IP,
    ForwardingStats,
    attach_forwarding,
)
from repro.infra.provisioning import (
    CollectionInfrastructure,
    VpsAllocator,
    provision_study,
    surrender_domain,
)
from repro.infra.storage import (
    EncryptedStore,
    KeyVault,
    StorageSealedError,
    StoredRecord,
)

__all__ = [
    "MainCollectionServer",
    "CollectorStats",
    "VpsAllocator",
    "CollectionInfrastructure",
    "provision_study",
    "surrender_domain",
    "KeyVault",
    "EncryptedStore",
    "StoredRecord",
    "StorageSealedError",
    "attach_forwarding",
    "ForwardingStats",
    "COLLECTOR_HOSTNAME",
    "COLLECTOR_IP",
]
