"""Encrypted at-rest storage for collected email (paper §4.1).

The paper's protocol requires that stored emails be useless without an
encryption key kept on removable media, separate from the server.  We
model that contract: :class:`EncryptedStore` holds only ciphertext, the
key lives in a detachable :class:`KeyVault`, and decryption without the
vault attached fails.  The cipher is a keyed SHA-256 keystream (a real
deployment would use NaCl/Fernet; the *system property* — ciphertext and
key separation — is what the study depends on, not the cipher strength).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["KeyVault", "EncryptedStore", "StoredRecord", "StorageSealedError"]


class StorageSealedError(RuntimeError):
    """Raised when decrypting while the key vault is detached."""


@dataclass
class KeyVault:
    """The removable-media key: attachable/detachable at runtime."""

    key: bytes
    attached: bool = True

    @classmethod
    def generate(cls, seed: int) -> "KeyVault":
        key = hashlib.sha256(f"vault-key-{seed}".encode()).digest()
        return cls(key=key)

    def detach(self) -> None:
        """Pull the removable key: decryption becomes impossible."""
        self.attached = False

    def attach(self) -> None:
        """Reinsert the removable key."""
        self.attached = True


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """A SHA-256-in-counter-mode keystream."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class StoredRecord:
    """One encrypted email part: ciphertext plus integrity tag."""

    record_id: str
    nonce: bytes
    ciphertext: bytes
    mac: bytes
    kind: str  # header | body | attachment | log


class EncryptedStore:
    """Stores email parts encrypted under a :class:`KeyVault` key.

    ``put`` always works (encryption needs the key, which must be attached
    at write time — like the paper's live pipeline); ``get`` raises
    :class:`StorageSealedError` when the vault is detached, modelling an
    attacker with disk access but no key.
    """

    def __init__(self, vault: KeyVault) -> None:
        self._vault = vault
        self._records: Dict[str, StoredRecord] = {}
        self._counter = 0

    def put(self, plaintext: bytes, kind: str = "body") -> str:
        """Encrypt and store one part; returns its record id."""
        if not self._vault.attached:
            raise StorageSealedError("cannot encrypt: key vault detached")
        self._counter += 1
        record_id = f"rec-{self._counter:08d}"
        nonce = hashlib.sha256(record_id.encode()).digest()[:12]
        stream = _keystream(self._vault.key, nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(self._vault.key, nonce + ciphertext,
                       hashlib.sha256).digest()
        self._records[record_id] = StoredRecord(record_id, nonce, ciphertext,
                                                mac, kind)
        return record_id

    def get(self, record_id: str) -> bytes:
        """Decrypt one record (vault must be attached; MAC verified)."""
        if not self._vault.attached:
            raise StorageSealedError("cannot decrypt: key vault detached")
        record = self._records[record_id]
        expected = hmac.new(self._vault.key, record.nonce + record.ciphertext,
                            hashlib.sha256).digest()
        if not hmac.compare_digest(expected, record.mac):
            raise ValueError(f"integrity check failed for {record_id}")
        stream = _keystream(self._vault.key, record.nonce,
                            len(record.ciphertext))
        return bytes(c ^ s for c, s in zip(record.ciphertext, stream))

    def raw_ciphertext(self, record_id: str) -> bytes:
        """What an attacker with disk access sees (no key required)."""
        return self._records[record_id].ciphertext

    def records_of_kind(self, kind: str) -> List[str]:
        """Record ids of all parts stored with ``kind``."""
        return [r.record_id for r in self._records.values() if r.kind == kind]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records
