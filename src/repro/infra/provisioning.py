"""Provisioning of the study's collection infrastructure (paper Fig. 1).

Each registered typo domain gets a dedicated virtual private server with
its own IP address — a one-to-one domain↔IP mapping.  The mapping is
load-bearing: the SMTP protocol does not put the contacted server's domain
name in the headers, so the *only* way to attribute an SMTP-typo email to
the typo domain that attracted it is the IP it arrived on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.targets import StudyCorpus
from repro.dnssim import DomainRegistry, Registration, Zone, collection_zone
from repro.smtpsim import Network, SmtpServer

from repro.infra.collector import MainCollectionServer

__all__ = ["VpsAllocator", "CollectionInfrastructure", "provision_study",
           "surrender_domain"]

#: The study's address block (documentation range, never routable).
VPS_ADDRESS_PREFIX = "198.51"


class VpsAllocator:
    """Hands out unique VPS IP addresses from the study's address block."""

    def __init__(self, prefix: str = VPS_ADDRESS_PREFIX) -> None:
        self._prefix = prefix
        self._next = 1

    def allocate(self) -> str:
        """The next unique VPS address from the study's block."""
        index = self._next
        self._next += 1
        if index > 255 * 250:
            raise RuntimeError("VPS address block exhausted")
        high, low = divmod(index, 250)
        return f"{self._prefix}.{100 + high}.{low + 1}"


@dataclass
class CollectionInfrastructure:
    """The provisioned study: domains registered, VPSes attached, collector wired.

    ``domain_to_ip`` is the one-to-one map used later to attribute
    SMTP-typo emails; ``servers`` are the per-domain VPS SMTP servers, each
    forwarding into the shared :class:`MainCollectionServer`.
    """

    collector: MainCollectionServer
    domain_to_ip: Dict[str, str] = field(default_factory=dict)
    servers: Dict[str, SmtpServer] = field(default_factory=dict)

    def ip_for(self, domain: str) -> Optional[str]:
        """The VPS address serving ``domain``, or None."""
        return self.domain_to_ip.get(domain.lower())

    def domain_for_ip(self, ip: str) -> Optional[str]:
        """Reverse lookup: which study domain owns ``ip``."""
        for domain, addr in self.domain_to_ip.items():
            if addr == ip:
                return domain
        return None

    @property
    def domains(self) -> List[str]:
        return sorted(self.domain_to_ip)


def surrender_domain(infra: CollectionInfrastructure,
                     registry: DomainRegistry, network: Network,
                     domain: str, new_owner: str) -> bool:
    """Hand a study domain over to a trademark owner (paper §4.1).

    The IRB protocol committed the researchers to "surrender any domain
    we registered to the legitimate owner of a trademark it could
    potentially infringe upon simple request".  Surrendering tears the
    domain out of the collection infrastructure — VPS detached, zone
    deregistered — and re-registers it to the requesting owner with an
    empty zone (their DNS, their business).

    Returns False when the domain is not part of the study.
    """
    domain = domain.lower()
    ip = infra.domain_to_ip.pop(domain, None)
    if ip is None:
        return False
    infra.servers.pop(domain, None)
    network.detach(ip)
    registry.deregister(domain)
    registry.register(Registration(
        domain=domain,
        zone=Zone(origin=domain),
        registrant_id=new_owner,
    ))
    return True


def provision_study(corpus: StudyCorpus, registry: DomainRegistry,
                    network: Network,
                    collector: Optional[MainCollectionServer] = None,
                    registrant_id: str = "study-researchers",
                    nameserver: str = "ns.study-infra.net") -> CollectionInfrastructure:
    """Register every study domain and attach its dedicated VPS.

    Mirrors the paper's setup: per-domain wildcard MX+A zones (Table 1),
    one VPS per domain, all VPSes forwarding accepted mail — stamped with
    the VPS IP — to the main collection server.
    """
    if collector is None:
        collector = MainCollectionServer()
    allocator = VpsAllocator()
    infra = CollectionInfrastructure(collector=collector)

    for typo_domain in corpus.domains:
        domain = typo_domain.domain
        ip = allocator.allocate()
        registry.register(Registration(
            domain=domain,
            zone=collection_zone(domain, ip),
            nameserver=nameserver,
            registrant_id=registrant_id,
        ))
        server = SmtpServer(
            hostname=domain,
            ip=ip,
            on_delivery=collector.ingest,
        )
        network.attach(ip, server)
        infra.domain_to_ip[domain] = ip
        infra.servers[domain] = server

    return infra
