"""The main collection server (paper Fig. 1, right-hand side).

Every VPS forwards accepted mail here.  The collector never sends mail; it
counts, optionally processes (pipeline hook), and appends to an in-memory
corpus that the analyses consume.  A bounded-queue failure mode models the
paper's infrastructure being "overwhelmed with spam, and crashing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.smtpsim.message import EmailMessage

__all__ = ["MainCollectionServer", "CollectorStats"]

ProcessHook = Callable[[EmailMessage], None]


@dataclass
class CollectorStats:
    ingested: int = 0
    dropped_overload: int = 0
    dropped_outage: int = 0


class MainCollectionServer:
    """Central sink for all study mail.

    Parameters
    ----------
    daily_capacity:
        Messages the server can absorb per simulated day before it starts
        dropping (None = unlimited).  The experiment runner uses this to
        reproduce the paper's collection gaps.
    process_hook:
        Called for each ingested message (the processing pipeline); any
        exception from the hook is *not* swallowed — pipeline bugs should
        surface, not silently lose data.
    """

    def __init__(self, daily_capacity: Optional[int] = None,
                 process_hook: Optional[ProcessHook] = None) -> None:
        self.daily_capacity = daily_capacity
        self.process_hook = process_hook
        self.corpus: List[EmailMessage] = []
        self.stats = CollectorStats()
        self._outage = False
        self._current_day: Optional[int] = None
        self._today_count = 0

    # -- outage control (driven by the experiment runner) --------------------

    def set_outage(self, outage: bool) -> None:
        """Toggle the crashed-infrastructure state (drops all mail)."""
        self._outage = outage

    @property
    def in_outage(self) -> bool:
        return self._outage

    # -- ingestion -----------------------------------------------------------

    def ingest(self, message: EmailMessage) -> None:
        """Accept one forwarded message, subject to outage/capacity."""
        if self._outage:
            self.stats.dropped_outage += 1
            return
        day = int(message.received_at // 86_400)
        if day != self._current_day:
            self._current_day = day
            self._today_count = 0
        if self.daily_capacity is not None and self._today_count >= self.daily_capacity:
            self.stats.dropped_overload += 1
            return
        self._today_count += 1
        self.stats.ingested += 1
        if self.process_hook is not None:
            self.process_hook(message)
        self.corpus.append(message)

    def __len__(self) -> int:
        return len(self.corpus)
