"""The main collection server (paper Fig. 1, right-hand side).

Every VPS forwards accepted mail here.  The collector never sends mail; it
counts, optionally processes (pipeline hook), and appends to an in-memory
corpus that the analyses consume.  A bounded-queue failure mode models the
paper's infrastructure being "overwhelmed with spam, and crashing".

Outages come in two flavours: the experiment runner drives the
window-level outage (the paper's lost months) through :meth:`begin_day`,
and fault plans can *schedule* additional down days with
:meth:`schedule_outage_days`.  Either way the collector keeps per-day
gap/coverage accounting so a degraded run can report exactly which days
it lost and how much mail each gap swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.smtpsim.message import EmailMessage

__all__ = ["MainCollectionServer", "CollectorStats"]

ProcessHook = Callable[[EmailMessage], None]


@dataclass
class CollectorStats:
    ingested: int = 0
    dropped_overload: int = 0
    dropped_outage: int = 0


class MainCollectionServer:
    """Central sink for all study mail.

    Parameters
    ----------
    daily_capacity:
        Messages the server can absorb per simulated day before it starts
        dropping (None = unlimited).  The experiment runner uses this to
        reproduce the paper's collection gaps.
    process_hook:
        Called for each ingested message (the processing pipeline); any
        exception from the hook is *not* swallowed — pipeline bugs should
        surface, not silently lose data.
    """

    def __init__(self, daily_capacity: Optional[int] = None,
                 process_hook: Optional[ProcessHook] = None) -> None:
        self.daily_capacity = daily_capacity
        self.process_hook = process_hook
        self.corpus: List[EmailMessage] = []
        self.stats = CollectorStats()
        self._outage = False
        self._current_day: Optional[int] = None
        self._today_count = 0
        self._scheduled_outage_days: Set[int] = set()
        # gap/coverage accounting (day index -> count)
        self._outage_days_seen: Set[int] = set()
        self._dropped_by_day: Dict[int, int] = {}
        # streaming hand-off (see enable_streaming)
        self._streaming = False
        self._retain_corpus = True
        self._pending: List[EmailMessage] = []

    # -- outage control (driven by the experiment runner) --------------------

    def set_outage(self, outage: bool) -> None:
        """Toggle the crashed-infrastructure state (drops all mail)."""
        self._outage = outage

    @property
    def in_outage(self) -> bool:
        return self._outage

    def schedule_outage_days(self, days) -> None:
        """Pre-schedule down days (fault plans); additive, idempotent."""
        self._scheduled_outage_days.update(int(day) for day in days)

    def begin_day(self, day: int, collecting: bool = True) -> None:
        """Advance the collector's day clock and apply scheduled outages.

        ``collecting=False`` is the window-level outage (the paper's lost
        months); a day in the scheduled set is down regardless.  Each down
        day is recorded for :meth:`coverage_report`.
        """
        outage = (not collecting) or (day in self._scheduled_outage_days)
        self.set_outage(outage)
        if outage:
            self._outage_days_seen.add(day)

    # -- ingestion -----------------------------------------------------------

    def ingest(self, message: EmailMessage) -> None:
        """Accept one forwarded message, subject to outage/capacity."""
        day = int(message.received_at // 86_400)
        if self._outage:
            self.stats.dropped_outage += 1
            self._outage_days_seen.add(day)
            self._dropped_by_day[day] = self._dropped_by_day.get(day, 0) + 1
            return
        if day != self._current_day:
            self._current_day = day
            self._today_count = 0
        if self.daily_capacity is not None and self._today_count >= self.daily_capacity:
            self.stats.dropped_overload += 1
            self._dropped_by_day[day] = self._dropped_by_day.get(day, 0) + 1
            return
        self._today_count += 1
        self.stats.ingested += 1
        if self.process_hook is not None:
            self.process_hook(message)
        if self._retain_corpus:
            self.corpus.append(message)
        if self._streaming:
            self._pending.append(message)

    # -- streaming hand-off ---------------------------------------------------

    def enable_streaming(self, retain_corpus: bool = True) -> None:
        """Queue accepted mail for in-window draining (streaming classify).

        With ``retain_corpus=False`` the collector stops growing
        :attr:`corpus` — ingested messages live only in the pending queue
        until :meth:`drain_pending` hands them to the classifier, which
        is what bounds a paper-scale run's memory.  Acceptance
        accounting (``stats.ingested``, outage/overload drops, coverage)
        is identical in every mode.
        """
        self._streaming = True
        self._retain_corpus = retain_corpus

    def drain_pending(self) -> List[EmailMessage]:
        """All mail accepted since the last drain, in ingest order."""
        pending = self._pending
        self._pending = []
        return pending

    # -- durable state (the study checkpoint's collector payload) ------------

    def state_dict(self) -> Dict:
        """The collector's mutable accounting, JSON-ready.

        The corpus itself is persisted (or not) by the caller per
        retention mode; this covers everything else a resumed run needs
        for :meth:`coverage_report` and capacity/outage bookkeeping to
        continue exactly.  Only valid at a day boundary, when the
        streaming pending queue has been drained.
        """
        if self._pending:
            raise RuntimeError(
                "collector state captured with undrained pending mail")
        return {
            "stats": {"ingested": self.stats.ingested,
                      "dropped_overload": self.stats.dropped_overload,
                      "dropped_outage": self.stats.dropped_outage},
            "current_day": self._current_day,
            "today_count": self._today_count,
            "scheduled_outage_days": sorted(self._scheduled_outage_days),
            "outage_days_seen": sorted(self._outage_days_seen),
            "dropped_by_day": {str(day): count for day, count
                               in sorted(self._dropped_by_day.items())},
        }

    def restore_state(self, data: Dict) -> None:
        """Restore a :meth:`state_dict` snapshot (coverage included)."""
        self.stats = CollectorStats(**data["stats"])
        self._current_day = data["current_day"]
        self._today_count = data["today_count"]
        self._scheduled_outage_days = set(data["scheduled_outage_days"])
        self._outage_days_seen = set(data["outage_days_seen"])
        self._dropped_by_day = {int(day): count for day, count
                                in data["dropped_by_day"].items()}

    # -- gap/coverage accounting ---------------------------------------------

    def coverage_report(self, total_days: Optional[int] = None) -> Dict:
        """Which days this run lost, and how much mail each gap swallowed.

        ``gap_days`` are days the collector was down (window outage or
        scheduled); ``dropped_by_day`` maps each lossy day to its dropped
        message count (outage and overload drops combined).
        """
        gap_days = sorted(self._outage_days_seen)
        report = {
            "gap_days": gap_days,
            "gap_day_count": len(gap_days),
            "dropped_by_day": dict(sorted(self._dropped_by_day.items())),
            "ingested": self.stats.ingested,
            "dropped_outage": self.stats.dropped_outage,
            "dropped_overload": self.stats.dropped_overload,
        }
        if total_days is not None:
            report["total_days"] = total_days
            report["collecting_days"] = total_days - len(
                [d for d in gap_days if 0 <= d < total_days])
        return report

    def __len__(self) -> int:
        return len(self.corpus)
