"""Per-message feature matrices from the classify pipeline (message lane).

Featurization consumes the stage-A projection the classify pipeline
already produces — a :class:`TokenizedEmail` (bounded-memory tokenization,
``retain_original=False`` safe: no column reads ``tok.original``) plus its
:class:`MessageSummary` — so the work fans over the existing
``ProcessPoolExecutor`` day-chunks for free and never re-parses raw mail.
Funnel verdicts (``layer1``/``layer2``/``layer4``) are deliberately not
features: the learned detector must be comparable against the funnel, not
stacked on it.

Two implementations of the row law, pinned against each other by the
hypothesis parity suite:

* :func:`message_feature_matrix` — one pass per chunk into a
  preallocated float64 matrix (the hot path; scoring is then a single
  matmul + fused stump pass per batch);
* :func:`message_feature_row` — the scalar reference, one message to one
  row in plain branch-per-feature Python.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.features.schema import MESSAGE_FEATURES
from repro.pipeline.tokenizer import ARCHIVE_EXTENSIONS, TokenizedEmail
from repro.spamfilter.funnel import MessageSummary

__all__ = ["message_feature_matrix", "message_feature_row"]

_N_FEATURES = len(MESSAGE_FEATURES)
_COL = {name: i for i, name in enumerate(MESSAGE_FEATURES)}

_DIGITS = frozenset("0123456789")


def message_feature_row(tok: TokenizedEmail,
                        summary: MessageSummary) -> np.ndarray:
    """One feature row for one message — the scalar reference law.

    Tolerant of arbitrary header junk: every feature falls back to 0 for
    missing fields, lengths are plain ``len`` (unicode-safe), and nothing
    touches ``tok.original``.
    """
    row = np.zeros(_N_FEATURES, dtype=np.float64)
    meta = tok.metadata

    row[_COL["kind_receiver"]] = 1.0 if summary.kind == "receiver" else 0.0
    row[_COL["kind_smtp"]] = 1.0 if summary.kind == "smtp" else 0.0

    n_rcpt = len(meta.envelope_to)
    row[_COL["n_recipients"]] = n_rcpt
    row[_COL["multi_recipient"]] = 1.0 if n_rcpt > 1 else 0.0

    sender = summary.sender
    if sender:
        row[_COL["sender_present"]] = 1.0
        local, _, domain = sender.rpartition("@")
        if not local:            # no "@": treat everything as local part
            local, domain = sender, ""
        row[_COL["sender_local_len"]] = len(local)
        row[_COL["sender_domain_len"]] = len(domain)
        row[_COL["sender_local_digits"]] = sum(
            c in _DIGITS for c in local)

    subject = meta.subject or ""
    row[_COL["subject_len"]] = len(subject)
    row[_COL["subject_exclaims"]] = subject.count("!")
    if subject:
        row[_COL["subject_upper_frac"]] = (
            sum(c.isupper() for c in subject) / len(subject))

    body = tok.body or ""
    row[_COL["body_len_log"]] = math.log10(1.0 + len(body))
    row[_COL["body_lines"]] = body.count("\n")

    row[_COL["n_attachments"]] = len(tok.attachments)
    row[_COL["has_archive_attachment"]] = 1.0 if any(
        a.extension in ARCHIVE_EXTENSIONS for a in tok.attachments) else 0.0

    row[_COL["has_list_unsubscribe"]] = (
        1.0 if meta.list_unsubscribe else 0.0)
    row[_COL["has_reply_to"]] = 1.0 if meta.reply_to else 0.0
    row[_COL["reply_to_differs"]] = (
        1.0 if meta.reply_to and meta.reply_to != meta.from_field else 0.0)
    row[_COL["return_path_differs"]] = (
        1.0 if meta.return_path
        and meta.return_path != meta.envelope_from else 0.0)
    row[_COL["sender_field_differs"]] = (
        1.0 if meta.sender_field
        and meta.sender_field != meta.from_field else 0.0)
    row[_COL["received_chain_len"]] = len(meta.received_chain)

    row[_COL["bag_present"]] = 1.0 if summary.bag is not None else 0.0
    row[_COL["bag_size"]] = len(summary.bag) if summary.bag else 0.0
    # constant by construction (the hash law never fails over content);
    # summary.content_hash is None only when an earlier layer already
    # claimed the mail, and reading that would leak a funnel verdict —
    # same argument as the domain lane's constant ``registered`` column
    row[_COL["content_hash_present"]] = 1.0
    return row


def message_feature_matrix(
        items: Sequence[Tuple[TokenizedEmail, MessageSummary]],
        out: Optional[np.ndarray] = None) -> np.ndarray:
    """Feature matrix for a chunk of ``(tokenized, summary)`` pairs.

    One pass, one preallocated float64 matrix, one row-tuple store per
    message — the columnar twin of :func:`message_feature_row`, pinned
    row-for-row by the parity suite.  ``out`` (when given) must be
    ``(len(items), len(MESSAGE_FEATURES))`` and is filled in place.
    """
    n = len(items)
    X = out if out is not None else np.empty((n, _N_FEATURES),
                                             dtype=np.float64)
    digits = _DIGITS
    archive = ARCHIVE_EXTENSIONS
    log10 = math.log10
    for i, (tok, summary) in enumerate(items):
        meta = tok.metadata
        kind = summary.kind
        sender = summary.sender
        if sender:
            local, _, domain = sender.rpartition("@")
            if not local:
                local, domain = sender, ""
            s_present = 1.0
            s_local = float(len(local))
            s_domain = float(len(domain))
            s_digits = 0.0
            for c in local:
                if c in digits:
                    s_digits += 1.0
        else:
            s_present = s_local = s_domain = s_digits = 0.0
        subject = meta.subject or ""
        if subject:
            upper = 0
            for c in subject:
                if c.isupper():
                    upper += 1
            upper_frac = upper / len(subject)
        else:
            upper_frac = 0.0
        body = tok.body or ""
        attachments = tok.attachments
        n_rcpt = len(meta.envelope_to)
        reply_to = meta.reply_to
        bag = summary.bag
        X[i] = (
            1.0 if kind == "receiver" else 0.0,
            1.0 if kind == "smtp" else 0.0,
            float(n_rcpt),
            1.0 if n_rcpt > 1 else 0.0,
            s_present,
            s_local,
            s_domain,
            s_digits,
            float(len(subject)),
            float(subject.count("!")),
            upper_frac,
            log10(1.0 + len(body)),
            float(body.count("\n")),
            float(len(attachments)),
            1.0 if any(a.extension in archive for a in attachments)
            else 0.0,
            1.0 if meta.list_unsubscribe else 0.0,
            1.0 if reply_to else 0.0,
            1.0 if reply_to and reply_to != meta.from_field else 0.0,
            1.0 if meta.return_path
            and meta.return_path != meta.envelope_from else 0.0,
            1.0 if meta.sender_field
            and meta.sender_field != meta.from_field else 0.0,
            float(len(meta.received_chain)),
            1.0 if bag is not None else 0.0,
            float(len(bag)) if bag else 0.0,
            1.0,   # content_hash_present: see message_feature_row
        )
    return X
