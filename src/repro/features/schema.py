"""Versioned feature schemas for the learned-detector lane.

The learned classifier (:mod:`repro.learned`) consumes fixed-width
float64 matrices; this module is the single source of truth for what
each column means, on both lanes:

* **domain lane** — one row per registered wild ctypo of the lazy
  ecosystem (:mod:`repro.features.domains`): lexical shape of the typo
  label, the DL-1 edit that produced it (type, position, keyboard
  adjacency, visual cost), rank popularity, and the registration-side
  observables (MX class, nameserver reputation, WHOIS privacy and
  completeness, SMTP support) a scanner actually sees.  Ground truth
  (``DomainState.is_squatting``) is *never* a feature.
* **message lane** — one row per delivered email
  (:mod:`repro.features.messages`): header shape, sender address
  statistics, body/subject statistics, attachment and automation
  fingerprints, built from the stage-A :class:`MessageSummary` plus the
  tokenized header, so featurization rides the classify pipeline's
  existing day-chunk fan-out.  Funnel verdicts are *never* features —
  the learned detector must be comparable against the funnel, not
  stacked on it.

``FEATURE_SCHEMA_VERSION`` is persisted inside every
``repro-typo-model@1`` artifact; a model trained against a different
schema version is rejected with a one-line exit-2 diagnosis instead of
silently scoring garbage.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "DOMAIN_FEATURES",
    "MESSAGE_FEATURES",
    "VOWELS",
    "EDIT_OP_CODES",
]

#: bump when any column list below changes meaning, order, or width
FEATURE_SCHEMA_VERSION = 1

VOWELS = frozenset("aeiou")

#: edit-op small codes shared by both featurizer implementations
EDIT_OP_CODES = {"deletion": 0, "transposition": 1,
                 "substitution": 2, "addition": 3}

#: per-domain feature columns, in matrix order
DOMAIN_FEATURES: Tuple[str, ...] = (
    # lexical / popularity -------------------------------------------------
    "typo_len",                 # characters in the typo label
    "target_len",               # characters in the target label
    "log10_rank",               # log10 of the target's Alexa rank
    "popularity",               # 1 / (1 + log10(rank))
    # the DL-1 edit --------------------------------------------------------
    "op_deletion",
    "op_transposition",
    "op_substitution",
    "op_addition",
    "edit_pos_rel",             # edit index / max(1, target_len - 1)
    "edit_pos_weight",          # position_weight(index, target_len)
    "edit_adjacent",            # keyboard-adjacency of the edit (fat finger)
    "edit_visual",              # visual cost of the edit (quality-law terms)
    # typo-label n-gram / character stats ----------------------------------
    "digit_count",              # digits in the typo label
    "hyphen_count",             # hyphens in the typo label
    "vowel_frac",               # vowels / typo_len
    "target_digit_frac",        # digits / target_len (target label)
    "target_adj_bigram_frac",   # keyboard-adjacent bigrams / (target_len-1)
    # registration observables ---------------------------------------------
    "registered",               # 1.0 when the domain is actually registered
    "mx_none",                  # no explicit MX record
    "mx_parked",                # MX points at a parking host
    "mx_web",                   # MX points at a web-redirect host
    "mx_pool",                  # MX points at a shared squatter pool host
    "mx_self",                  # MX is the domain itself
    "mx_target",                # MX is mx.<target> (defensive registration)
    "has_address",              # bare A record (implicit MX)
    "ns_cesspool",              # nameserver on the cesspool list
    "ns_normal",                # nameserver on the mainstream list
    "ns_target",                # nameserver is ns.<target> (defensive)
    "private_whois",            # WHOIS behind a privacy proxy
    "whois_fields_frac",        # filled WHOIS fields / 6
    "policy_catch_all",         # recipient policy: accept anything
    "policy_reject",            # recipient policy: reject unknown users
    "policy_domain",            # recipient policy: domain-specific users
    "support_no_dns",
    "support_no_info",
    "support_no_email",
    "support_plain",
    "support_starttls_errors",
    "support_starttls_ok",
)

#: per-message feature columns, in matrix order
MESSAGE_FEATURES: Tuple[str, ...] = (
    "kind_receiver",            # header class: receiver-typo candidate
    "kind_smtp",                # header class: smtp-typo candidate
    "n_recipients",             # envelope recipient count
    "multi_recipient",          # more than one envelope recipient
    "sender_present",           # a sender address was extractable
    "sender_local_len",         # characters before the @
    "sender_domain_len",        # characters after the @
    "sender_local_digits",      # digits in the local part
    "subject_len",
    "subject_exclaims",         # '!' count in the subject
    "subject_upper_frac",       # uppercase fraction of the subject
    "body_len_log",             # log10(1 + len(body))
    "body_lines",               # newline count in the body
    "n_attachments",
    "has_archive_attachment",   # ZIP/RAR (the paper's hard spam rule)
    "has_list_unsubscribe",     # bulk-mail fingerprint
    "has_reply_to",
    "reply_to_differs",         # Reply-To present and != From
    "return_path_differs",      # Return-Path present and != envelope From
    "sender_field_differs",     # Sender header present and != From
    "received_chain_len",       # relay hops recorded
    "bag_present",              # stage A extracted a bag of words
    "bag_size",                 # |bag| (0 when absent)
    "content_hash_present",     # stage A extracted a content hash
)
