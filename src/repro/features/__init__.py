"""Columnar feature engineering for the learned-detector lane.

Two lanes, mirroring the two pipelines they ride:

* :mod:`repro.features.domains` — per-domain matrices extracted from the
  scan pipeline's world walk (packed rows from
  :meth:`WorldModel.featurize_ranks`, unpacked with vector shifts).
* :mod:`repro.features.messages` — per-message matrices built from the
  classify pipeline's stage-A summaries, so featurization fans over the
  existing day-chunk workers.

:mod:`repro.features.schema` is the single source of truth for column
meaning and order on both lanes.
"""

from repro.features.domains import (
    DomainBlock,
    DomainSweep,
    FeaturizeShardTask,
    block_matrix,
    block_ranks,
    domain_feature_row,
    featurize_domains,
    run_sharded_featurize,
    state_feature_row,
)
from repro.features.messages import (
    message_feature_matrix,
    message_feature_row,
)
from repro.features.schema import (
    DOMAIN_FEATURES,
    FEATURE_SCHEMA_VERSION,
    MESSAGE_FEATURES,
)

__all__ = [
    "DOMAIN_FEATURES",
    "MESSAGE_FEATURES",
    "FEATURE_SCHEMA_VERSION",
    "DomainBlock",
    "DomainSweep",
    "FeaturizeShardTask",
    "block_matrix",
    "block_ranks",
    "domain_feature_row",
    "state_feature_row",
    "featurize_domains",
    "run_sharded_featurize",
    "message_feature_matrix",
    "message_feature_row",
]
