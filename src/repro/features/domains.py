"""Per-domain feature matrices from the scan pipeline (the domain lane).

:meth:`WorldModel.featurize_ranks` walks the same registration + wild-state
law as :meth:`scan_ranks` and emits one ``(packed int64, visual float)``
pair per registered wild ctypo, batched into blocks.  This module is the
columnar half of that engine: it keeps blocks in a compact numpy form
(~16 bytes/row, so a full 1M-rank universe stays resident), unpacks the
49-bit words with vector shifts, and assembles the float64 feature matrix
of :data:`~repro.features.schema.DOMAIN_FEATURES` one block at a time —
memory stays bounded by the block size, never the sweep size.

Two independent implementations of the row law exist on purpose:

* :func:`block_matrix` — the vectorized unpacker (the hot path);
* :func:`domain_feature_row` / :func:`state_feature_row` — a scalar
  reference that recomputes every feature from plain strings and a
  :class:`~repro.ecosystem.world.DomainState`, leaning on the public
  :mod:`repro.core.distances` kernels.

The hypothesis parity suite pins them against each other row-for-row.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distances import (
    fat_finger_for_edit,
    position_weight,
    qwerty_adjacency,
    visual_distance_for_edit,
)
from repro.core.typogen import split_domain
from repro.ecosystem.internet import InternetConfig
from repro.ecosystem.world import (
    _CESSPOOL_NAMESERVERS,
    _SUPPORT_CODE,
    DomainState,
    FEATURE_PACK_SHIFTS,
    PARKED_MX_HOSTS,
    WEB_MX_HOSTS,
    WorldModel,
)
from repro.features.schema import DOMAIN_FEATURES, VOWELS
from repro.util.perf import PerfRegistry
from repro.util.pool import parallel_map

__all__ = [
    "DomainBlock",
    "DomainSweep",
    "FeaturizeShardTask",
    "block_matrix",
    "block_ranks",
    "domain_feature_row",
    "state_feature_row",
    "featurize_domains",
    "run_sharded_featurize",
]

_COL: Dict[str, int] = {name: i for i, name in enumerate(DOMAIN_FEATURES)}
_N_FEATURES = len(DOMAIN_FEATURES)

_DIGITS = frozenset("0123456789")

#: edit-op feature column by packed op code (0 del, 1 trans, 2 sub, 3 add)
_OP_COLS = (_COL["op_deletion"], _COL["op_transposition"],
            _COL["op_substitution"], _COL["op_addition"])
_OP_NAMES = ("deletion", "transposition", "substitution", "addition")

#: longtail recipient-policy feature column by packed policy code
_POLICY_COLS = (None, _COL["policy_catch_all"], _COL["policy_reject"],
                _COL["policy_domain"])
_POLICY_NAMES = {"catch_all": 1, "reject_unknown": 2, "domain": 3}

_MX_COLS = (_COL["mx_none"], _COL["mx_parked"], _COL["mx_web"],
            _COL["mx_pool"], _COL["mx_self"], _COL["mx_target"])
_NS_COLS = (_COL["ns_cesspool"], _COL["ns_normal"], _COL["ns_target"])
_SUPPORT_COLS = tuple(
    _COL[name] for name in ("support_no_dns", "support_no_info",
                            "support_no_email", "support_plain",
                            "support_starttls_errors",
                            "support_starttls_ok"))

_SH = FEATURE_PACK_SHIFTS


@dataclass(frozen=True)
class DomainBlock:
    """One compact block of the feature sweep (numpy arrays only).

    ``ranks``/``nrows``/``lens``/``tdigit``/``tadj`` run per contributing
    rank; ``packed``/``vis`` run per row, with each rank's rows
    contiguous and ranks ascending.  A rank's rows never straddle a
    block boundary, so concatenating blocks reproduces the row stream
    regardless of where the boundaries fell.
    """

    ranks: np.ndarray    # int64, per rank
    nrows: np.ndarray    # int64, per rank
    lens: np.ndarray     # int64, per rank (target label length)
    tdigit: np.ndarray   # float64, per rank (target digit fraction)
    tadj: np.ndarray     # float64, per rank (target adjacent-bigram frac)
    packed: np.ndarray   # int64, per row
    vis: np.ndarray      # float64, per row (edit visual cost)

    @property
    def n_rows(self) -> int:
        return int(self.packed.shape[0])


def _compact(raw: tuple) -> DomainBlock:
    rank_l, nrows_l, len_l, tdigit_l, tadj_l, packed_l, vis_l = raw
    return DomainBlock(
        ranks=np.asarray(rank_l, dtype=np.int64),
        nrows=np.asarray(nrows_l, dtype=np.int64),
        lens=np.asarray(len_l, dtype=np.int64),
        tdigit=np.asarray(tdigit_l, dtype=np.float64),
        tadj=np.asarray(tadj_l, dtype=np.float64),
        packed=np.asarray(packed_l, dtype=np.int64),
        vis=np.asarray(vis_l, dtype=np.float64))


def block_ranks(block: DomainBlock) -> np.ndarray:
    """Per-row rank vector (int64) for one block."""
    return np.repeat(block.ranks, block.nrows)


def block_matrix(block: DomainBlock) -> Tuple[np.ndarray, np.ndarray]:
    """Unpack one block into ``(X, y)`` — the vectorized featurizer.

    ``X`` is ``(n_rows, len(DOMAIN_FEATURES))`` float64 in schema order;
    ``y`` is the squatter ground-truth label (never a feature).  Pure
    vector shifts and masks — no per-row Python.
    """
    packed = block.packed
    n = packed.shape[0]
    X = np.zeros((n, _N_FEATURES), dtype=np.float64)
    if n == 0:
        return X, np.zeros(0, dtype=np.float64)

    op = (packed >> _SH["op"]) & 3
    index = (packed >> _SH["index"]) & 63
    digits = (packed >> _SH["digits"]) & 63
    hyphens = (packed >> _SH["hyphens"]) & 63
    vowels = (packed >> _SH["vowels"]) & 63
    mx = (packed >> _SH["mx"]) & 7
    addr = (packed >> _SH["addr"]) & 1
    ns = (packed >> _SH["ns"]) & 3
    private = (packed >> _SH["private"]) & 1
    fields = (packed >> _SH["fields"]) & 7
    policy = (packed >> _SH["policy"]) & 3
    support = (packed >> _SH["support"]) & 7
    squat = (packed >> _SH["squat"]) & 1
    adjacent = (packed >> _SH["adjacent"]) & 1

    tlen = np.repeat(block.lens, block.nrows)
    rank = np.repeat(block.ranks, block.nrows).astype(np.float64)

    typo_len = tlen + (op == 3).astype(np.int64) - (op == 0).astype(np.int64)
    X[:, _COL["typo_len"]] = typo_len
    X[:, _COL["target_len"]] = tlen
    log_rank = np.log10(rank)
    X[:, _COL["log10_rank"]] = log_rank
    X[:, _COL["popularity"]] = 1.0 / (1.0 + log_rank)

    for code, col in enumerate(_OP_COLS):
        X[:, col] = op == code
    denom = np.maximum(1, tlen - 1).astype(np.float64)
    X[:, _COL["edit_pos_rel"]] = index / denom
    rel = index / denom
    interior = 0.85 + 0.3 * np.abs(rel - 0.5)
    posw = np.where(tlen <= 1, 1.0,
                    np.where(index == 0, 1.3,
                             np.where(index >= tlen - 1, 1.15, interior)))
    X[:, _COL["edit_pos_weight"]] = posw
    X[:, _COL["edit_adjacent"]] = adjacent
    X[:, _COL["edit_visual"]] = block.vis

    X[:, _COL["digit_count"]] = digits
    X[:, _COL["hyphen_count"]] = hyphens
    X[:, _COL["vowel_frac"]] = vowels / np.maximum(1, typo_len)
    X[:, _COL["target_digit_frac"]] = np.repeat(block.tdigit, block.nrows)
    X[:, _COL["target_adj_bigram_frac"]] = np.repeat(block.tadj, block.nrows)

    X[:, _COL["registered"]] = 1.0
    for code, col in enumerate(_MX_COLS):
        X[:, col] = mx == code
    X[:, _COL["has_address"]] = addr
    for code, col in enumerate(_NS_COLS):
        X[:, col] = ns == code
    X[:, _COL["private_whois"]] = private
    X[:, _COL["whois_fields_frac"]] = fields / 6.0
    for code in (1, 2, 3):
        X[:, _POLICY_COLS[code]] = policy == code
    for code, col in enumerate(_SUPPORT_COLS):
        X[:, col] = support == code

    return X, squat.astype(np.float64)


# -- scalar reference ----------------------------------------------------------


def domain_feature_row(typo_label: str, target_label: str, rank: int,
                       edit_op: str, edit_index: int, edit_char: str,
                       *,
                       registered: bool = True,
                       mx_domain: Optional[str] = None,
                       has_address: bool = False,
                       nameserver: str = "",
                       private_whois: bool = False,
                       whois_fields_filled: int = 0,
                       longtail_policy: Optional[str] = None,
                       support: object = None,
                       target_domain: str = "",
                       typo_domain: str = "") -> np.ndarray:
    """One feature row from plain strings — the scalar reference law.

    Computes every :data:`DOMAIN_FEATURES` column directly from the typo
    and target labels plus the registration observables, using the public
    :mod:`repro.core.distances` kernels for the edit features.  Tolerant
    of arbitrary (junk, unicode) labels: character classes are explicit
    ASCII sets and lengths are plain ``len``.
    """
    row = np.zeros(_N_FEATURES, dtype=np.float64)
    tlen = len(target_label)
    typo_len = len(typo_label)
    row[_COL["typo_len"]] = typo_len
    row[_COL["target_len"]] = tlen
    log_rank = float(np.log10(rank))
    row[_COL["log10_rank"]] = log_rank
    row[_COL["popularity"]] = 1.0 / (1.0 + log_rank)

    row[_OP_COLS[_OP_NAMES.index(edit_op)]] = 1.0
    row[_COL["edit_pos_rel"]] = edit_index / max(1, tlen - 1)
    row[_COL["edit_pos_weight"]] = position_weight(edit_index, tlen)
    row[_COL["edit_adjacent"]] = 1.0 if fat_finger_for_edit(
        target_label, edit_op, edit_index, edit_char) == 1 else 0.0
    row[_COL["edit_visual"]] = visual_distance_for_edit(
        target_label, edit_op, edit_index, edit_char)

    row[_COL["digit_count"]] = sum(c in _DIGITS for c in typo_label)
    row[_COL["hyphen_count"]] = typo_label.count("-")
    row[_COL["vowel_frac"]] = (sum(c in VOWELS for c in typo_label)
                               / max(1, typo_len))
    row[_COL["target_digit_frac"]] = (sum(c in _DIGITS
                                          for c in target_label)
                                      / max(1, tlen))
    adj_pairs = sum(
        1 for a, b in zip(target_label, target_label[1:])
        if b in qwerty_adjacency(a))
    row[_COL["target_adj_bigram_frac"]] = (adj_pairs / (tlen - 1)
                                           if tlen > 1 else 0.0)

    row[_COL["registered"]] = 1.0 if registered else 0.0
    if registered:
        if mx_domain is None:
            mx_code = 0
        elif mx_domain in PARKED_MX_HOSTS:
            mx_code = 1
        elif mx_domain in WEB_MX_HOSTS:
            mx_code = 2
        elif typo_domain and mx_domain == typo_domain:
            mx_code = 4
        elif target_domain and mx_domain == f"mx.{target_domain}":
            mx_code = 5
        else:
            mx_code = 3          # shared squatter pool host
        row[_MX_COLS[mx_code]] = 1.0
        row[_COL["has_address"]] = 1.0 if has_address else 0.0
        if target_domain and nameserver == f"ns.{target_domain}":
            ns_code = 2
        elif nameserver in _CESSPOOL_NAMESERVERS:
            ns_code = 0
        else:
            ns_code = 1
        row[_NS_COLS[ns_code]] = 1.0
        row[_COL["private_whois"]] = 1.0 if private_whois else 0.0
        row[_COL["whois_fields_frac"]] = whois_fields_filled / 6.0
        if longtail_policy is not None:
            row[_POLICY_COLS[_POLICY_NAMES[longtail_policy]]] = 1.0
        if support is not None:
            row[_SUPPORT_COLS[_SUPPORT_CODE[support]]] = 1.0
    return row


def state_feature_row(state: DomainState) -> np.ndarray:
    """Scalar reference row for one world :class:`DomainState`."""
    target_label, _ = split_domain(state.target)
    typo_label, _ = split_domain(state.domain)
    return domain_feature_row(
        typo_label, target_label, state.rank, state.edit_op,
        state.edit_index, state.edit_char,
        registered=True,
        mx_domain=state.mx_domain,
        has_address=state.has_address,
        nameserver=state.nameserver,
        private_whois=state.private_whois,
        whois_fields_filled=state.whois_fields_filled,
        longtail_policy=state.longtail_policy,
        support=state.support,
        target_domain=state.target,
        typo_domain=state.domain)


# -- sweep drivers -------------------------------------------------------------


@dataclass
class DomainSweep:
    """A completed featurize sweep: compact blocks + totals."""

    start_rank: int
    stop_rank: int
    max_rank: int
    blocks: List[DomainBlock] = field(default_factory=list)
    n_rows: int = 0
    n_excluded: int = 0
    generated: int = 0

    def digest(self) -> str:
        """Block-boundary-independent SHA-256 of the row stream.

        Three field-wise hashers (per-row rank, packed word, visual
        cost) make the digest invariant to where block and shard
        boundaries fell, so ``serial == sharded`` holds byte-for-byte.
        """
        h_rank = hashlib.sha256()
        h_packed = hashlib.sha256()
        h_vis = hashlib.sha256()
        for block in self.blocks:
            h_rank.update(block_ranks(block).tobytes())
            h_packed.update(block.packed.tobytes())
            h_vis.update(block.vis.tobytes())
        return hashlib.sha256(
            h_rank.digest() + h_packed.digest() + h_vis.digest()
        ).hexdigest()

    def matrices(self):
        """Yield ``(X, y, ranks)`` per block — bounded-memory iteration."""
        for block in self.blocks:
            X, y = block_matrix(block)
            yield X, y, block_ranks(block)


def featurize_domains(seed: int, start_rank: int, stop_rank: int, *,
                      max_rank: Optional[int] = None,
                      config: Optional[InternetConfig] = None,
                      churn: Sequence[Tuple[int, int]] = (),
                      block_records: int = 65536,
                      world: Optional[WorldModel] = None,
                      perf: Optional[PerfRegistry] = None) -> DomainSweep:
    """Featurize ranks ``[start_rank, stop_rank)`` of the lazy world."""
    max_rank = max_rank or (stop_rank - 1)
    if world is None:
        world = WorldModel(seed, config,
                           churn=dict(churn) if churn else None)
    sweep = DomainSweep(start_rank=start_rank, stop_rank=stop_rank,
                        max_rank=max_rank)
    append = sweep.blocks.append
    rows, excluded, generated = world.featurize_ranks(
        start_rank, stop_rank, max_rank=max_rank,
        on_block=lambda raw: append(_compact(raw)),
        block_records=block_records, perf=perf)
    sweep.n_rows = rows
    sweep.n_excluded = excluded
    sweep.generated = generated
    return sweep


@dataclass(frozen=True)
class FeaturizeShardTask:
    """One worker's share of a sharded feature sweep (picklable)."""

    seed: int
    start_rank: int            # inclusive
    stop_rank: int             # exclusive
    #: whole-universe size — identical across shards or the
    #: target-collision exclusions diverge from the serial sweep
    max_rank: int
    config: Optional[InternetConfig] = None
    churn: Tuple[Tuple[int, int], ...] = ()
    block_records: int = 65536


def run_featurize_shard(task: FeaturizeShardTask) -> DomainSweep:
    """Featurize one rank range (module-level so pools ship it by name)."""
    return featurize_domains(
        task.seed, task.start_rank, task.stop_rank,
        max_rank=task.max_rank, config=task.config, churn=task.churn,
        block_records=task.block_records)


def run_sharded_featurize(seed: int, max_rank: int,
                          jobs: Optional[int] = None,
                          config: Optional[InternetConfig] = None,
                          churn: Sequence[Tuple[int, int]] = (),
                          block_records: int = 65536,
                          perf: Optional[PerfRegistry] = None
                          ) -> DomainSweep:
    """Featurize ranks ``1..max_rank``, fanned over worker processes.

    Shards split at rank boundaries and a rank's rows never straddle
    blocks, so concatenating shard blocks in shard order reproduces the
    serial row stream exactly — :meth:`DomainSweep.digest` is identical
    at any ``jobs``.
    """
    from repro.experiment.parallel import partition_ranks

    shard_count = jobs if jobs and jobs > 1 else 1
    tasks = [FeaturizeShardTask(seed=seed, start_rank=start, stop_rank=stop,
                                max_rank=max_rank, config=config,
                                churn=tuple(churn),
                                block_records=block_records)
             for start, stop in partition_ranks(max_rank, shard_count)]
    if shard_count == 1:
        shards = [run_featurize_shard(tasks[0])]
    else:
        shards = parallel_map(run_featurize_shard, tasks, jobs=jobs,
                              perf=perf)
    merged = DomainSweep(start_rank=1, stop_rank=max_rank + 1,
                         max_rank=max_rank)
    for shard in shards:
        merged.blocks.extend(shard.blocks)
        merged.n_rows += shard.n_rows
        merged.n_excluded += shard.n_excluded
        merged.generated += shard.generated
    return merged
