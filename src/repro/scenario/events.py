"""Typed ecosystem events for living-internet scenarios.

A scenario is a seeded timeline of :class:`EcosystemEvent`s — the
discrete things that happen to the email-typosquatting ecosystem while a
study runs:

* ``churn_burst`` — a registration/expiration/re-registration wave over
  a rank window (a registrar sweep, a bulk drop-catch).  Each rank in
  the window churns independently with probability ``rate``.
* ``squatter_campaign`` — an adaptive squatter cohort re-weights its
  typo model against the deployed detector: the campaign draws a pool
  of candidate lure messages, scores them with the incumbent model, and
  preferentially keeps the ones that *evade* it (``evasion_bias``
  controls how aggressively).  With ``retrain=True`` the campaign also
  schedules the drift-resilient model lifecycle (monitor → shadow
  retrain → gated promote/rollback) at the event boundary.
* ``defensive_registration`` — head targets defensively register their
  own typo space over ``[rank_lo, rank_hi]``; the affected ranks churn
  (their typo grids re-roll under defensive ownership pressure) and are
  recorded as *defended* for observation metrics.

Every event is a pure value object; all randomness it implies is drawn
downstream as hashes of ``(scenario seed, event name, rank/day)``, never
from mutable RNG state — so a (seed, scenario) pair replays
byte-identically at any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.errors import ConfigError

__all__ = ["EVENT_KINDS", "EcosystemEvent"]

#: the closed set of event kinds the driver understands
EVENT_KINDS: Tuple[str, ...] = (
    "churn_burst",
    "squatter_campaign",
    "defensive_registration",
)


@dataclass(frozen=True)
class EcosystemEvent:
    """One typed scenario event, applied at the start of ``day``.

    ``day`` is 1-based and relative to the study/scenario start.  The
    rank window ``[rank_lo, rank_hi]`` is inclusive; ``rate`` is the
    per-rank churn probability for world-touching kinds.  Campaign
    events add ``pool_size`` (how many candidate lure messages the
    cohort drafts), ``evasion_bias`` (the fraction of the kept window
    biased toward detector-evading drafts), and ``retrain`` (whether
    the defender's model lifecycle runs at this boundary).
    """

    kind: str
    day: int
    name: str
    rank_lo: int = 1
    rank_hi: int = 1
    rate: float = 0.0
    pool_size: int = 0
    evasion_bias: float = 0.0
    retrain: bool = False

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigError(
                f"unknown scenario event kind {self.kind!r}; "
                f"expected one of {', '.join(EVENT_KINDS)}")
        if not self.name:
            raise ConfigError("scenario event name must be non-empty")
        if self.day < 1:
            raise ConfigError("scenario event days are 1-based")
        if self.rank_lo < 1 or self.rank_hi < self.rank_lo:
            raise ConfigError("need 1 <= rank_lo <= rank_hi")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError("event rate must be in [0, 1]")
        if self.pool_size < 0:
            raise ConfigError("pool_size must be non-negative")
        if not 0.0 <= self.evasion_bias <= 1.0:
            raise ConfigError("evasion_bias must be in [0, 1]")
        if self.kind == "squatter_campaign" and self.pool_size == 0:
            raise ConfigError(
                "squatter_campaign events need pool_size > 0")

    @property
    def touches_world(self) -> bool:
        """Whether this event churns world ranks (re-keys typo grids)."""
        return self.kind in ("churn_burst", "defensive_registration") \
            and self.rate > 0.0

    def churned_ranks(self, seed: int) -> List[int]:
        """Ranks this event churns under ``seed`` — the same hash law
        the compiled :class:`~repro.ecosystem.delta.WorldEvent` uses,
        so driver bookkeeping and world evolution always agree."""
        from repro.ecosystem.delta import WorldEvent

        if not self.touches_world:
            return []
        return WorldEvent(name=self.name, day=self.day,
                          rank_lo=self.rank_lo, rank_hi=self.rank_hi,
                          rate=self.rate).churned_ranks(seed)

    def to_dict(self) -> Dict:
        """JSON-clean projection (stable key order via canonical dump)."""
        return {
            "kind": self.kind,
            "day": self.day,
            "name": self.name,
            "rank_lo": self.rank_lo,
            "rank_hi": self.rank_hi,
            "rate": self.rate,
            "pool_size": self.pool_size,
            "evasion_bias": self.evasion_bias,
            "retrain": self.retrain,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "EcosystemEvent":
        """Inverse of :meth:`to_dict`; unknown kinds raise ConfigError."""
        if not isinstance(payload, dict):
            raise ConfigError("scenario event must be an object")
        try:
            return cls(
                kind=str(payload["kind"]),
                day=int(payload["day"]),
                name=str(payload["name"]),
                rank_lo=int(payload.get("rank_lo", 1)),
                rank_hi=int(payload.get("rank_hi", 1)),
                rate=float(payload.get("rate", 0.0)),
                pool_size=int(payload.get("pool_size", 0)),
                evasion_bias=float(payload.get("evasion_bias", 0.0)),
                retrain=bool(payload.get("retrain", False)))
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(
                f"malformed scenario event ({error})") from error
