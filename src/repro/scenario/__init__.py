"""Living-internet scenarios: seeded event timelines + the step driver.

``Scenario`` is the persistable artifact (``repro-scenario@1``),
``EcosystemEvent`` the typed events it sequences, ``ScenarioDriver`` the
step/auto-run loop that walks the timeline and samples observation
metrics at event boundaries.  Every draw downstream of a scenario is a
pure hash of ``(seed, event, day)``, so ``(seed, scenario)`` replays
byte-identically at any ``--jobs``.
"""

from repro.scenario.driver import BUILTIN_METRICS, ScenarioDriver
from repro.scenario.events import EVENT_KINDS, EcosystemEvent
from repro.scenario.timeline import (
    SCENARIO_FORMAT,
    Scenario,
    drift_drill_scenario,
)

__all__ = [
    "BUILTIN_METRICS",
    "EVENT_KINDS",
    "SCENARIO_FORMAT",
    "EcosystemEvent",
    "Scenario",
    "ScenarioDriver",
    "drift_drill_scenario",
]
