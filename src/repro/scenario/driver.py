"""Step/auto-run driver that walks a scenario's timeline.

The driver owns the *living-internet* loop: each :meth:`ScenarioDriver.step`
advances one day, applies that day's events (world churn is delegated to
the compiled :class:`~repro.ecosystem.delta.WorldEvolution`; campaign and
defensive bookkeeping is folded here), and samples every observation
metric at the event boundary.  ``run(days)`` is the auto-run loop.

Everything the driver accumulates is a pure fold over the event
timeline, so ``state_dict()`` / ``restore_state()`` round-trip through
the study checkpoint and a resumed run continues byte-identically —
``timeline_digest()`` pins the whole observed trajectory (day-by-day
samples, defended ranks, campaign activations) to ``(seed, scenario)``.

User-defined metrics are callables ``metric(driver, day) -> value``
registered at construction; built-ins are selected by name through the
scenario's ``metrics`` tuple:

* ``registered_fraction`` — fraction of the rank universe whose typo
  grid has re-rolled at least once (cumulative churn coverage),
* ``defended_ranks`` — how many ranks defensive registrations cover,
* ``active_campaigns`` — squatter campaigns launched so far.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional

from repro.scenario.timeline import Scenario
from repro.util.errors import ConfigError

__all__ = ["BUILTIN_METRICS", "ScenarioDriver"]


def _registered_fraction(driver: "ScenarioDriver", day: int) -> float:
    generations = driver.evolution.generations(day)
    return len(generations) / driver.scenario.max_rank


def _defended_ranks(driver: "ScenarioDriver", day: int) -> int:
    return len(driver.defended)


def _active_campaigns(driver: "ScenarioDriver", day: int) -> int:
    return len(driver.campaigns)


#: name -> callable for the scenario-selectable observation metrics
BUILTIN_METRICS: Dict[str, Callable[["ScenarioDriver", int], object]] = {
    "registered_fraction": _registered_fraction,
    "defended_ranks": _defended_ranks,
    "active_campaigns": _active_campaigns,
}


class ScenarioDriver:
    """Walks a :class:`Scenario` one day at a time.

    ``extra_metrics`` maps metric names to user callables sampled at
    every event boundary alongside the scenario's built-in selection;
    names must not collide with built-ins the scenario already selects.
    """

    def __init__(self, scenario: Scenario, *,
                 extra_metrics: Optional[
                     Dict[str, Callable[["ScenarioDriver", int],
                                        object]]] = None) -> None:
        self.scenario = scenario
        self.evolution = scenario.world_evolution()
        self._metrics: Dict[str, Callable] = {}
        for name in scenario.metrics:
            if name not in BUILTIN_METRICS:
                raise ConfigError(
                    f"unknown scenario metric {name!r}; built-ins: "
                    f"{', '.join(sorted(BUILTIN_METRICS))}")
            self._metrics[name] = BUILTIN_METRICS[name]
        for name, metric in (extra_metrics or {}).items():
            if name in self._metrics:
                raise ConfigError(f"metric {name!r} registered twice")
            self._metrics[name] = metric
        self.day = 0
        #: sorted defended ranks (defensive_registration coverage)
        self.defended: List[int] = []
        #: names of squatter campaigns launched so far, in firing order
        self.campaigns: List[str] = []
        #: one record per day stepped: events fired + metric samples
        self.samples: List[Dict] = []

    # -- the step / auto-run loop -------------------------------------

    def step(self) -> Dict:
        """Advance one day; apply its events; sample metrics.

        Returns the day's sample record (also appended to
        :attr:`samples`).  World churn needs no action here — the
        compiled evolution exposes it to whoever holds world state
        (the study runner hot-swaps its index off ``evolution``).
        """
        self.day += 1
        fired = self.scenario.events_on(self.day)
        for event in fired:
            if event.kind == "defensive_registration":
                covered = set(self.defended)
                covered.update(event.churned_ranks(self.scenario.seed))
                self.defended = sorted(covered)
            elif event.kind == "squatter_campaign":
                self.campaigns.append(event.name)
        sample = {
            "day": self.day,
            "events": [event.name for event in fired],
            "metrics": {name: metric(self, self.day)
                        for name, metric in sorted(self._metrics.items())},
        }
        self.samples.append(sample)
        return sample

    def run(self, days: int) -> List[Dict]:
        """Auto-run ``days`` steps; returns the new sample records."""
        if days < 0:
            raise ValueError("days must be non-negative")
        return [self.step() for _ in range(days)]

    # -- replay identity ----------------------------------------------

    def timeline_digest(self) -> str:
        """SHA-256 over the observed trajectory so far.

        Covers the scenario identity plus every day's sample — two
        drivers agree iff they walked the same (seed, scenario) to the
        same day and observed the same metrics.
        """
        payload = json.dumps(
            {"scenario": self.scenario.digest(), "day": self.day,
             "defended": self.defended, "campaigns": self.campaigns,
             "samples": self.samples},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- checkpoint plumbing ------------------------------------------

    def state_dict(self) -> Dict:
        """JSON-clean snapshot for the study checkpoint."""
        return {
            "day": self.day,
            "defended": list(self.defended),
            "campaigns": list(self.campaigns),
            "samples": [dict(sample) for sample in self.samples],
        }

    def restore_state(self, state: Dict) -> None:
        self.day = int(state["day"])
        self.defended = [int(rank) for rank in state["defended"]]
        self.campaigns = [str(name) for name in state["campaigns"]]
        self.samples = [dict(sample) for sample in state["samples"]]
