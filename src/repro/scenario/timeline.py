"""The ``Scenario`` artifact: a seeded, persistable event timeline.

A :class:`Scenario` bundles a seed, a rank universe, background churn,
an ordered tuple of :class:`~repro.scenario.events.EcosystemEvent`s, and
the names of observation metrics to sample at event boundaries.  It is
the unit the CLI passes around (``study --scenario scenario.json``), so
it follows the repo's artifact discipline:

* canonical JSON (sorted keys, tight separators) + SHA-256 self-digest,
* atomic save (tmp + flush + fsync + rename),
* a format tag (``repro-scenario@1``) validated on load, and a load
  error taxonomy the doctor maps to exit codes — torn/corrupt bytes →
  :class:`CheckpointCorruptError` (exit 3), wrong format →
  :class:`CheckpointMismatchError` (exit 3), an unknown event kind →
  :class:`ConfigError` (exit 2, one line).

``world_evolution()`` compiles the world-touching events into a
:class:`~repro.ecosystem.delta.WorldEvolution`, the duck-typed churn
schedule the risk index and study runner evolve the world with.  An
empty scenario compiles to a churn-free evolution whose ``generations``
map is always ``{}`` — byte-identical to today's static world.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.ecosystem.delta import WorldEvent, WorldEvolution
from repro.scenario.events import EcosystemEvent
from repro.util.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    ConfigError,
)

__all__ = ["SCENARIO_FORMAT", "Scenario", "drift_drill_scenario"]

#: artifact format tag; bump when the on-disk schema changes
SCENARIO_FORMAT = "repro-scenario@1"


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """A seeded timeline of ecosystem events over ``1..max_rank``.

    ``metrics`` names the built-in observation metrics the driver
    samples at every event boundary (see
    :data:`~repro.scenario.driver.BUILTIN_METRICS`); callers can add
    their own callables at drive time.  ``churn_rate`` is the
    background daily churn applied between events (0 = quiescent).
    """

    seed: int
    name: str
    max_rank: int
    events: Tuple[EcosystemEvent, ...] = ()
    churn_rate: float = 0.0
    metrics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_rank < 1:
            raise ConfigError("scenario max_rank must be >= 1")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ConfigError("scenario churn_rate must be in [0, 1]")
        for event in self.events:
            if event.rank_hi > self.max_rank:
                raise ConfigError(
                    f"event {event.name!r} reaches rank {event.rank_hi} "
                    f"beyond scenario max_rank {self.max_rank}")
        names = [event.name for event in self.events]
        if len(set(names)) != len(names):
            raise ConfigError("scenario event names must be unique")

    @property
    def is_empty(self) -> bool:
        """True when the scenario leaves the world fully static."""
        return not self.events and self.churn_rate == 0.0

    def events_on(self, day: int) -> Tuple[EcosystemEvent, ...]:
        """Events firing on ``day`` (1-based), in timeline order."""
        return tuple(event for event in self.events if event.day == day)

    def last_event_day(self) -> int:
        return max((event.day for event in self.events), default=0)

    def world_evolution(self) -> WorldEvolution:
        """Compile world-touching events into a churn schedule.

        Campaign events do not churn ranks (they shift the *message*
        distribution, not the registration landscape), so only
        churn bursts and defensive registrations become
        :class:`WorldEvent`s.
        """
        world_events = tuple(
            WorldEvent(name=event.name, day=event.day,
                       rank_lo=event.rank_lo, rank_hi=event.rank_hi,
                       rate=event.rate)
            for event in self.events if event.touches_world)
        return WorldEvolution(seed=self.seed, max_rank=self.max_rank,
                              daily_rate=self.churn_rate,
                              events=world_events)

    # -- persistence --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format": SCENARIO_FORMAT,
            "seed": self.seed,
            "name": self.name,
            "max_rank": self.max_rank,
            "churn_rate": self.churn_rate,
            "metrics": list(self.metrics),
            "events": [event.to_dict() for event in self.events],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical payload — the replay identity."""
        return hashlib.sha256(
            _canonical(self.to_dict()).encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        payload = self.to_dict()
        payload["digest"] = self.digest()
        return _canonical(payload)

    def save(self, path: Union[str, Path]) -> None:
        """Atomically persist the scenario (tmp + flush + fsync + rename)."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, payload: Dict) -> "Scenario":
        if not isinstance(payload, dict):
            raise ConfigError("scenario payload must be an object")
        try:
            events = tuple(EcosystemEvent.from_dict(entry)
                           for entry in payload.get("events", []))
            return cls(seed=int(payload["seed"]),
                       name=str(payload["name"]),
                       max_rank=int(payload["max_rank"]),
                       events=events,
                       churn_rate=float(payload.get("churn_rate", 0.0)),
                       metrics=tuple(str(metric) for metric
                                     in payload.get("metrics", [])))
        except ConfigError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(f"malformed scenario ({error})") from error

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        """Load and validate a scenario written by :meth:`save`.

        Unreadable bytes or a digest mismatch raise
        :class:`CheckpointCorruptError`; a wrong format tag raises
        :class:`CheckpointMismatchError`; a structurally sound file
        with an unknown event kind raises :class:`ConfigError` (the
        doctor's one-line exit-2 path).
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                raise ValueError("scenario root is not an object")
        except (OSError, ValueError, UnicodeDecodeError) as error:
            raise CheckpointCorruptError(
                f"scenario {path} is unreadable ({error}); "
                f"re-export it") from error
        if data.get("format") != SCENARIO_FORMAT:
            raise CheckpointMismatchError(
                f"{path} has format {data.get('format')!r}, "
                f"expected {SCENARIO_FORMAT!r}")
        recorded = data.pop("digest", None)
        scenario = cls.from_dict(data)
        if recorded is not None and recorded != scenario.digest():
            raise CheckpointCorruptError(
                f"scenario {path} does not match its recorded digest; "
                f"the file is torn or hand-edited")
        return scenario


def drift_drill_scenario(seed: int, *, max_rank: int = 2000,
                         campaign_day: int = 2,
                         pool_size: int = 600,
                         evasion_bias: float = 0.9) -> Scenario:
    """The canonical end-to-end drift drill.

    Day 1 a churn burst re-rolls part of the tail and head targets
    defensively register; day ``campaign_day`` an adaptive squatter
    campaign re-weights its lures against the deployed detector hard
    enough to trip the drift monitor and schedule a shadow retrain.
    """
    events = (
        EcosystemEvent(kind="churn_burst", day=1, name="burst-tail",
                       rank_lo=max(1, max_rank // 2), rank_hi=max_rank,
                       rate=0.05),
        EcosystemEvent(kind="defensive_registration", day=1,
                       name="defend-head", rank_lo=1,
                       rank_hi=min(50, max_rank), rate=0.5),
        EcosystemEvent(kind="squatter_campaign", day=campaign_day,
                       name="adaptive-campaign", rank_lo=1,
                       rank_hi=max_rank, pool_size=pool_size,
                       evasion_bias=evasion_bias, retrain=True),
    )
    return Scenario(seed=seed, name="drift-drill", max_rank=max_rank,
                    events=events,
                    metrics=("registered_fraction", "defended_ranks",
                             "active_campaigns"))
