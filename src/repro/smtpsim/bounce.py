"""Delivery status notifications (bounces), RFC 3464 style.

When an MTA permanently fails to deliver, it mails a DSN back to the
envelope sender from ``MAILER-DAEMON`` with a null reverse-path.  Two
places in the study meet these messages: reflection-typo streams contain
service bounces (funnel Layer 4 keys on "bounce" senders), and the honey
probe campaign counts bounces as their own outcome class (Table 5).
"""

from __future__ import annotations

from typing import Optional

from repro.smtpsim.client import SendResult, SendStatus
from repro.smtpsim.message import EmailMessage

__all__ = ["make_bounce_message", "is_bounce_message"]

_DSN_TEMPLATE = """This is the mail system at host {reporting_host}.

I'm sorry to have to inform you that your message could not
be delivered to one or more recipients.

<{failed_recipient}>: {diagnostic}

------ This is a copy of the message headers. ------

{original_headers}"""


def make_bounce_message(original: EmailMessage, failed_recipient: str,
                        reporting_host: str,
                        diagnostic: str = "550 user unknown",
                        timestamp: float = 0.0) -> EmailMessage:
    """Build the DSN an MTA would return for a failed delivery.

    The bounce goes to the original envelope sender; its own envelope
    sender is the null reverse-path (so bounces never bounce), and its
    From is ``MAILER-DAEMON@<reporting host>`` — the fingerprint the
    funnel's reflection layer recognises.
    """
    sender = original.envelope_from
    if not sender:
        from_header = original.sender
        sender = from_header.bare if from_header else None
    if not sender:
        raise ValueError("original message has no return address to notify")

    original_headers = "\n".join(f"{key}: {value}"
                                 for key, value in original.headers[:8])
    bounce = EmailMessage(
        body=_DSN_TEMPLATE.format(reporting_host=reporting_host,
                                  failed_recipient=failed_recipient,
                                  diagnostic=diagnostic,
                                  original_headers=original_headers),
    )
    bounce.add_header("From", f"MAILER-DAEMON@{reporting_host}")
    bounce.add_header("To", sender)
    bounce.add_header("Subject", "Undelivered Mail Returned to Sender")
    bounce.add_header("Auto-Submitted", "auto-replied")
    bounce.add_header("Content-Type", "multipart/report; report-type=delivery-status")
    bounce.envelope_from = ""  # RFC 5321 null reverse-path
    bounce.envelope_to = [sender]
    bounce.received_at = timestamp
    return bounce


def bounce_for_result(original: EmailMessage, result: SendResult,
                      reporting_host: str,
                      timestamp: float = 0.0) -> Optional[EmailMessage]:
    """A DSN for a failed send attempt, or None when none would be sent.

    Only permanent rejections (5xx) produce immediate DSNs; timeouts and
    network errors would be retried by a real MTA before any bounce, and
    the study's window makes those eventual bounces irrelevant.
    """
    if result.status is not SendStatus.BOUNCED:
        return None
    diagnostic = (str(result.last_reply) if result.last_reply
                  else "550 delivery failed")
    return make_bounce_message(original, result.recipient, reporting_host,
                               diagnostic=diagnostic, timestamp=timestamp)


def is_bounce_message(message: EmailMessage) -> bool:
    """Recognise a DSN: null reverse-path or a MAILER-DAEMON sender."""
    if message.envelope_from == "":
        return True
    from_field = (message.get_header("From") or "").lower()
    return from_field.startswith("mailer-daemon@")
