"""Simulated SMTP: messages, protocol state machine, servers, clients, network."""

from repro.smtpsim.bounce import (
    bounce_for_result,
    is_bounce_message,
    make_bounce_message,
)
from repro.smtpsim.client import SendResult, SendStatus, SmtpClient
from repro.smtpsim.message import Address, Attachment, EmailMessage, parse_address
from repro.smtpsim.protocol import (
    SMTP_PORTS,
    SmtpReply,
    SmtpSession,
    SmtpState,
    accept_all_policy,
)
from repro.smtpsim.retryqueue import (
    QueuedDelivery,
    RetryPolicy,
    RetryQueue,
    RetryQueueStats,
)
from repro.smtpsim.server import (
    DeliveryCallback,
    FaultGate,
    SmtpServer,
    domain_policy,
)
from repro.smtpsim.transport import (
    ConnectOutcome,
    ConnectResult,
    HostBehavior,
    Network,
)

__all__ = [
    "Address",
    "Attachment",
    "EmailMessage",
    "parse_address",
    "SmtpReply",
    "SmtpSession",
    "SmtpState",
    "SMTP_PORTS",
    "accept_all_policy",
    "SmtpServer",
    "DeliveryCallback",
    "domain_policy",
    "Network",
    "HostBehavior",
    "ConnectOutcome",
    "ConnectResult",
    "SmtpClient",
    "SendResult",
    "SendStatus",
    "make_bounce_message",
    "bounce_for_result",
    "is_bounce_message",
    "FaultGate",
    "RetryPolicy",
    "RetryQueue",
    "RetryQueueStats",
    "QueuedDelivery",
]
