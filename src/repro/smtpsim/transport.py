"""The simulated network between SMTP clients and servers.

A :class:`Network` maps IP addresses to listening :class:`~repro.smtpsim.server.SmtpServer`
instances and injects the failure modes the paper's honey-probe experiment
tabulates (Table 5): connections that time out, that fail with a network
error, or that reach a server which then bounces the mail.  Failure
behaviour is configured per-IP so the ecosystem generator can make some
squatter infrastructure flaky, as observed in the wild.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.util.rand import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.smtpsim.server import SmtpServer

__all__ = ["ConnectOutcome", "ConnectResult", "HostBehavior", "Network"]


class ConnectOutcome(enum.Enum):
    """What happened when a client dialled an IP and port."""
    CONNECTED = "connected"
    TIMEOUT = "timeout"
    NETWORK_ERROR = "network_error"
    REFUSED = "refused"          # nothing listening on the port
    OTHER_ERROR = "other_error"  # TLS negotiation failure and the like


@dataclass(frozen=True)
class ConnectResult:
    outcome: ConnectOutcome
    server: Optional["SmtpServer"] = None
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome is ConnectOutcome.CONNECTED and self.server is not None


@dataclass
class HostBehavior:
    """Stochastic connection behaviour of one IP address.

    Probabilities are evaluated in order (timeout, then network error,
    then other); the remainder connects.  A refused connection happens
    deterministically when no server listens on the port.
    """

    timeout_probability: float = 0.0
    network_error_probability: float = 0.0
    other_error_probability: float = 0.0
    base_latency_seconds: float = 0.05
    #: how long a dialling client waits before declaring the host dead —
    #: a deadline, not a constant, so fault plans can model slow-but-not-
    #: dead hosts alongside truly unreachable ones
    timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        total = (self.timeout_probability + self.network_error_probability
                 + self.other_error_probability)
        if total > 1.0:
            raise ValueError("failure probabilities exceed 1")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")


class Network:
    """IP-address space of the simulated Internet.

    ``attach`` binds a server to an IP; ``connect`` simulates a TCP+SMTP
    connection attempt to ``ip:port``.  Randomness comes from an injected
    :class:`SeededRng` so honey-probe results are reproducible.
    """

    def __init__(self, rng: Optional[SeededRng] = None) -> None:
        self._servers: Dict[str, "SmtpServer"] = {}
        self._behaviors: Dict[str, HostBehavior] = {}
        self._rng = rng or SeededRng(0, name="network")

    def attach(self, ip: str, server: "SmtpServer",
               behavior: Optional[HostBehavior] = None) -> None:
        """Bind a server to an IP, optionally with failure behaviour."""
        if ip in self._servers:
            raise ValueError(f"IP {ip} already in use")
        self._servers[ip] = server
        if behavior is not None:
            self._behaviors[ip] = behavior

    def detach(self, ip: str) -> None:
        """Unbind whatever is at ``ip`` (idempotent)."""
        self._servers.pop(ip, None)
        self._behaviors.pop(ip, None)

    def set_behavior(self, ip: str, behavior: HostBehavior) -> None:
        """Set or replace the connection behaviour of ``ip``."""
        self._behaviors[ip] = behavior

    def server_at(self, ip: str) -> Optional["SmtpServer"]:
        """The server bound at ``ip``, or None."""
        return self._servers.get(ip)

    def listening_ports(self, ip: str) -> tuple:
        """Which SMTP ports answer at this IP (zmap-style banner scan)."""
        server = self._servers.get(ip)
        if server is None:
            return ()
        return tuple(sorted(server.ports))

    _DEFAULT_BEHAVIOR = HostBehavior()

    def connect(self, ip: str, port: int = 25) -> ConnectResult:
        """Attempt a TCP+SMTP connection to ``ip:port``."""
        behavior = self._behaviors.get(ip, self._DEFAULT_BEHAVIOR)
        latency = behavior.base_latency_seconds * self._rng.uniform(0.5, 2.0)

        if self._rng.bernoulli(behavior.timeout_probability):
            return ConnectResult(ConnectOutcome.TIMEOUT,
                                 latency_seconds=behavior.timeout_seconds)
        if self._rng.bernoulli(behavior.network_error_probability):
            return ConnectResult(ConnectOutcome.NETWORK_ERROR,
                                 latency_seconds=latency)

        server = self._servers.get(ip)
        if server is None or port not in server.ports:
            return ConnectResult(ConnectOutcome.REFUSED, latency_seconds=latency)

        if self._rng.bernoulli(behavior.other_error_probability):
            return ConnectResult(ConnectOutcome.OTHER_ERROR,
                                 latency_seconds=latency)
        return ConnectResult(ConnectOutcome.CONNECTED, server=server,
                             latency_seconds=latency)
