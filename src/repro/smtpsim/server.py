"""SMTP servers for the simulated Internet.

Two behaviours matter to the study:

* the **catch-all collector** (the researchers' own servers): accepts any
  RCPT at any subdomain, never relays, hands every accepted message to a
  delivery callback — the paper's Postfix configuration;
* **wild servers** (squatter or legitimate infrastructure): accept or
  bounce according to their recipient policy, optionally with broken
  STARTTLS, which the ecosystem scan observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from repro.smtpsim.message import EmailMessage
from repro.smtpsim.protocol import (
    SMTP_PORTS,
    RcptPolicy,
    SmtpReply,
    SmtpSession,
    accept_all_policy,
)

__all__ = ["SmtpServer", "DeliveryCallback", "FaultGate", "domain_policy"]

DeliveryCallback = Callable[[EmailMessage], None]

#: Inspects a completed DATA transaction and may veto it with a 4yz
#: (tempfail/greylist) or 421 (connection drop) reply instead of the 250.
#: Returning None lets the delivery proceed normally.  Fault plans attach
#: these to the study's VPS servers; a server without a gate behaves
#: exactly as before.
FaultGate = Callable[[SmtpSession, EmailMessage, float], Optional[SmtpReply]]


def domain_policy(accepted_domains: Iterable[str]) -> RcptPolicy:
    """A policy accepting mail only for the given recipient domains."""
    domains = {d.lower() for d in accepted_domains}

    def policy(recipient: str) -> Tuple[bool, str]:
        _, _, domain = recipient.rpartition("@")
        if domain.lower() in domains:
            return True, "OK"
        return False, "relay access denied"

    return policy


@dataclass
class SmtpServer:
    """One SMTP server process bound to an IP by the :class:`Network`.

    ``hostname`` appears in the banner and in the Received header the
    server stamps; the collection analysis relies on that header to verify
    the relaying server matches a registered domain (Layer-1 filtering).
    """

    hostname: str
    ip: str
    ports: Set[int] = field(default_factory=lambda: set(SMTP_PORTS))
    rcpt_policy: RcptPolicy = accept_all_policy
    supports_starttls: bool = True
    starttls_broken: bool = False
    on_delivery: Optional[DeliveryCallback] = None
    #: fault-injection hook: may turn an otherwise-successful DATA
    #: transaction into a 4yz tempfail or 421 drop (see :data:`FaultGate`)
    fault_gate: Optional[FaultGate] = None

    accepted_count: int = 0
    rejected_count: int = 0
    tempfail_count: int = 0

    def open_session(self) -> SmtpSession:
        """Begin a fresh SMTP conversation against this server."""
        return SmtpSession(
            server_hostname=self.hostname,
            rcpt_policy=self.rcpt_policy,
            supports_starttls=self.supports_starttls,
            starttls_broken=self.starttls_broken,
        )

    def receive(self, session: SmtpSession, message: EmailMessage,
                timestamp: float = 0.0) -> SmtpReply:
        """Complete a DATA transaction: stamp, count, deliver.

        The caller must have driven ``session`` to the DATA state; this
        finalises the transaction the way a real server does at
        ``<CRLF>.<CRLF>``.
        """
        # data_payload only advances the state machine — serialising the
        # whole message with to_wire() here would be pure wasted work
        reply = session.data_payload("")
        if not reply.is_success:
            self.rejected_count += 1
            return reply

        if self.fault_gate is not None:
            fault = self.fault_gate(session, message, timestamp)
            if fault is not None:
                # the message is NOT mutated on a tempfail: the sender's
                # retry queue will replay the identical message later
                self.tempfail_count += 1
                return fault

        message.envelope_from = session.envelope_from
        message.envelope_to = list(session.envelope_to)
        if message.received_by_ip is None:
            # first hop wins: the study attributes SMTP-typo mail by the
            # VPS that initially received it, not by later relays
            message.received_by_ip = self.ip
        message.received_at = timestamp
        message.headers.insert(0, (
            "Received",
            f"from {session.client_hostname or 'unknown'} "
            f"by {self.hostname} ({self.ip}); t={timestamp:.0f}"))
        self.accepted_count += 1
        if self.on_delivery is not None:
            self.on_delivery(message)
        return reply
