"""An RFC 5321 §4.5.4 sender-side retry queue.

Real MTAs do not drop mail on a 4yz reply or a transient network error:
they queue the message, retry with (roughly exponential) backoff, and
only after a give-up horizon return a non-delivery DSN to the sender.
The paper's volume figures depend on this behaviour — mail that hit the
collection infrastructure *during* an outage was recovered by the
sender's retries once the infrastructure came back, rather than being
silently lost.

:class:`RetryQueue` reproduces that deterministically: jobs are ordered
by ``(next_attempt, sequence-number)``, delays come from the pure
:meth:`RetryPolicy.delay_for_attempt` schedule, and the give-up DSN is
built by :mod:`repro.smtpsim.bounce`.  The queue never draws randomness,
so a faulted run replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.smtpsim.bounce import is_bounce_message, make_bounce_message
from repro.smtpsim.client import SendResult, SendStatus
from repro.smtpsim.message import EmailMessage

__all__ = ["RetryPolicy", "QueuedDelivery", "RetryQueueStats", "RetryQueue"]


@dataclass(frozen=True)
class RetryPolicy:
    """The sender's retry schedule (RFC 5321 §4.5.4.1, compressed).

    ``delay_for_attempt(n)`` is the wait before retry *n* (1-based):
    ``initial_delay_seconds * backoff_factor ** (n - 1)``.  A message
    older than ``max_queue_seconds`` — or past ``max_attempts`` — gives
    up with a DSN.  The RFC suggests queue lifetimes of 4–5 days; the
    default horizon of two simulated days keeps chaos experiments inside
    the study window while preserving the retry-vs-give-up distinction.
    """

    max_attempts: int = 6
    initial_delay_seconds: float = 900.0
    backoff_factor: float = 3.0
    max_queue_seconds: float = 2 * 86_400.0
    #: also retry connect-level timeouts/network errors (off by default:
    #: the fault-free world's flaky wild hosts must keep today's one-shot
    #: semantics, or the no-chaos byte-identity invariant breaks)
    retry_transport_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_delay_seconds <= 0 or self.backoff_factor < 1:
            raise ValueError("delays must be positive and non-shrinking")
        if self.max_queue_seconds <= 0:
            raise ValueError("max_queue_seconds must be positive")

    def delay_for_attempt(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.initial_delay_seconds * self.backoff_factor ** (attempt - 1)

    def retries(self, status: SendStatus) -> bool:
        """Whether this policy queues a result with the given status."""
        if status is SendStatus.TEMPFAIL:
            return True
        if self.retry_transport_errors:
            return status in (SendStatus.TIMEOUT, SendStatus.NETWORK_ERROR)
        return False

    # -- serialisation (rides along inside FaultPlan JSON) ------------------

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "initial_delay_seconds": self.initial_delay_seconds,
            "backoff_factor": self.backoff_factor,
            "max_queue_seconds": self.max_queue_seconds,
            "retry_transport_errors": self.retry_transport_errors,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


@dataclass
class QueuedDelivery:
    """One message waiting in the queue for its next delivery attempt.

    ``mode`` records how the original attempt was routed — ``"mx"``
    (normal resolution) or ``"ip"`` (direct-to-VPS) — so the retry
    replays the same path.  ``context`` carries the caller's opaque
    handle (the runner stores its :class:`SendRequest` there).
    """

    message: EmailMessage
    recipient: str
    mode: str                       # "mx" | "ip"
    port: int
    first_timestamp: float
    next_attempt: float
    attempts_made: int = 1
    ip: Optional[str] = None
    context: object = None
    sequence: int = 0
    last_status: Optional[SendStatus] = None


@dataclass
class RetryQueueStats:
    enqueued: int = 0
    retry_attempts: int = 0
    recovered: int = 0
    gave_up: int = 0
    dsn_sent: int = 0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "retry_attempts": self.retry_attempts,
            "recovered": self.recovered,
            "gave_up": self.gave_up,
            "dsn_sent": self.dsn_sent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryQueueStats":
        return cls(**data)


class RetryQueue:
    """Deterministic deferred-delivery queue for one sending MTA."""

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 reporting_host: str = "client.example.org") -> None:
        self.policy = policy or RetryPolicy()
        self.reporting_host = reporting_host
        self.stats = RetryQueueStats()
        #: give-up DSNs, in generation order (returned to the original
        #: envelope sender — they never enter the collection corpus)
        self.dsn_messages: List[EmailMessage] = []
        self._pending: List[QueuedDelivery] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._pending)

    # -- enqueue -------------------------------------------------------------

    def offer(self, message: EmailMessage, recipient: str,
              result: SendResult, timestamp: float, mode: str = "mx",
              port: int = 25, ip: Optional[str] = None,
              context: object = None) -> bool:
        """Queue a failed first attempt if its status is retryable.

        Returns True when the message was queued; False when the result
        is not one this policy retries (the caller keeps its existing
        handling for those).
        """
        if not self.policy.retries(result.status):
            return False
        self._sequence += 1
        job = QueuedDelivery(
            message=message, recipient=recipient, mode=mode, port=port,
            first_timestamp=timestamp,
            next_attempt=timestamp + self.policy.delay_for_attempt(1),
            attempts_made=1, ip=ip, context=context,
            sequence=self._sequence, last_status=result.status)
        self.stats.enqueued += 1
        self._pending.append(job)
        return True

    # -- drain ---------------------------------------------------------------

    def due(self, before: float) -> List[QueuedDelivery]:
        """Remove and return jobs due strictly before ``before``, ordered
        by ``(next_attempt, sequence)`` — the queue's deterministic clock.
        """
        ready = [job for job in self._pending if job.next_attempt < before]
        if not ready:
            return []
        ready.sort(key=lambda job: (job.next_attempt, job.sequence))
        self._pending = [job for job in self._pending
                         if job.next_attempt >= before]
        self.stats.retry_attempts += len(ready)
        return ready

    def settle(self, job: QueuedDelivery, result: SendResult,
               timestamp: float) -> Optional[EmailMessage]:
        """Fold a retry attempt's outcome back into the queue.

        Delivered → recovered; still-transient → requeue with backoff, or
        give up (DSN) past the policy's horizon; permanent failure → give
        up immediately.  Returns the DSN when one was generated.
        """
        job.attempts_made += 1
        job.last_status = result.status
        if result.status is SendStatus.DELIVERED:
            self.stats.recovered += 1
            return None
        if not self.policy.retries(result.status):
            return self._give_up(job, timestamp,
                                 diagnostic=_diagnostic(result))
        age = timestamp - job.first_timestamp
        if (job.attempts_made >= self.policy.max_attempts
                or age >= self.policy.max_queue_seconds):
            return self._give_up(job, timestamp,
                                 diagnostic=_diagnostic(result))
        job.next_attempt = timestamp + self.policy.delay_for_attempt(
            job.attempts_made)
        self._pending.append(job)
        return None

    def expire_remaining(self, timestamp: float) -> List[EmailMessage]:
        """Give up on everything still queued (e.g. at window end)."""
        remaining = sorted(self._pending,
                           key=lambda job: (job.next_attempt, job.sequence))
        self._pending = []
        dsns = []
        for job in remaining:
            dsn = self._give_up(job, timestamp,
                                diagnostic="451 4.4.7 queue lifetime "
                                           "exceeded at window end")
            if dsn is not None:
                dsns.append(dsn)
        return dsns

    # -- canonical persistence (the study checkpoint's queue payload) --------

    def to_canonical_dict(self) -> dict:
        """Everything a resumed run needs to continue this queue exactly.

        Jobs serialise with their full backoff position (``next_attempt``,
        ``attempts_made``, ``first_timestamp``) so restored mail retries
        on the original schedule, and DSNs already sent ride along so a
        resume never bounces the same message twice.  ``job.context`` is
        the caller's opaque live handle and is deliberately dropped — no
        retry-path code reads it.
        """
        return {
            "policy": self.policy.to_dict(),
            "reporting_host": self.reporting_host,
            "stats": self.stats.as_dict(),
            "sequence": self._sequence,
            "dsn_messages": [m.to_canonical_dict()
                             for m in self.dsn_messages],
            "pending": [
                {"message": job.message.to_canonical_dict(),
                 "recipient": job.recipient,
                 "mode": job.mode,
                 "port": job.port,
                 "first_timestamp": job.first_timestamp,
                 "next_attempt": job.next_attempt,
                 "attempts_made": job.attempts_made,
                 "ip": job.ip,
                 "sequence": job.sequence,
                 "last_status": (job.last_status.value
                                 if job.last_status is not None else None)}
                for job in self._pending],
        }

    @classmethod
    def from_canonical_dict(cls, data: dict) -> "RetryQueue":
        """Rebuild a queue whose future behaviour matches the original's."""
        queue = cls(policy=RetryPolicy.from_dict(data["policy"]),
                    reporting_host=data["reporting_host"])
        queue.stats = RetryQueueStats.from_dict(data["stats"])
        queue._sequence = data["sequence"]
        queue.dsn_messages = [EmailMessage.from_canonical_dict(entry)
                              for entry in data["dsn_messages"]]
        for entry in data["pending"]:
            status = entry["last_status"]
            queue._pending.append(QueuedDelivery(
                message=EmailMessage.from_canonical_dict(entry["message"]),
                recipient=entry["recipient"],
                mode=entry["mode"],
                port=entry["port"],
                first_timestamp=entry["first_timestamp"],
                next_attempt=entry["next_attempt"],
                attempts_made=entry["attempts_made"],
                ip=entry["ip"],
                sequence=entry["sequence"],
                last_status=SendStatus(status) if status is not None
                else None))
        return queue

    # -- internals -----------------------------------------------------------

    def _give_up(self, job: QueuedDelivery, timestamp: float,
                 diagnostic: str) -> Optional[EmailMessage]:
        self.stats.gave_up += 1
        if is_bounce_message(job.message):
            # null reverse-path (or MAILER-DAEMON sender): RFC 5321
            # forbids bouncing a bounce
            return None
        try:
            dsn = make_bounce_message(job.message, job.recipient,
                                      self.reporting_host,
                                      diagnostic=diagnostic,
                                      timestamp=timestamp)
        except ValueError:
            # no return path at all on the original
            return None
        self.stats.dsn_sent += 1
        self.dsn_messages.append(dsn)
        return dsn


def _diagnostic(result: SendResult) -> str:
    if result.last_reply is not None:
        return str(result.last_reply)
    return f"transient delivery failure ({result.status.value})"
