"""The sending side of the simulated SMTP world.

:class:`SmtpClient` performs a full delivery attempt the way an MTA does:
resolve the recipient domain's mail route (MX with implicit-MX fallback),
connect through the :class:`~repro.smtpsim.transport.Network`, and run the
SMTP dialogue.  The structured :class:`SendResult` distinguishes the error
classes that the paper's Table 5 tabulates for honey probes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.dnssim.resolver import ResolutionStatus, Resolver
from repro.smtpsim.message import EmailMessage, parse_address
from repro.smtpsim.protocol import SmtpReply, SmtpState
from repro.smtpsim.transport import ConnectOutcome, Network

__all__ = ["SendStatus", "SendResult", "SmtpClient"]


class SendStatus(enum.Enum):
    """Terminal outcome of a delivery attempt (Table 5's row labels)."""

    DELIVERED = "delivered"         # 250 after DATA — "No error"
    BOUNCED = "bounced"             # 5xx during the dialogue
    TEMPFAIL = "tempfail"           # 4yz — retry later (RFC 5321 §4.5.4.1)
    TIMEOUT = "timeout"
    NETWORK_ERROR = "network_error"
    OTHER_ERROR = "other_error"     # TLS failures, protocol violations
    NO_ROUTE = "no_route"           # NXDOMAIN or no MX/A at all

    @property
    def is_transient(self) -> bool:
        """Outcomes a real MTA would queue and retry rather than bounce."""
        return self in (SendStatus.TEMPFAIL, SendStatus.TIMEOUT,
                        SendStatus.NETWORK_ERROR)


@dataclass(frozen=True)
class SendResult:
    status: SendStatus
    recipient: str
    tried_ips: tuple = ()
    port: Optional[int] = None
    last_reply: Optional[SmtpReply] = None

    @property
    def accepted(self) -> bool:
        return self.status is SendStatus.DELIVERED


class SmtpClient:
    """A minimal MTA: one message, one recipient, full MX logic.

    ``helo_hostname`` is presented in HELO and is stamped by the receiving
    server into the Received header — which is how the collection
    infrastructure later checks header consistency.
    """

    def __init__(self, resolver: Resolver, network: Network,
                 helo_hostname: str = "client.example.org") -> None:
        self._resolver = resolver
        self._network = network
        self.helo_hostname = helo_hostname

    def send(self, message: EmailMessage, recipient: Optional[str] = None,
             port: int = 25, timestamp: float = 0.0) -> SendResult:
        """Attempt delivery; tries each resolved address until one connects."""
        if recipient is None:
            to_header = message.recipient
            if to_header is None:
                raise ValueError("message has no To header and no explicit recipient")
            recipient = to_header.bare
        domain = parse_address(recipient).domain

        route = self._resolver.mail_route(domain)
        if route.status in (ResolutionStatus.SERVFAIL,
                            ResolutionStatus.TIMEOUT):
            # a transient resolver failure is retried, not bounced — real
            # MTAs queue on SERVFAIL exactly like on a 4yz reply
            return SendResult(SendStatus.TEMPFAIL, recipient)
        if route.status is ResolutionStatus.NXDOMAIN or not route.addresses:
            return SendResult(SendStatus.NO_ROUTE, recipient)

        tried: List[str] = []
        last_failure = SendStatus.NETWORK_ERROR
        for ip in route.addresses:
            tried.append(ip)
            connection = self._network.connect(ip, port=port)
            if connection.outcome is ConnectOutcome.TIMEOUT:
                last_failure = SendStatus.TIMEOUT
                continue
            if connection.outcome in (ConnectOutcome.NETWORK_ERROR,
                                      ConnectOutcome.REFUSED):
                last_failure = SendStatus.NETWORK_ERROR
                continue
            if connection.outcome is ConnectOutcome.OTHER_ERROR:
                last_failure = SendStatus.OTHER_ERROR
                continue

            result = self._dialogue(connection.server, message, recipient,
                                    timestamp)
            return SendResult(result[0], recipient, tuple(tried), port, result[1])

        return SendResult(last_failure, recipient, tuple(tried), port)

    def send_to_ip(self, message: EmailMessage, recipient: str, ip: str,
                   port: int = 25, timestamp: float = 0.0) -> SendResult:
        """Deliver to a specific server IP, bypassing MX resolution.

        This is how two traffic classes reach a typo domain's server: an
        SMTP-typo victim whose client is *configured* with the server's
        name (so the recipient's domain is irrelevant), and spammers who
        found the open port by scanning.
        """
        connection = self._network.connect(ip, port=port)
        if connection.outcome is ConnectOutcome.TIMEOUT:
            return SendResult(SendStatus.TIMEOUT, recipient, (ip,), port)
        if connection.outcome in (ConnectOutcome.NETWORK_ERROR,
                                  ConnectOutcome.REFUSED):
            return SendResult(SendStatus.NETWORK_ERROR, recipient, (ip,), port)
        if connection.outcome is ConnectOutcome.OTHER_ERROR:
            return SendResult(SendStatus.OTHER_ERROR, recipient, (ip,), port)
        status, reply = self._dialogue(connection.server, message, recipient,
                                       timestamp)
        return SendResult(status, recipient, (ip,), port, reply)

    # -- internals ----------------------------------------------------------

    def _dialogue(self, server, message: EmailMessage, recipient: str,
                  timestamp: float):
        session = server.open_session()
        session.banner()

        sender = message.envelope_from
        if sender is None:
            from_header = message.sender
            sender = from_header.bare if from_header else "nobody@invalid"

        for line in (f"EHLO {self.helo_hostname}",
                     f"MAIL FROM:<{sender}>",
                     f"RCPT TO:<{recipient}>"):
            reply = session.command(line)
            if not reply.is_success:
                session.command("QUIT")
                if reply.is_permanent_failure:
                    status = SendStatus.BOUNCED
                elif reply.is_transient_failure:
                    status = SendStatus.TEMPFAIL
                else:
                    status = SendStatus.OTHER_ERROR
                return status, reply

        reply = session.command("DATA")
        if reply.code != 354:
            session.command("QUIT")
            return SendStatus.OTHER_ERROR, reply

        reply = server.receive(session, message, timestamp=timestamp)
        session.command("QUIT")
        if reply.is_success:
            return SendStatus.DELIVERED, reply
        if reply.is_transient_failure:
            return SendStatus.TEMPFAIL, reply
        return SendStatus.BOUNCED, reply
