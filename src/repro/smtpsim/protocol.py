"""The SMTP protocol state machine (RFC 5321 subset).

Both the catch-all collection server and the honey-email sending client
speak through :class:`SmtpSession`, which enforces command ordering
(HELO before MAIL, MAIL before RCPT, RCPT before DATA) and produces the
standard three-digit reply codes.  Modelling the protocol rather than
passing messages around is what lets the honey experiment observe the
paper's error taxonomy (bounces vs. timeouts vs. network errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["SmtpReply", "SmtpState", "SmtpSession", "SMTP_PORTS", "RcptPolicy"]

#: Standard submission ports probed by the honey campaign: cleartext,
#: implicit TLS, and STARTTLS.
SMTP_PORTS = (25, 465, 587)


@dataclass(frozen=True)
class SmtpReply:
    code: int
    text: str

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 400

    @property
    def is_permanent_failure(self) -> bool:
        return 500 <= self.code < 600

    @property
    def is_transient_failure(self) -> bool:
        """RFC 5321 4yz: try again later (tempfail, greylisting, 421)."""
        return 400 <= self.code < 500

    def __str__(self) -> str:
        # replies are shared across sessions (see the reply caches below)
        # and each one is rendered into every transcript, so the wire
        # string is memoized per instance
        rendered = self.__dict__.get("_rendered")
        if rendered is None:
            rendered = f"{self.code} {self.text}"
            object.__setattr__(self, "_rendered", rendered)
        return rendered


class SmtpState(enum.Enum):
    """Phases of one SMTP conversation."""
    CONNECTED = "connected"     # banner sent, waiting for HELO/EHLO
    GREETED = "greeted"         # HELO done
    MAIL = "mail"               # MAIL FROM accepted
    RCPT = "rcpt"               # at least one RCPT TO accepted
    DATA = "data"               # in message body
    DONE = "done"               # message accepted
    CLOSED = "closed"


#: Decides whether a recipient is accepted: returns (accept, reply-text).
RcptPolicy = Callable[[str], Tuple[bool, str]]

# Shared instances of the fixed-text replies; SmtpReply is frozen, so the
# hot transaction path can reuse them instead of re-allocating per command.
# Hostname-dependent replies (banner, greeting, QUIT) are shared through
# a bounded cache keyed on their formatted inputs.
_HOST_REPLY_CACHE: dict = {}
_HOST_REPLY_CACHE_MAX = 1 << 15


def _store_host_reply(key, reply: "SmtpReply") -> "SmtpReply":
    if len(_HOST_REPLY_CACHE) >= _HOST_REPLY_CACHE_MAX:
        _HOST_REPLY_CACHE.clear()
    _HOST_REPLY_CACHE[key] = reply
    return reply


_REPLY_OK = SmtpReply(250, "OK")
_REPLY_DATA_GO = SmtpReply(354, "start mail input; end with <CRLF>.<CRLF>")
_REPLY_ACCEPTED = SmtpReply(250, "OK message accepted")
_REPLY_BAD_SEQUENCE = SmtpReply(503, "bad sequence of commands")
_REPLY_NOT_IMPLEMENTED = SmtpReply(502, "command not implemented")


def accept_all_policy(recipient: str) -> Tuple[bool, str]:
    """The study's catch-all policy: any user, any domain (paper §4.2.2)."""
    return True, "OK"


class SmtpSession:
    """Server-side SMTP conversation.

    Drive it with :meth:`command` calls and a final :meth:`data_payload`;
    the session records the envelope so the server can construct the
    received message.  STARTTLS is modelled as a capability flag that the
    ecosystem scanner reads; no actual cryptography is simulated.
    """

    def __init__(self, server_hostname: str,
                 rcpt_policy: RcptPolicy = accept_all_policy,
                 supports_starttls: bool = True,
                 starttls_broken: bool = False,
                 max_recipients: int = 100) -> None:
        self.server_hostname = server_hostname
        self.rcpt_policy = rcpt_policy
        self.supports_starttls = supports_starttls
        self.starttls_broken = starttls_broken
        self.max_recipients = max_recipients
        self.state = SmtpState.CONNECTED
        self.client_hostname: Optional[str] = None
        self.envelope_from: Optional[str] = None
        self.envelope_to: List[str] = []
        self.tls_active = False
        self.transcript: List[str] = []

    # -- banner -------------------------------------------------------------

    def banner(self) -> SmtpReply:
        """The 220 service-ready greeting that opens the conversation."""
        key = ("banner", self.server_hostname)
        reply = _HOST_REPLY_CACHE.get(key)
        if reply is None:
            reply = _store_host_reply(
                key, SmtpReply(220, f"{self.server_hostname} ESMTP ready"))
        return self._log(reply)

    # -- command dispatch -----------------------------------------------------

    #: verb -> unbound handler; class-level so dispatch costs one dict
    #: lookup per command instead of building the table per call
    _HANDLERS = {
        "HELO": "_helo",
        "EHLO": "_ehlo",
        "MAIL": "_mail",
        "RCPT": "_rcpt",
        "DATA": "_data",
        "RSET": "_rset",
        "NOOP": "_noop",
        "QUIT": "_quit",
        "STARTTLS": "_starttls",
    }

    def command(self, line: str) -> SmtpReply:
        """Dispatch one client command line and return the server reply."""
        if self.state is SmtpState.CLOSED:
            raise RuntimeError("session is closed")
        verb, _, argument = line.strip().partition(" ")
        # clients overwhelmingly send upper-case verbs already; only pay
        # for .upper() when the exact-match lookup misses
        handler_name = self._HANDLERS.get(verb) \
            or self._HANDLERS.get(verb.upper())
        if handler_name is None:
            return self._log(_REPLY_NOT_IMPLEMENTED)
        return self._log(getattr(self, handler_name)(argument.strip()))

    def data_payload(self, payload: str) -> SmtpReply:
        """Deliver the message body after a successful DATA command."""
        if self.state is not SmtpState.DATA:
            return self._log(_REPLY_BAD_SEQUENCE)
        self.state = SmtpState.DONE
        return self._log(_REPLY_ACCEPTED)

    # -- handlers --------------------------------------------------------------

    def _helo(self, argument: str) -> SmtpReply:
        if not argument:
            return SmtpReply(501, "syntax: HELO hostname")
        self.client_hostname = argument
        self.state = SmtpState.GREETED
        key = ("helo", self.server_hostname, argument)
        reply = _HOST_REPLY_CACHE.get(key)
        if reply is None:
            reply = _store_host_reply(key, SmtpReply(
                250, f"{self.server_hostname} greets {argument}"))
        return reply

    def _ehlo(self, argument: str) -> SmtpReply:
        reply = self._helo(argument)
        if reply.is_success and self.supports_starttls:
            key = ("ehlo", self.server_hostname, argument)
            extended = _HOST_REPLY_CACHE.get(key)
            if extended is None:
                extended = _store_host_reply(
                    key, SmtpReply(250, f"{reply.text}\nSTARTTLS"))
            return extended
        return reply

    def _starttls(self, argument: str) -> SmtpReply:
        if not self.supports_starttls:
            return SmtpReply(502, "STARTTLS not offered")
        if self.starttls_broken:
            return SmtpReply(454, "TLS not available due to temporary reason")
        if self.state is SmtpState.CONNECTED:
            return SmtpReply(503, "send EHLO first")
        self.tls_active = True
        return SmtpReply(220, "ready to start TLS")

    def _mail(self, argument: str) -> SmtpReply:
        if self.state not in (SmtpState.GREETED, SmtpState.DONE):
            return SmtpReply(503, "send HELO/EHLO first")
        address = _extract_path(argument, "FROM")
        if address is None:
            return SmtpReply(501, "syntax: MAIL FROM:<address>")
        self.envelope_from = address
        self.envelope_to = []
        self.state = SmtpState.MAIL
        return _REPLY_OK

    def _rcpt(self, argument: str) -> SmtpReply:
        if self.state not in (SmtpState.MAIL, SmtpState.RCPT):
            return SmtpReply(503, "need MAIL before RCPT")
        address = _extract_path(argument, "TO")
        if address is None:
            return SmtpReply(501, "syntax: RCPT TO:<address>")
        if len(self.envelope_to) >= self.max_recipients:
            return SmtpReply(452, "too many recipients")
        accepted, text = self.rcpt_policy(address)
        if not accepted:
            return SmtpReply(550, text or "mailbox unavailable")
        self.envelope_to.append(address)
        self.state = SmtpState.RCPT
        return _REPLY_OK if (not text or text == "OK") \
            else SmtpReply(250, text)

    def _data(self, argument: str) -> SmtpReply:
        if self.state is not SmtpState.RCPT:
            return SmtpReply(503, "need RCPT before DATA")
        self.state = SmtpState.DATA
        return _REPLY_DATA_GO

    def _rset(self, argument: str) -> SmtpReply:
        if self.state is not SmtpState.CONNECTED:
            self.state = SmtpState.GREETED
        self.envelope_from = None
        self.envelope_to = []
        return _REPLY_OK

    def _noop(self, argument: str) -> SmtpReply:
        return _REPLY_OK

    def _quit(self, argument: str) -> SmtpReply:
        self.state = SmtpState.CLOSED
        key = ("quit", self.server_hostname)
        reply = _HOST_REPLY_CACHE.get(key)
        if reply is None:
            reply = _store_host_reply(key, SmtpReply(
                221, f"{self.server_hostname} closing connection"))
        return reply

    def _log(self, reply: SmtpReply) -> SmtpReply:
        self.transcript.append(str(reply))
        return reply


def _extract_path(argument: str, keyword: str) -> Optional[str]:
    """Parse ``FROM:<a@b>`` / ``TO:<a@b>`` arguments; None on bad syntax."""
    prefix = argument[:len(keyword) + 1]
    # exact match first: only pay for case folding on the rare
    # lower/mixed-case client
    if prefix != keyword + ":" and prefix.upper() != keyword + ":":
        return None
    path = argument[len(keyword) + 1:].strip()
    if path.startswith("<") and path.endswith(">"):
        path = path[1:-1]
    if path == "":  # null reverse-path is legal for bounces
        return ""
    if "@" not in path:
        return None
    return path
