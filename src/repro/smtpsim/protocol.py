"""The SMTP protocol state machine (RFC 5321 subset).

Both the catch-all collection server and the honey-email sending client
speak through :class:`SmtpSession`, which enforces command ordering
(HELO before MAIL, MAIL before RCPT, RCPT before DATA) and produces the
standard three-digit reply codes.  Modelling the protocol rather than
passing messages around is what lets the honey experiment observe the
paper's error taxonomy (bounces vs. timeouts vs. network errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["SmtpReply", "SmtpState", "SmtpSession", "SMTP_PORTS", "RcptPolicy"]

#: Standard submission ports probed by the honey campaign: cleartext,
#: implicit TLS, and STARTTLS.
SMTP_PORTS = (25, 465, 587)


@dataclass(frozen=True)
class SmtpReply:
    code: int
    text: str

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 400

    @property
    def is_permanent_failure(self) -> bool:
        return 500 <= self.code < 600

    def __str__(self) -> str:
        return f"{self.code} {self.text}"


class SmtpState(enum.Enum):
    """Phases of one SMTP conversation."""
    CONNECTED = "connected"     # banner sent, waiting for HELO/EHLO
    GREETED = "greeted"         # HELO done
    MAIL = "mail"               # MAIL FROM accepted
    RCPT = "rcpt"               # at least one RCPT TO accepted
    DATA = "data"               # in message body
    DONE = "done"               # message accepted
    CLOSED = "closed"


#: Decides whether a recipient is accepted: returns (accept, reply-text).
RcptPolicy = Callable[[str], Tuple[bool, str]]


def accept_all_policy(recipient: str) -> Tuple[bool, str]:
    """The study's catch-all policy: any user, any domain (paper §4.2.2)."""
    return True, "OK"


class SmtpSession:
    """Server-side SMTP conversation.

    Drive it with :meth:`command` calls and a final :meth:`data_payload`;
    the session records the envelope so the server can construct the
    received message.  STARTTLS is modelled as a capability flag that the
    ecosystem scanner reads; no actual cryptography is simulated.
    """

    def __init__(self, server_hostname: str,
                 rcpt_policy: RcptPolicy = accept_all_policy,
                 supports_starttls: bool = True,
                 starttls_broken: bool = False,
                 max_recipients: int = 100) -> None:
        self.server_hostname = server_hostname
        self.rcpt_policy = rcpt_policy
        self.supports_starttls = supports_starttls
        self.starttls_broken = starttls_broken
        self.max_recipients = max_recipients
        self.state = SmtpState.CONNECTED
        self.client_hostname: Optional[str] = None
        self.envelope_from: Optional[str] = None
        self.envelope_to: List[str] = []
        self.tls_active = False
        self.transcript: List[str] = []

    # -- banner -------------------------------------------------------------

    def banner(self) -> SmtpReply:
        """The 220 service-ready greeting that opens the conversation."""
        return self._log(SmtpReply(220, f"{self.server_hostname} ESMTP ready"))

    # -- command dispatch -----------------------------------------------------

    def command(self, line: str) -> SmtpReply:
        """Dispatch one client command line and return the server reply."""
        if self.state is SmtpState.CLOSED:
            raise RuntimeError("session is closed")
        verb, _, argument = line.strip().partition(" ")
        verb = verb.upper()
        handler = {
            "HELO": self._helo,
            "EHLO": self._ehlo,
            "MAIL": self._mail,
            "RCPT": self._rcpt,
            "DATA": self._data,
            "RSET": self._rset,
            "NOOP": self._noop,
            "QUIT": self._quit,
            "STARTTLS": self._starttls,
        }.get(verb)
        if handler is None:
            return self._log(SmtpReply(502, "command not implemented"))
        return self._log(handler(argument.strip()))

    def data_payload(self, payload: str) -> SmtpReply:
        """Deliver the message body after a successful DATA command."""
        if self.state is not SmtpState.DATA:
            return self._log(SmtpReply(503, "bad sequence of commands"))
        self.state = SmtpState.DONE
        return self._log(SmtpReply(250, "OK message accepted"))

    # -- handlers --------------------------------------------------------------

    def _helo(self, argument: str) -> SmtpReply:
        if not argument:
            return SmtpReply(501, "syntax: HELO hostname")
        self.client_hostname = argument
        self.state = SmtpState.GREETED
        return SmtpReply(250, f"{self.server_hostname} greets {argument}")

    def _ehlo(self, argument: str) -> SmtpReply:
        reply = self._helo(argument)
        if reply.is_success and self.supports_starttls:
            return SmtpReply(250, f"{reply.text}\nSTARTTLS")
        return reply

    def _starttls(self, argument: str) -> SmtpReply:
        if not self.supports_starttls:
            return SmtpReply(502, "STARTTLS not offered")
        if self.starttls_broken:
            return SmtpReply(454, "TLS not available due to temporary reason")
        if self.state is SmtpState.CONNECTED:
            return SmtpReply(503, "send EHLO first")
        self.tls_active = True
        return SmtpReply(220, "ready to start TLS")

    def _mail(self, argument: str) -> SmtpReply:
        if self.state not in (SmtpState.GREETED, SmtpState.DONE):
            return SmtpReply(503, "send HELO/EHLO first")
        address = _extract_path(argument, "FROM")
        if address is None:
            return SmtpReply(501, "syntax: MAIL FROM:<address>")
        self.envelope_from = address
        self.envelope_to = []
        self.state = SmtpState.MAIL
        return SmtpReply(250, "OK")

    def _rcpt(self, argument: str) -> SmtpReply:
        if self.state not in (SmtpState.MAIL, SmtpState.RCPT):
            return SmtpReply(503, "need MAIL before RCPT")
        address = _extract_path(argument, "TO")
        if address is None:
            return SmtpReply(501, "syntax: RCPT TO:<address>")
        if len(self.envelope_to) >= self.max_recipients:
            return SmtpReply(452, "too many recipients")
        accepted, text = self.rcpt_policy(address)
        if not accepted:
            return SmtpReply(550, text or "mailbox unavailable")
        self.envelope_to.append(address)
        self.state = SmtpState.RCPT
        return SmtpReply(250, text or "OK")

    def _data(self, argument: str) -> SmtpReply:
        if self.state is not SmtpState.RCPT:
            return SmtpReply(503, "need RCPT before DATA")
        self.state = SmtpState.DATA
        return SmtpReply(354, "start mail input; end with <CRLF>.<CRLF>")

    def _rset(self, argument: str) -> SmtpReply:
        if self.state is not SmtpState.CONNECTED:
            self.state = SmtpState.GREETED
        self.envelope_from = None
        self.envelope_to = []
        return SmtpReply(250, "OK")

    def _noop(self, argument: str) -> SmtpReply:
        return SmtpReply(250, "OK")

    def _quit(self, argument: str) -> SmtpReply:
        self.state = SmtpState.CLOSED
        return SmtpReply(221, f"{self.server_hostname} closing connection")

    def _log(self, reply: SmtpReply) -> SmtpReply:
        self.transcript.append(str(reply))
        return reply


def _extract_path(argument: str, keyword: str) -> Optional[str]:
    """Parse ``FROM:<a@b>`` / ``TO:<a@b>`` arguments; None on bad syntax."""
    upper = argument.upper()
    if not upper.startswith(keyword + ":"):
        return None
    path = argument[len(keyword) + 1:].strip()
    if path.startswith("<") and path.endswith(">"):
        path = path[1:-1]
    if path == "":  # null reverse-path is legal for bounces
        return ""
    if "@" not in path:
        return None
    return path
