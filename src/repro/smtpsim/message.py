"""Email messages: RFC 5322-style headers, bodies, and MIME attachments.

The processing pipeline (tokenizer, text extraction, scrubber) and all five
spam-filter layers operate on these objects.  Messages render to and parse
from an RFC 5322-ish wire format so the collection infrastructure can
exercise real serialisation boundaries rather than passing Python objects
around.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Attachment", "EmailMessage", "Address", "parse_address"]

_ADDRESS_RE = re.compile(
    r"^(?:(?P<display>[^<>]*)<(?P<addr>[^<>@\s]+@[^<>@\s]+)>|(?P<bare>[^<>@\s]+@[^<>@\s]+))\s*$")


@dataclass(frozen=True)
class Address:
    """An email address split into local part and domain."""

    local: str
    domain: str
    display_name: str = ""

    def __str__(self) -> str:
        bare = f"{self.local}@{self.domain}"
        if self.display_name:
            return f"{self.display_name} <{bare}>"
        return bare

    @property
    def bare(self) -> str:
        return f"{self.local}@{self.domain}"


# Address is frozen, so parses can be shared; delivery re-parses the same
# sender/recipient strings constantly.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_MAX = 1 << 15


def parse_address(text: str) -> Address:
    """Parse ``user@dom`` or ``Display Name <user@dom>``."""
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        return cached
    match = _ADDRESS_RE.match(text.strip())
    if not match:
        raise ValueError(f"unparseable address {text!r}")
    raw = match.group("addr") or match.group("bare")
    display = (match.group("display") or "").strip()
    local, _, domain = raw.partition("@")
    address = Address(local=local, domain=domain.lower(), display_name=display)
    if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[text] = address
    return address


@dataclass(frozen=True)
class Attachment:
    """A MIME attachment.

    ``content`` is the already-decoded payload; for binary formats the
    simulated extraction layer understands, it is a structured text payload
    (see :mod:`repro.pipeline.extraction`).  ``sha256`` is computed lazily
    for the VirusTotal-style hash lookups in the attachment analysis.
    """

    filename: str
    content: bytes
    content_type: str = "application/octet-stream"

    @property
    def extension(self) -> str:
        name = self.filename.lower()
        if "." not in name:
            return ""
        return name.rsplit(".", 1)[1]

    @property
    def size(self) -> int:
        return len(self.content)

    def sha256(self) -> str:
        """SHA-256 hex digest of the payload (the VirusTotal-style key)."""
        import hashlib

        return hashlib.sha256(self.content).hexdigest()


@dataclass
class EmailMessage:
    """A mutable in-flight email.

    ``headers`` preserves insertion order and allows repeated fields
    (``Received`` chains); convenience accessors return the first value.
    ``envelope_*`` captures the SMTP envelope, which the paper's Layer-1
    filter compares against the header fields.
    """

    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: str = ""
    attachments: List[Attachment] = field(default_factory=list)
    envelope_from: Optional[str] = None
    envelope_to: List[str] = field(default_factory=list)
    #: IP of the SMTP server that relayed the message to the collector;
    #: how the study distinguishes SMTP-typo domains (one IP per domain).
    received_by_ip: Optional[str] = None
    #: simulation timestamp (seconds since collection epoch)
    received_at: float = 0.0
    #: monotone per-run send sequence stamped by the experiment runner;
    #: the attribution key that replaced ``id(message)`` (object ids are
    #: reused after GC, so they silently mis-attribute once the streaming
    #: classifier releases delivered messages).  Excluded from repr/eq so
    #: stamped and unstamped messages compare and digest identically.
    sequence: Optional[int] = field(default=None, repr=False, compare=False)

    # -- header helpers ----------------------------------------------------

    def get_header(self, name: str) -> Optional[str]:
        """First value of header ``name`` (case-insensitive), or None."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    def get_all_headers(self, name: str) -> List[str]:
        """Every value of header ``name``, in order."""
        wanted = name.lower()
        return [v for k, v in self.headers if k.lower() == wanted]

    def set_header(self, name: str, value: str) -> None:
        """Replace the first occurrence (or append when absent)."""
        wanted = name.lower()
        for i, (key, _) in enumerate(self.headers):
            if key.lower() == wanted:
                self.headers[i] = (name, value)
                return
        self.headers.append((name, value))

    def add_header(self, name: str, value: str) -> None:
        """Append a header field (repeats allowed, e.g. Received)."""
        self.headers.append((name, value))

    def has_header(self, name: str) -> bool:
        """Whether a header named ``name`` is present."""
        return self.get_header(name) is not None

    # -- common fields -----------------------------------------------------

    @property
    def sender(self) -> Optional[Address]:
        raw = self.get_header("From")
        if raw is None:
            return None
        try:
            return parse_address(raw)
        except ValueError:
            return None

    @property
    def recipient(self) -> Optional[Address]:
        raw = self.get_header("To")
        if raw is None:
            return None
        try:
            return parse_address(raw)
        except ValueError:
            return None

    @property
    def subject(self) -> str:
        return self.get_header("Subject") or ""

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, from_addr: str, to_addr: str, subject: str, body: str,
               attachments: Optional[List[Attachment]] = None,
               extra_headers: Optional[Dict[str, str]] = None) -> "EmailMessage":
        message = cls(body=body, attachments=list(attachments or []))
        message.add_header("From", from_addr)
        message.add_header("To", to_addr)
        message.add_header("Subject", subject)
        for key, value in (extra_headers or {}).items():
            message.add_header(key, value)
        message.envelope_from = parse_address(from_addr).bare
        message.envelope_to = [parse_address(to_addr).bare]
        return message

    # -- wire format ---------------------------------------------------------

    _BOUNDARY = "=_repro_boundary_="

    def to_wire(self) -> str:
        """Serialise to an RFC 5322-ish text blob with MIME attachments.

        Attachment payloads that survive a UTF-8 round trip travel as
        7bit text; anything else (true binary) is base64-encoded with a
        Content-Transfer-Encoding header, as real MIME requires.
        """
        lines = [f"{k}: {_fold(v)}" for k, v in self.headers]
        if not self.attachments:
            return "\r\n".join(lines) + "\r\n\r\n" + self.body

        lines.append(f"Content-Type: multipart/mixed; boundary=\"{self._BOUNDARY}\"")
        parts = ["\r\n".join(lines), ""]
        parts.append(f"--{self._BOUNDARY}")
        parts.append("Content-Type: text/plain")
        parts.append("")
        parts.append(self.body)
        for attachment in self.attachments:
            parts.append(f"--{self._BOUNDARY}")
            parts.append(f"Content-Type: {attachment.content_type}")
            parts.append(
                f"Content-Disposition: attachment; filename=\"{attachment.filename}\"")
            payload, encoding = _encode_payload(attachment.content)
            if encoding:
                parts.append(f"Content-Transfer-Encoding: {encoding}")
            parts.append("")
            parts.append(payload)
        parts.append(f"--{self._BOUNDARY}--")
        return "\r\n".join(parts)

    @classmethod
    def from_wire(cls, wire: str) -> "EmailMessage":
        """Parse a blob produced by :meth:`to_wire`."""
        head, _, rest = wire.partition("\r\n\r\n")
        message = cls()
        content_type = ""
        for line in head.split("\r\n"):
            if ": " not in line:
                continue
            key, _, value = line.partition(": ")
            value = value.replace("\r\n\t", " ")
            if key.lower() == "content-type" and "multipart/mixed" in value:
                content_type = value
                continue
            message.add_header(key, value)

        if not content_type:
            message.body = rest
            return message

        boundary = cls._BOUNDARY
        segments = rest.split(f"--{boundary}")
        for segment in segments:
            segment = segment.strip("\r\n")
            if not segment or segment == "--":
                continue
            part_head, _, part_body = segment.partition("\r\n\r\n")
            disposition = ""
            part_type = "text/plain"
            transfer_encoding = ""
            for line in part_head.split("\r\n"):
                lowered = line.lower()
                if lowered.startswith("content-disposition:"):
                    disposition = line.partition(":")[2].strip()
                elif lowered.startswith("content-type:"):
                    part_type = line.partition(":")[2].strip()
                elif lowered.startswith("content-transfer-encoding:"):
                    transfer_encoding = line.partition(":")[2].strip().lower()
            if "attachment" in disposition:
                match = re.search(r'filename="([^"]+)"', disposition)
                filename = match.group(1) if match else "unnamed"
                if transfer_encoding == "base64":
                    import base64

                    content = base64.b64decode(part_body)
                else:
                    content = part_body.encode("utf-8")
                message.attachments.append(Attachment(
                    filename=filename,
                    content=content,
                    content_type=part_type))
            else:
                message.body = part_body
        return message

    def size_bytes(self) -> int:
        """Size of the serialised message on the wire."""
        return len(self.to_wire().encode("utf-8", errors="replace"))

    # -- canonical dict (checkpoint/retry-queue persistence) -----------------

    def to_canonical_dict(self) -> Dict:
        """A JSON-ready dict covering *every* field, wire format included.

        :meth:`to_wire` cannot serve here: ``envelope_*``,
        ``received_by_ip``, ``received_at`` and ``sequence`` are fields,
        not headers, and a wire round trip would drop them.  Attachment
        payloads are base64 so arbitrary bytes survive JSON.
        """
        import base64

        return {
            "headers": [[key, value] for key, value in self.headers],
            "body": self.body,
            "attachments": [
                {"filename": a.filename,
                 "content": base64.b64encode(a.content).decode("ascii"),
                 "content_type": a.content_type}
                for a in self.attachments],
            "envelope_from": self.envelope_from,
            "envelope_to": list(self.envelope_to),
            "received_by_ip": self.received_by_ip,
            "received_at": self.received_at,
            "sequence": self.sequence,
        }

    @classmethod
    def from_canonical_dict(cls, data: Dict) -> "EmailMessage":
        """Rebuild a message that is value-identical to the serialised one."""
        import base64

        return cls(
            headers=[(key, value) for key, value in data["headers"]],
            body=data["body"],
            attachments=[
                Attachment(filename=entry["filename"],
                           content=base64.b64decode(entry["content"]),
                           content_type=entry["content_type"])
                for entry in data["attachments"]],
            envelope_from=data["envelope_from"],
            envelope_to=list(data["envelope_to"]),
            received_by_ip=data["received_by_ip"],
            received_at=data["received_at"],
            sequence=data["sequence"],
        )


def _fold(value: str) -> str:
    """Escape newlines in header values (simplified RFC 5322 folding)."""
    return value.replace("\r\n", " ").replace("\n", " ")


def _encode_payload(content: bytes) -> Tuple[str, str]:
    """(payload text, transfer encoding) for one attachment body.

    Text payloads travel verbatim; anything that does not survive a
    UTF-8 round trip — or that contains the MIME boundary or bare CRs —
    goes base64.
    """
    import base64

    try:
        text = content.decode("utf-8")
        if ("\r" not in text and EmailMessage._BOUNDARY not in text
                and text.encode("utf-8") == content):
            return text, ""
    except UnicodeDecodeError:
        pass
    return base64.b64encode(content).decode("ascii"), "base64"
