"""Bounded, content-keyed memo tables with hit/miss accounting.

The classification hot path keeps recomputing pure functions of message
text — lower-casing the subject+body for phrase scans, SHA-1 content
hashes, bag-of-words sets — and campaign spam repeats bodies verbatim
(~10x at study scale), so content-keyed tables convert most of that work
into dict hits.  The pattern already exists ad hoc in ``funnel.py`` and
``message.py``; this module centralises it and adds the accounting the
perf snapshot reports (``classify.text_cache_hits``), so the saved work
is measured rather than assumed.

Every memo here must cache a *pure* function of its key: staleness is
then impossible and process-wide sharing is safe (each worker process of
the parallel classify stage simply grows its own tables).  Tables are
size-bounded with clear-on-full semantics — the simplest policy that
cannot leak unboundedly, and the one the existing caches use.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["BoundedMemo", "iter_memos", "memo_stats", "memo_totals"]

#: default table bound, matching the existing _BODY_CACHE_MAX idiom
DEFAULT_MAX_ENTRIES = 1 << 15

#: every BoundedMemo registers itself here so perf reporting can walk
#: all tables without each call site threading references around
_MEMOS: Dict[str, "BoundedMemo"] = {}


class BoundedMemo:
    """One named, size-bounded memo table for a pure function of its key.

    The table itself is exposed as :attr:`table` so hot paths pay one
    dict lookup, not a method call::

        feats = MEMO.table.get(body)
        if feats is None:
            feats = _compute(body)
            MEMO.put(body, feats)      # counts the miss, bounds the table
        else:
            MEMO.hits += 1

    ``None`` is therefore not a cacheable value — wrap it if a memoised
    function can legitimately return it.
    """

    __slots__ = ("name", "max_entries", "hits", "misses", "table")

    def __init__(self, name: str,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if name in _MEMOS:
            raise ValueError(f"duplicate memo name {name!r}")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.table: Dict = {}
        _MEMOS[name] = self

    def put(self, key, value) -> None:
        """Record a miss and store ``value``, clearing the table if full."""
        self.misses += 1
        if len(self.table) >= self.max_entries:
            self.table.clear()
        self.table[key] = value

    def clear(self) -> None:
        """Drop all entries (counters are preserved — they are totals)."""
        self.table.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self.table)}


def iter_memos() -> Iterator["BoundedMemo"]:
    """All registered memos, in registration order."""
    return iter(_MEMOS.values())


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Per-memo ``{name: {hits, misses, entries}}`` snapshot."""
    return {name: memo.stats() for name, memo in _MEMOS.items()}


def memo_totals() -> Tuple[int, int]:
    """Process-wide ``(hits, misses)`` across every registered memo.

    Callers that want per-run numbers (e.g. the classify phase's
    ``text_cache_hits`` counter) snapshot this before and after and
    report the delta.
    """
    hits = misses = 0
    for memo in _MEMOS.values():
        hits += memo.hits
        misses += memo.misses
    return hits, misses
