"""Lightweight performance instrumentation: timers and counters.

The study harness is a simulation, so "how fast is it" is a first-class
reproduction artifact: the perf registry collects per-subsystem wall-clock
timers (context managers around each phase) and monotonically increasing
call/byte counters, and snapshots them into plain dicts that ride along on
:class:`~repro.experiment.runner.StudyResults` and in ``BENCH_perf.json``.

Everything here is deliberately dependency-free and picklable so the
parallel study engine can ship snapshots across process boundaries.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

__all__ = ["TimerStat", "PerfRegistry", "paused_gc", "throughput"]


@dataclass
class TimerStat:
    """Accumulated wall-clock for one named timer."""

    calls: int = 0
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "seconds": self.seconds}


@dataclass
class PerfRegistry:
    """Named timers + counters for one run (or one subsystem).

    ``timer`` nests and re-enters freely; ``count`` accumulates integers
    (calls, emails, bytes).  ``snapshot`` returns plain nested dicts so
    results stay picklable and JSON-serialisable.
    """

    timers: Dict[str, TimerStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.calls += 1
            stat.seconds += elapsed

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_seconds(self, name: str, seconds: float,
                    calls: int = 1) -> None:
        """Fold externally measured wall-clock into timer ``name``.

        The parallel classify stage times its work inside worker
        processes and ships the seconds back; this folds them into the
        same timer namespace the inline path uses.
        """
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.calls += calls
        stat.seconds += seconds

    def seconds(self, name: str) -> float:
        """Accumulated seconds under timer ``name`` (0.0 when unused)."""
        stat = self.timers.get(name)
        return stat.seconds if stat is not None else 0.0

    def merge(self, other: "PerfRegistry") -> None:
        """Fold another registry's timers/counters into this one."""
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStat()
            mine.calls += stat.calls
            mine.seconds += stat.seconds
        for name, amount in other.counters.items():
            self.count(name, amount)

    def snapshot(self, extra: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        """Plain-dict view: ``{"timers": ..., "counters": ..., **extra}``."""
        out: Dict[str, Any] = {
            "timers": {name: stat.as_dict()
                       for name, stat in self.timers.items()},
            "counters": dict(self.counters),
        }
        if extra:
            out.update(extra)
        return out


@contextmanager
def paused_gc() -> Iterator[None]:
    """Suspend the cyclic garbage collector for a bulk-allocation phase.

    Classifying a paper-scale corpus allocates millions of small objects
    into a steadily growing live set; each generation-0 collection then
    rescans survivors for cycles that never exist (records, summaries and
    tokenised emails are all acyclic, so refcounting already frees every
    dead object).  Pausing collection for the phase removes that rescan
    tax — measured ~35% of classify wall-clock at 10x study scale.
    Re-enables only if the collector was enabled on entry, so nesting and
    caller-level ``gc.disable()`` are both safe.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def throughput(count: int, seconds: float) -> float:
    """Events per second, 0.0 when the denominator is degenerate."""
    if seconds <= 0:
        return 0.0
    return count / seconds
