"""Deterministic random-number utilities.

Every stochastic component in the reproduction draws randomness through a
:class:`SeededRng`, never through the global :mod:`random` state.  Child
generators are derived by name so that adding a new consumer of randomness
does not perturb the draws seen by existing consumers — a property the
end-to-end experiment tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["SeededRng", "derive_seed"]


def derive_seed(parent_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a label.

    The derivation hashes ``"{parent_seed}/{name}"`` with SHA-256, so child
    streams are statistically independent of each other and of the parent,
    and are stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{parent_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRng:
    """A named, seedable random source with convenience helpers.

    Wraps :class:`random.Random` rather than numpy so that cheap scalar
    draws stay cheap; callers needing vectorised draws can request a numpy
    generator via :meth:`numpy_rng`.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)
        #: children in creation order — the spine the durability layer
        #: walks to capture/restore a whole simulation's stream positions
        self._children: List["SeededRng"] = []

    def child(self, name: str) -> "SeededRng":
        """Return an independent child generator labelled ``name``.

        Every call creates a *fresh* stream (two ``child("x")`` calls are
        two generators at position zero — memoising here would change the
        draws existing consumers see); each is also recorded so
        :meth:`capture_state_tree` can reach it later.
        """
        born = SeededRng(derive_seed(self.seed, name),
                         name=f"{self.name}/{name}")
        self._children.append(born)
        return born

    # -- stream-position capture (the study checkpoint's RNG payload) ------

    def capture_state_tree(self) -> Dict:
        """JSON-serialisable snapshot of this stream and every descendant.

        ``random.Random.getstate()`` is a (version, ints, gauss_next)
        tuple, already JSON-friendly once listified.  The tree mirrors
        child *creation order*, so a resumed run that reconstructs the
        same object graph (same code path, same seeds) can put every
        stream back to its exact position with :meth:`restore_state_tree`.
        """
        version, internal, gauss_next = self._random.getstate()
        return {
            "name": self.name,
            "seed": self.seed,
            "state": [version, list(internal), gauss_next],
            "children": [child.capture_state_tree()
                         for child in self._children],
        }

    def restore_state_tree(self, data: Dict) -> None:
        """Restore a :meth:`capture_state_tree` snapshot onto this tree.

        The receiving tree must have the same shape (names, seeds, child
        order) as the captured one — i.e. be rebuilt by the same
        deterministic construction path; anything else is an error, not a
        silent divergence.
        """
        if data.get("name") != self.name or data.get("seed") != self.seed:
            raise ValueError(
                f"RNG state for {data.get('name')!r}/seed "
                f"{data.get('seed')!r} does not match stream "
                f"{self.name!r}/seed {self.seed!r}")
        children = data.get("children", [])
        if len(children) != len(self._children):
            raise ValueError(
                f"RNG stream {self.name!r} has {len(self._children)} "
                f"children, snapshot has {len(children)}")
        version, internal, gauss_next = data["state"]
        self._random.setstate((version, tuple(internal), gauss_next))
        for child, snapshot in zip(self._children, children):
            child.restore_state_tree(snapshot)

    # -- scalar draws -----------------------------------------------------

    def random(self) -> float:
        """Uniform draw in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform draw in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer draw, mirroring random.randint."""
        return self._random.randint(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw with mean mu and stddev sigma."""
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw with underlying normal (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def poisson(self, lam: float) -> int:
        """Poisson draw via inversion for small lambda, normal approx above.

        ``random.Random`` has no Poisson; this implementation is adequate
        for traffic simulation (lambda up to ~1e6).
        """
        if lam <= 0:
            return 0
        if lam < 30.0:
            # Knuth inversion.
            threshold = 2.718281828459045 ** (-lam)
            k = 0
            product = self._random.random()
            while product > threshold:
                k += 1
                product *= self._random.random()
            return k
        draw = self._random.gauss(lam, lam ** 0.5)
        return max(0, int(round(draw)))

    def bernoulli(self, p: float) -> bool:
        """True with probability p."""
        return self._random.random() < p

    # -- collection draws -------------------------------------------------

    def choice(self, seq: Sequence[T]) -> T:
        """One uniformly-drawn element of seq."""
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Optional[Sequence[float]] = None,
                k: int = 1) -> List[T]:
        """k draws with replacement, optionally weighted."""
        return self._random.choices(seq, weights=weights, k=k)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """k distinct elements drawn without replacement."""
        return self._random.sample(seq, k)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle items in place."""
        self._random.shuffle(items)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """A shuffled copy; the input is left untouched."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Draw an index proportionally to ``weights`` (need not sum to 1)."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have a positive sum")
        point = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if point < acc:
                return i
        return len(weights) - 1

    # -- strings ----------------------------------------------------------

    _ALNUM = "abcdefghijklmnopqrstuvwxyz0123456789"

    def token(self, length: int = 12, alphabet: str = _ALNUM) -> str:
        """A random lowercase-alphanumeric token (usernames, ids, ...)."""
        choice = self._random.choice
        return "".join([choice(alphabet) for _ in range(length)])

    def numpy_rng(self):
        """A numpy Generator seeded from this source (lazy import)."""
        import numpy as np

        return np.random.default_rng(self._random.getrandbits(64))
