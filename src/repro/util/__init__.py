"""Shared utilities: deterministic randomness, simulated time, statistics."""

from repro.util.perf import PerfRegistry, TimerStat, throughput
from repro.util.rand import SeededRng, derive_seed
from repro.util.simtime import (
    CollectionWindow,
    SimClock,
    PAPER_COLLECTION_START,
    PAPER_COLLECTION_END,
    paper_window,
)
from repro.util.stats import (
    BinaryClassificationScores,
    cumulative_share,
    gini,
    mad,
    mad_outliers,
    mean_confidence_interval,
    median,
    score_binary,
)

__all__ = [
    "SeededRng",
    "derive_seed",
    "PerfRegistry",
    "TimerStat",
    "throughput",
    "SimClock",
    "CollectionWindow",
    "paper_window",
    "PAPER_COLLECTION_START",
    "PAPER_COLLECTION_END",
    "BinaryClassificationScores",
    "cumulative_share",
    "gini",
    "mad",
    "mad_outliers",
    "mean_confidence_interval",
    "median",
    "score_binary",
]
