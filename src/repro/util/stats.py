"""Small statistics helpers used throughout the analyses.

These implement exactly the statistical machinery the paper leans on:
median-absolute-deviation outlier detection (Rousseeuw & Hubert, cited for
removing accidentally-popular typo domains), normal-theory confidence
intervals for means, and precision/recall/F1 for the classifier tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "median",
    "mad",
    "mad_outliers",
    "mean_confidence_interval",
    "BinaryClassificationScores",
    "score_binary",
    "gini",
    "cumulative_share",
]


def median(values: Sequence[float]) -> float:
    """The middle value (mean of the middle two for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median of absolute deviations from the median (unscaled)."""
    centre = median(values)
    return median([abs(v - centre) for v in values])


def mad_outliers(values: Sequence[float], threshold: float = 3.5) -> List[int]:
    """Indices of MAD-based outliers.

    Uses the standard modified z-score 0.6745*(x - median)/MAD with the
    conventional 3.5 cutoff.  When the MAD is zero (over half the values
    identical) any value different from the median counts as an outlier,
    which matches the paper's intent of flagging typo domains with
    "outstanding traffic among typos of the same target".
    """
    if not values:
        return []
    centre = median(values)
    spread = mad(values)
    outliers: List[int] = []
    for i, v in enumerate(values):
        if spread == 0:
            if v != centre:
                outliers.append(i)
        else:
            if abs(0.6745 * (v - centre) / spread) > threshold:
                outliers.append(i)
    return outliers


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95) -> Tuple[float, float, float]:
    """(mean, low, high) normal-theory CI for the mean.

    Uses Student's t via scipy when available; falls back to the normal
    quantile for large n.  A single observation yields a degenerate CI.
    """
    n = len(values)
    if n == 0:
        raise ValueError("confidence interval of empty sequence")
    m = sum(values) / n
    if n == 1:
        return m, m, m
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    se = math.sqrt(var / n)
    try:
        from scipy import stats as _scipy_stats

        tval = float(_scipy_stats.t.ppf((1 + confidence) / 2.0, n - 1))
    except Exception:  # pragma: no cover - scipy is an install requirement
        tval = 1.96
    return m, m - tval * se, m + tval * se


@dataclass(frozen=True)
class BinaryClassificationScores:
    """Precision / recall(sensitivity) / F1 with raw confusion counts."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else float("nan")

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else float("nan")

    #: The paper calls recall "sensitivity" in Table 2.
    sensitivity = recall

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if math.isnan(p) or math.isnan(r) or (p + r) == 0:
            return float("nan")
        return 2 * p * r / (p + r)


def score_binary(predicted: Sequence[bool],
                 actual: Sequence[bool]) -> BinaryClassificationScores:
    """Confusion counts for a predicted-vs-actual boolean labelling."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have equal length")
    tp = fp = fn = tn = 0
    for p, a in zip(predicted, actual):
        if p and a:
            tp += 1
        elif p and not a:
            fp += 1
        elif not p and a:
            fn += 1
        else:
            tn += 1
    return BinaryClassificationScores(tp, fp, fn, tn)


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (concentration)."""
    vals = sorted(float(v) for v in values)
    n = len(vals)
    if n == 0:
        raise ValueError("gini of empty sequence")
    total = sum(vals)
    if total == 0:
        return 0.0
    cum = 0.0
    weighted = 0.0
    for i, v in enumerate(vals, start=1):
        cum += v
        weighted += i * v
    return (2 * weighted) / (n * total) - (n + 1) / n


def cumulative_share(counts: Sequence[float]) -> List[float]:
    """Cumulative share of the total, with counts sorted descending.

    This is exactly the curve in the paper's Figures 5 and 8: order the
    entities (domains, registrants, mail servers) by count descending and
    plot the running fraction of the total.
    """
    ordered = sorted((float(c) for c in counts), reverse=True)
    total = sum(ordered)
    if total == 0:
        return [0.0 for _ in ordered]
    out: List[float] = []
    running = 0.0
    for c in ordered:
        running += c
        out.append(running / total)
    return out
