"""Process-pool fan-out primitives shared by the experiment drivers.

Historically this lived in :mod:`repro.experiment.parallel`, but that
module imports the study runner (it projects live results into picklable
samples), so anything the runner itself wants to fan out — the two-stage
classify pipeline — would create an import cycle.  The pool machinery is
runner-agnostic, so it lives here; ``experiment.parallel`` re-exports it
under the old names.

The key behaviours, unchanged from their previous home:

* serial when ``jobs`` is ``None``/``<=1`` (or there is nothing to fan
  out), with outputs identical to the pooled path;
* *loud* degradation when the pool itself is unusable (unpicklable work,
  sandboxed interpreter without worker processes): a RuntimeWarning, a
  bump of the process-wide :func:`pool_fallback_count`, and — when a
  perf registry is passed — the ``parallel.pool_fallback`` counter;
* exceptions raised by the mapped function propagate unchanged in both
  modes.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.util.perf import PerfRegistry

__all__ = ["parallel_map", "pool_fallback_count"]

T = TypeVar("T")
R = TypeVar("R")

#: process-wide count of pool-to-serial fallbacks (see parallel_map);
#: read through :func:`pool_fallback_count`
_pool_fallbacks = 0


def pool_fallback_count() -> int:
    """How many times parallel_map has degraded to serial this process."""
    return _pool_fallbacks


def _note_pool_fallback(error: BaseException,
                        perf: Optional[PerfRegistry]) -> None:
    """Make a pool-to-serial degradation visible instead of silent."""
    global _pool_fallbacks
    _pool_fallbacks += 1
    if perf is not None:
        perf.count("parallel.pool_fallback")
    warnings.warn(
        f"process pool unavailable ({type(error).__name__}: {error}); "
        "falling back to serial execution",
        RuntimeWarning, stacklevel=3)


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: Optional[int] = None,
                 perf: Optional[PerfRegistry] = None) -> List[R]:
    """Order-preserving map over worker processes, serial when ``jobs<=1``.

    Falls back to the serial path when the pool cannot be used at all
    (unpicklable work or a sandbox without worker processes); exceptions
    raised by ``fn`` itself propagate unchanged in both modes.  The
    fallback is *loud*: it emits a :class:`RuntimeWarning`, bumps the
    process-wide :func:`pool_fallback_count`, and — when a ``perf``
    registry is passed — the ``parallel.pool_fallback`` counter, so pool
    breakage shows up in perf snapshots rather than masquerading as a
    slow parallel run.
    """
    work = list(items)
    if jobs is None or jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            return list(pool.map(fn, work))
    except (pickle.PicklingError, AttributeError, BrokenProcessPool,
            OSError) as error:
        # AttributeError is how lambdas/closures fail to pickle; a real
        # AttributeError from ``fn`` re-raises identically on the serial
        # retry, so nothing is masked.
        _note_pool_fallback(error, perf)
        return [fn(item) for item in work]
