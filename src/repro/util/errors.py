"""Structured error taxonomy for the CLI and durability layer.

Long-running entry points fail in three operationally distinct ways, and
each deserves a distinct exit code instead of a traceback:

* **bad input** (exit 2) — a config or fault-plan file that cannot be
  parsed or validated; the user fixes the file and re-runs;
* **corrupt/mismatched checkpoint** (exit 3) — an on-disk artifact that
  is torn, truncated, or was written by a different run; the user
  deletes or replaces the artifact;
* **degraded run** (exit 4) — the run itself completed but lost work
  (e.g. scan shards exhausted their retries); the output names the
  holes and downstream automation must not treat it as complete.

``repro.cli.main`` catches :class:`ReproError` and maps
``error.exit_code`` to the process exit status with a one-line message;
everything outside the taxonomy still surfaces as a traceback, because
unknown failures should stay loud.
"""

from __future__ import annotations

__all__ = [
    "EXIT_BAD_INPUT",
    "EXIT_CORRUPT_CHECKPOINT",
    "EXIT_DEGRADED",
    "ReproError",
    "ConfigError",
    "PlanFileError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "DegradedRunError",
]

EXIT_BAD_INPUT = 2
EXIT_CORRUPT_CHECKPOINT = 3
EXIT_DEGRADED = 4


class ReproError(Exception):
    """Base of every error the CLI converts into an exit code."""

    exit_code = 1


class ConfigError(ReproError):
    """An invalid configuration value or combination (exit 2)."""

    exit_code = EXIT_BAD_INPUT


class PlanFileError(ConfigError):
    """A fault-plan file that is missing, unparseable, or invalid."""


class CheckpointError(ReproError):
    """Base for on-disk checkpoint problems (exit 3)."""

    exit_code = EXIT_CORRUPT_CHECKPOINT


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file that cannot be parsed or fails its digest.

    Torn writes (truncated JSON), manual edits, and schema drift all land
    here — the artifact is unusable and must be deleted or restored.
    """


class CheckpointMismatchError(CheckpointError):
    """A valid checkpoint written for a *different* run.

    Seed, universe size, config identity, or mode differ from the run
    trying to resume; resuming would silently mix two experiments.
    """


class DegradedRunError(ReproError):
    """The run completed but lost work it has explicitly named (exit 4)."""

    exit_code = EXIT_DEGRADED
