"""Simulated time.

The paper's collection ran June 4 2016 – January 15 2017.  All simulated
events are stamped with a :class:`SimClock` time rather than wall-clock
time, so runs are reproducible and can model the paper's collection gaps
(days the infrastructure was overwhelmed and recorded nothing).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterator, List, Set, Tuple

__all__ = [
    "SimClock",
    "CollectionWindow",
    "PAPER_COLLECTION_START",
    "PAPER_COLLECTION_END",
    "SECONDS_PER_DAY",
    "DAYS_PER_YEAR",
]

SECONDS_PER_DAY = 86_400
DAYS_PER_YEAR = 365

#: The paper's data collection window (Section 4).
PAPER_COLLECTION_START = _dt.datetime(2016, 6, 4)
PAPER_COLLECTION_END = _dt.datetime(2017, 1, 15)


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    Time is a float count of seconds since ``epoch``.  ``advance`` moves the
    clock forward; moving backwards raises, which catches event-ordering
    bugs in the traffic generators.
    """

    epoch: _dt.datetime = PAPER_COLLECTION_START
    _now: float = 0.0

    @property
    def now(self) -> float:
        """Seconds since the epoch."""
        return self._now

    @property
    def now_datetime(self) -> _dt.datetime:
        return self.epoch + _dt.timedelta(seconds=self._now)

    @property
    def day(self) -> int:
        """Whole days elapsed since the epoch (0-based)."""
        return int(self._now // SECONDS_PER_DAY)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; negative moves are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute timestamp, which must not be in the past."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards ({timestamp} < {self._now})")
        self._now = timestamp
        return self._now

    def timestamp_to_datetime(self, timestamp: float) -> _dt.datetime:
        """Convert a seconds-since-epoch timestamp to a datetime."""
        return self.epoch + _dt.timedelta(seconds=timestamp)


@dataclass
class CollectionWindow:
    """A measurement window with possible per-day outages.

    ``total_days`` is the full span; ``outage_days`` are day indices during
    which the collection infrastructure was down (the paper lost roughly two
    months of data to spam-induced crashes).  Yearly projection divides by
    *effective* days, exactly as the paper normalises: y = x * 365 / d.
    """

    total_days: int
    outage_days: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.total_days <= 0:
            raise ValueError("total_days must be positive")
        bad = [d for d in self.outage_days if d < 0 or d >= self.total_days]
        if bad:
            raise ValueError(f"outage days outside window: {bad}")

    @property
    def effective_days(self) -> int:
        return self.total_days - len(self.outage_days)

    def is_collecting(self, day: int) -> bool:
        """Whether data was being collected on day ``day``."""
        return 0 <= day < self.total_days and day not in self.outage_days

    def collecting_days(self) -> Iterator[int]:
        """Iterate the day indices on which collection was up."""
        for day in range(self.total_days):
            if day not in self.outage_days:
                yield day

    def yearly_projection(self, count: float) -> float:
        """Project a raw count to a full year: ``count * 365 / effective``."""
        if self.effective_days == 0:
            raise ValueError("window has no effective collection days")
        return count * DAYS_PER_YEAR / self.effective_days


def paper_window(outage_spans: Tuple[Tuple[int, int], ...] = ((75, 135),)) -> CollectionWindow:
    """The paper's ~225-day window with a default two-month outage.

    ``outage_spans`` is a tuple of half-open (start_day, end_day) spans.
    The default single span of 60 days mirrors the paper's report of losing
    about two months of data to crashes.
    """
    total = (PAPER_COLLECTION_END - PAPER_COLLECTION_START).days
    outages: List[int] = []
    for start, end in outage_spans:
        outages.extend(range(start, end))
    return CollectionWindow(total_days=total, outage_days=set(outages))
