"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``study``    — run the seven-month collection simulation (§4)
* ``scan``     — scan the wild ecosystem (§5, Table 4/Figure 8)
* ``honey``    — the honey-probe and honey-token experiments (§7)
* ``project``  — the regression projection (§6)
* ``typos``    — enumerate DL-1 typo candidates of a domain, with features
* ``check``    — the §8 defense: is this address a likely typo?
* ``doctor``   — validate on-disk artifacts (checkpoints, plans, baselines)
* ``serve-bench`` — benchmark the resident typo-risk query service
* ``train``    — fit the learned detector (both lanes) from the seed
* ``evaluate`` — Table-3-style learned vs. funnel comparison

Failures surface through the :mod:`repro.util.errors` taxonomy: exit 2
for bad input files, exit 3 for corrupt/mismatched checkpoints, exit 4
for degraded runs — one-line messages, never tracebacks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Email Typosquatting' (IMC 2017)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="root RNG seed (default: 2016)")
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the collection study")
    study.add_argument("--spam-scale", type=float, default=1e-4,
                       help="spam subsampling scale (default: 1e-4)")
    study.add_argument("--scale", type=float, default=1.0, metavar="X",
                       help="multiply the spam scale by X (paper-scale "
                            "studies: --scale 10 = 10x the spam volume)")
    study.add_argument("--no-outage", action="store_true",
                       help="disable the two-month collection outage")
    study.add_argument("--seeds", type=_seed_list, metavar="A,B,C",
                       help="run one study per seed (comma-separated) "
                            "instead of the single --seed run")
    study.add_argument("--jobs", type=int, metavar="N",
                       help="worker processes: one study per worker on "
                            "the multi-seed path, classify-stage workers "
                            "on the single-seed path (the record stream "
                            "is identical at any N)")
    study.add_argument("--streaming", action="store_true",
                       help="classify day-by-day inside the window loop "
                            "instead of batching at the end (same records)")
    study.add_argument("--bounded-memory", action="store_true",
                       help="with --streaming: release each delivered "
                            "message once its record is emitted and hand "
                            "records to a digest sink (prints counts + "
                            "multiset digest; skips the volume report)")
    study.add_argument("--detector", default="funnel",
                       choices=("funnel", "learned", "both"),
                       help="spam arm of the batch classification: the "
                            "rule funnel (default), the trained model, "
                            "or the union of the two")
    study.add_argument("--model", metavar="PATH",
                       help="repro-typo-model@1 artifact for "
                            "--detector learned/both (see `repro train`)")
    study.add_argument("--report", metavar="PATH",
                       help="write a Markdown report to PATH")
    study.add_argument("--export", metavar="DIR",
                       help="export per-figure CSV data into DIR")
    study.add_argument("--fault-plan", metavar="PATH",
                       help="inject the deterministic fault schedule from "
                            "this JSON file (see repro.faultsim)")
    study.add_argument("--chaos", action="store_true",
                       help="inject the built-in demo fault plan "
                            "(outages, DNS SERVFAIL spells, SMTP tempfail "
                            "+ greylisting), seeded from --seed")
    study.add_argument("--checkpoint", metavar="PATH",
                       help="persist full study state to PATH at day "
                            "boundaries; if PATH exists the run resumes "
                            "from it (kill-safe: the resumed record "
                            "stream is byte-identical)")
    study.add_argument("--resume", metavar="PATH",
                       help="like --checkpoint but PATH must already "
                            "hold a valid checkpoint (exit 3 otherwise)")
    study.add_argument("--checkpoint-interval", type=int, default=1,
                       metavar="DAYS",
                       help="write the checkpoint every DAYS simulated "
                            "days (default: 1)")
    study.add_argument("--scenario", metavar="PATH",
                       help="drive a repro-scenario@1 living-internet "
                            "timeline alongside the study (churn bursts, "
                            "adaptive squatter campaigns, defensive "
                            "registrations; retrain events run the drift "
                            "lifecycle under --detector learned/both)")
    study.add_argument("--model-dir", metavar="DIR",
                       help="directory for the drift lifecycle's "
                            "active/candidate/previous model artifacts "
                            "(default: <checkpoint>.models)")

    scan = commands.add_parser("scan", help="scan the wild ecosystem")
    scan.add_argument("--targets", type=int, default=40,
                      help="number of filler target domains (default: 40)")
    scan.add_argument("--ranks", type=int, metavar="N",
                      help="paper-scale streaming scan over the top-N "
                           "target ranks of the lazy world model (never "
                           "materializes the Internet)")
    scan.add_argument("--jobs", type=int, metavar="J",
                      help="worker processes for the --ranks scan "
                           "(1 = serial; the digest is identical)")
    scan.add_argument("--fault-plan", metavar="PATH",
                      help="inject worker crash/hang faults from this "
                           "JSON fault plan (--ranks scans only)")
    scan.add_argument("--chaos", action="store_true",
                      help="inject the built-in demo fault plan, seeded "
                           "from --seed (--ranks scans only)")
    scan.add_argument("--checkpoint", metavar="PATH",
                      help="persist completed shards to PATH and resume "
                           "from it on re-runs (--ranks scans only)")
    scan.add_argument("--days", type=int, default=0, metavar="D",
                      help="evolve the world by D days of registration/"
                           "expiration churn before scanning "
                           "(--ranks scans only; default: 0)")
    scan.add_argument("--churn-rate", type=float, default=0.004,
                      metavar="RATE",
                      help="fraction of ranks that churn per day "
                           "(default: 0.004)")
    scan.add_argument("--baseline", metavar="PATH",
                      help="persist the scan as a delta baseline at PATH "
                           "(per-rank-range sub-aggregates); with --delta, "
                           "load it and re-scan only churned ranges")
    scan.add_argument("--delta", action="store_true",
                      help="incremental re-scan against --baseline: reuse "
                           "every rank range whose world digest is "
                           "unchanged, rescan the rest, and rewrite the "
                           "baseline (byte-identical to a full scan)")
    scan.add_argument("--range-width", type=int, default=1024,
                      metavar="W",
                      help="ranks per persisted baseline range "
                           "(default: 1024)")

    honey = commands.add_parser("honey", help="run the honey experiments")
    honey.add_argument("--targets", type=int, default=40)

    project = commands.add_parser("project", help="run the §6 projection")
    project.add_argument("--targets", type=int, default=40)
    project.add_argument("--spam-scale", type=float, default=1e-4)

    typos = commands.add_parser("typos", help="enumerate typo candidates")
    typos.add_argument("domain", help="target domain, e.g. gmail.com")
    typos.add_argument("--fat-finger-only", action="store_true")
    typos.add_argument("--limit", type=int, default=20)

    check = commands.add_parser("check", help="typo-check an address/domain")
    check.add_argument("value", help="email address or bare domain")

    doctor = commands.add_parser(
        "doctor", help="validate on-disk artifacts (checkpoints, fault "
                       "plans, perf baselines)")
    doctor.add_argument("paths", nargs="+", metavar="FILE",
                        help="artifact files to examine")

    sweep = commands.add_parser(
        "sweep", help="multi-seed robustness sweep over headline numbers")
    sweep.add_argument("--seeds", type=int, nargs="+",
                       default=[1, 2, 3, 4, 5])
    sweep.add_argument("--spam-scale", type=float, default=2e-5)
    sweep.add_argument("--jobs", type=int, metavar="N",
                       help="worker processes (default: serial)")

    serve = commands.add_parser(
        "serve-bench",
        help="benchmark the resident typo-risk query service")
    serve.add_argument("--ranks", type=int, default=100_000, metavar="N",
                       help="world size: most-popular N domains are "
                            "targets (default: 100000)")
    serve.add_argument("--lookups", type=int, default=1_000_000,
                       metavar="N",
                       help="queries to serve and time (default: 1000000)")
    serve.add_argument("--pool-size", type=int, default=4096, metavar="N",
                       help="distinct queries per workload category "
                            "(default: 4096)")
    serve.add_argument("--no-warmup", action="store_true",
                       help="skip the warmup pass: measure the cold "
                            "memo instead of the warm steady state")
    serve.add_argument("--parity", type=int, default=0, metavar="N",
                       help="verify N distinct queries byte-identical "
                            "against the brute-force all-targets scan "
                            "(slow; default: 0)")
    serve.add_argument("--save-index", metavar="PATH",
                       help="persist the built index as a "
                            "repro-risk-index@1 artifact")
    serve.add_argument("--load-index", metavar="PATH",
                       help="serve from a persisted index artifact "
                            "instead of building one (overrides --ranks)")
    serve.add_argument("--bench-out", metavar="PATH",
                       help="record the run into this BENCH_perf.json's "
                            "query_service (or service_chaos) section")
    serve.add_argument("--chaos", action="store_true",
                       help="serve through the resilient layer under the "
                            "built-in service fault plan: stalls, index "
                            "errors, memory pressure, a mid-traffic churn "
                            "hot-swap")
    serve.add_argument("--fault-plan", metavar="PATH",
                       help="serve under the service spells of this fault "
                            "plan JSON (implies the resilient layer)")
    serve.add_argument("--score-mode", default="rules",
                       choices=("rules", "learned"),
                       help="layer-4 scorer: the kernel rules (default) "
                            "or the trained domain-lane model")
    serve.add_argument("--model", metavar="PATH",
                       help="repro-typo-model@1 artifact for "
                            "--score-mode learned")

    train = commands.add_parser(
        "train", help="train the learned typo detector (both lanes)")
    train.add_argument("--out", required=True, metavar="PATH",
                       help="write the repro-typo-model@1 artifact here")
    train.add_argument("--ranks", type=int, default=20_000, metavar="N",
                       help="domain-lane training sweep: most-popular N "
                            "targets (default: 20000)")
    train.add_argument("--dataset-size", type=int, default=1_500,
                       metavar="N",
                       help="messages per training corpus "
                            "(default: 1500)")
    train.add_argument("--jobs", type=int, metavar="J",
                       help="featurization worker processes (the model "
                            "is byte-identical at any J)")

    evaluate = commands.add_parser(
        "evaluate", help="Table-3-style learned vs. funnel comparison")
    evaluate.add_argument("--model", required=True, metavar="PATH",
                          help="repro-typo-model@1 artifact to evaluate")
    evaluate.add_argument("--dataset-size", type=int, default=2_000,
                          metavar="N",
                          help="messages per evaluation corpus "
                               "(default: 2000)")

    return parser


def _load_fault_plan(args: argparse.Namespace):
    """Resolve --fault-plan/--chaos into an Optional[FaultPlan].

    A missing, unparseable, or invalid plan file is a
    :class:`~repro.util.errors.PlanFileError` (exit 2, one-line
    message) — never a traceback.
    """
    from pathlib import Path

    from repro.faultsim import FaultPlan
    from repro.util.errors import PlanFileError

    if getattr(args, "fault_plan", None):
        path = Path(args.fault_plan)
        try:
            text = path.read_text()
        except OSError as error:
            raise PlanFileError(
                f"cannot read fault plan {path}: {error}") from error
        try:
            return FaultPlan.from_json(text)
        except (ValueError, TypeError, KeyError) as error:
            raise PlanFileError(
                f"invalid fault plan {path}: {error}") from error
    if getattr(args, "chaos", False):
        return FaultPlan.chaos_demo(args.seed)
    return None


def _seed_list(text: str) -> List[int]:
    """argparse type for ``--seeds 1,2,3``."""
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("expected at least one seed")
    return seeds


def main(argv: Optional[List[str]] = None) -> int:
    from repro.util.errors import ReproError

    args = build_parser().parse_args(argv)
    handler = {
        "study": _cmd_study,
        "scan": _cmd_scan,
        "honey": _cmd_honey,
        "project": _cmd_project,
        "typos": _cmd_typos,
        "check": _cmd_check,
        "sweep": _cmd_sweep,
        "doctor": _cmd_doctor,
        "serve-bench": _cmd_serve_bench,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        # the taxonomy's contract: one line on stderr, a meaningful
        # exit code, no traceback; anything else still fails loud
        print(f"error: {error}", file=sys.stderr)
        return error.exit_code
    except Exception as error:  # noqa: BLE001 — only the crash marker
        from repro.faultsim.plan import InjectedStudyCrash

        if isinstance(error, InjectedStudyCrash):
            # the faultsim's simulated kill: the checkpoint was forced
            # out before the raise, so the operator's next move is clear
            print(f"error: {error}; re-run with --resume to continue",
                  file=sys.stderr)
            return 1
        raise


# -- commands -----------------------------------------------------------------


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.analysis.volume import descaled_volume_report
    from repro.experiment import ExperimentConfig, StudyRunner

    plan = _load_fault_plan(args)
    if args.bounded_memory and not args.streaming:
        print("--bounded-memory requires --streaming", file=sys.stderr)
        return 2
    if args.bounded_memory and args.seeds:
        print("--bounded-memory needs a single-seed run", file=sys.stderr)
        return 2
    checkpoint_path = args.resume or args.checkpoint
    if checkpoint_path and args.seeds:
        print("--checkpoint/--resume need a single-seed run",
              file=sys.stderr)
        return 2
    if args.detector != "funnel":
        if args.streaming:
            print("--detector learned/both runs in the batch classifier; "
                  "drop --streaming", file=sys.stderr)
            return 2
        if not args.model:
            print(f"--detector {args.detector} requires --model PATH "
                  "(train one with `repro train`)", file=sys.stderr)
            return 2
    scenario = None
    if args.scenario:
        from repro.scenario.timeline import Scenario

        # Scenario.load speaks the error taxonomy: a torn file exits 3,
        # an unknown event kind exits 2 — both through the main handler
        scenario = Scenario.load(args.scenario)
        if args.seeds:
            print("--scenario needs a single-seed run", file=sys.stderr)
            return 2
        if any(event.retrain for event in scenario.events) \
                and args.detector == "funnel":
            print("this scenario schedules retrain events; run it with "
                  "--detector learned/both and --model PATH",
                  file=sys.stderr)
            return 2
    config = ExperimentConfig(
        seed=args.seed,
        spam_scale=args.spam_scale * args.scale,
        outage_spans=() if args.no_outage else ((75, 135),),
        fault_plan=plan,
        classify_jobs=args.jobs if not args.seeds else None,
        streaming_classify=args.streaming,
        retain_messages=not args.bounded_memory,
        detector=args.detector,
        model_path=args.model,
        scenario=scenario,
        model_dir=args.model_dir,
    )
    if args.seeds:
        return _cmd_study_multi(args, config)
    if plan is not None:
        print(f"fault plan active (digest sha256:{plan.digest()})",
              file=sys.stderr)
    if args.bounded_memory:
        return _cmd_study_bounded(args, config)
    print("running the collection study...", file=sys.stderr)
    results = StudyRunner(config).run(
        checkpoint_path=checkpoint_path,
        resume=bool(args.resume),
        checkpoint_interval=args.checkpoint_interval)
    smtp_domains = [d.domain for d in results.corpus.by_purpose("smtp")]
    report = descaled_volume_report(results.records, results.window,
                                    config.ham_scale, config.spam_scale,
                                    smtp_domains)
    correct, total = results.funnel_accuracy()
    print(f"collected {results.delivered_count} emails over "
          f"{results.window.effective_days} effective days")
    print(f"funnel/ground-truth agreement: {correct / total:.1%}")
    print(f"yearly total (descaled):      {report.total_received:,.0f}")
    print(f"yearly genuine typo emails:   {report.passed_all_filters:,.0f}")
    low, high = report.smtp_typo_range()
    print(f"yearly SMTP-typo band:        {low:,.0f} - {high:,.0f}")
    robustness = results.robustness
    if robustness is not None:
        if "faults" in robustness:
            faults = sum(robustness.get("faults", {}).values())
            retry = robustness.get("retry", {})
            coverage = robustness.get("collector", {})
            print(f"faults injected: {faults}; retry queue recovered "
                  f"{retry.get('recovered', 0)}/{retry.get('enqueued', 0)} "
                  f"(gave up {retry.get('gave_up', 0)}); collector down "
                  f"{len(coverage.get('gap_days', []))} days")
        durability = robustness.get("durability")
        if durability is not None:
            resumed = durability.get("resumed_from_day")
            print(f"durable run: {durability.get('checkpoints_written')} "
                  f"checkpoints written"
                  + (f", resumed from day {resumed}"
                     if resumed is not None else ""))
        timeline = robustness.get("scenario")
        if timeline is not None:
            line = (f"scenario {timeline.get('name')!r}: "
                    f"{timeline.get('days')} days, timeline digest "
                    f"{str(timeline.get('timeline_digest'))[:12]}")
            lifecycle = timeline.get("lifecycle")
            if lifecycle:
                actions = [entry["decision"]["action"]
                           for entry in lifecycle.get("events", [])]
                line += (f"; lifecycle: {', '.join(actions) or 'idle'}, "
                         f"active model "
                         f"{str(lifecycle.get('active_digest'))[:12]}")
            print(line)

    if args.report:
        from pathlib import Path

        from repro.report import render_study_report

        Path(args.report).write_text(render_study_report(results))
        print(f"report written to {args.report}")
    if args.export:
        from repro.report import export_figure_data

        written = export_figure_data(results, args.export)
        print(f"exported {len(written)} files to {args.export}")
    return 0


def _cmd_study_bounded(args: argparse.Namespace, config) -> int:
    """``study --streaming --bounded-memory``: records flow to a sink.

    Nothing accumulates — delivered messages are released as their
    records are emitted, and the sink keeps only counts plus an
    order-independent multiset digest, so the run is comparable against
    a batch run's ``record_multiset_digest`` without retaining either
    record stream.
    """
    from repro.experiment import RecordDigestSink, StudyRunner

    if args.report or args.export:
        print("--report/--export need a retaining run (drop "
              "--bounded-memory)", file=sys.stderr)
        return 2
    print("running the collection study (bounded memory)...",
          file=sys.stderr)
    sink = RecordDigestSink()
    results = StudyRunner(config).run(
        record_sink=sink,
        checkpoint_path=args.resume or args.checkpoint,
        resume=bool(args.resume),
        checkpoint_interval=args.checkpoint_interval)
    print(f"collected {results.delivered_count} emails over "
          f"{results.window.effective_days} effective days")
    print(f"records emitted:        {sink.count}")
    print(f"true typo records:      {sink.true_typo_count}")
    print(f"record multiset digest: {sink.digest()}")
    return 0


def _cmd_study_multi(args: argparse.Namespace, base_config) -> int:
    """``study --seeds a,b,c [--jobs N]``: one study per seed."""
    from dataclasses import replace

    from repro.analysis.volume import descaled_volume_report
    from repro.experiment import run_study_samples

    if args.report or args.export:
        print("--report/--export need a single-seed run", file=sys.stderr)
        return 2
    seeds = args.seeds
    jobs = args.jobs
    print(f"running the collection study under {len(seeds)} seeds"
          f"{f' ({jobs} workers)' if jobs and jobs > 1 else ''}...",
          file=sys.stderr)
    configs = [replace(base_config, seed=seed) for seed in seeds]
    samples = run_study_samples(configs, jobs=jobs)
    print(f"{'seed':>12s} {'delivered':>10s} {'funnel':>7s} "
          f"{'yearly typos':>13s} {'smtp band':>21s}")
    for config, sample in zip(configs, samples):
        smtp_domains = [d.domain for d in sample.corpus.by_purpose("smtp")]
        report = descaled_volume_report(list(sample.records), sample.window,
                                        config.ham_scale, config.spam_scale,
                                        smtp_domains)
        correct, total = sample.funnel_accuracy()
        low, high = report.smtp_typo_range()
        print(f"{sample.seed:>12d} {sample.delivered_count:>10d} "
              f"{correct / max(1, total):>6.1%} "
              f"{report.passed_all_filters:>13,.0f} "
              f"{f'{low:,.0f} - {high:,.0f}':>21s}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.ecosystem import (
        EcosystemScanner,
        InternetConfig,
        build_internet,
        cluster_registrants,
        concentration_curve,
        smallest_fraction_covering,
        top_share,
    )
    from repro.util import SeededRng

    if args.ranks:
        return _cmd_scan_streaming(args)

    print("building the simulated Internet...", file=sys.stderr)
    internet = build_internet(SeededRng(args.seed, name="world"),
                              InternetConfig(num_filler_targets=args.targets))
    scan = EcosystemScanner(internet).scan()
    print(f"{scan.generated_count} gtypos enumerated; "
          f"{scan.registered_count} registered ctypos")
    for support, percent in scan.support_percentages().items():
        print(f"  {support.value:25s} {percent:5.1f}%")
    clusters = cluster_registrants(
        internet.whois, [w.domain for w in internet.squatting_domains()])
    curve = concentration_curve([len(c) for c in clusters])
    print(f"top-14 registrants own {top_share(curve, 14):.1%}; "
          f"{smallest_fraction_covering(curve, 0.5):.1%} of registrants "
          "own the majority")
    return 0


def _print_scan_perf(perf) -> None:
    """Satellite perf report: per-phase scan timers, when collected."""
    names = ("scan.setup_seconds", "scan.draw_seconds",
             "scan.probe_seconds", "scan.merge_seconds",
             "scan.shard_setup_seconds", "scan.shard_work_seconds")
    shown = [(name, perf.timers[name]) for name in names
             if name in perf.timers]
    if not shown:
        return
    print("per-phase wall clock:", file=sys.stderr)
    for name, stat in shown:
        print(f"  {name:28s} {stat.seconds:9.3f}s "
              f"({stat.calls} call{'s' if stat.calls != 1 else ''})",
              file=sys.stderr)


def _cmd_scan_streaming(args: argparse.Namespace) -> int:
    """``repro scan --ranks N [--jobs J]``: the paper-scale lazy scan."""
    from repro.ecosystem import (
        ChurnSchedule,
        ScanBaseline,
        build_scan_baseline,
        delta_scan,
    )
    from repro.experiment import run_resilient_scan, run_sharded_scan
    from repro.util.perf import PerfRegistry

    jobs = args.jobs or 1
    plan = _load_fault_plan(args)
    if args.delta and not args.baseline:
        print("error: --delta requires --baseline PATH", file=sys.stderr)
        return 2
    if args.baseline and (plan is not None or args.checkpoint):
        print("error: --baseline/--delta cannot be combined with "
              "--fault-plan/--chaos/--checkpoint", file=sys.stderr)
        return 2
    if args.days and not args.baseline and (plan is not None
                                            or args.checkpoint):
        print("error: --days churn is not supported on fault-injected/"
              "checkpointed scans", file=sys.stderr)
        return 2
    perf = PerfRegistry()
    result = None
    if args.delta:
        baseline = ScanBaseline.load(args.baseline)
        if baseline.max_rank != args.ranks:
            print(f"error: baseline {args.baseline} covers ranks "
                  f"1..{baseline.max_rank}, not 1..{args.ranks}",
                  file=sys.stderr)
            return 2
        print(f"delta re-scan of ranks 1..{args.ranks} at churn day "
              f"{args.days} (baseline day {baseline.day}, {jobs} "
              f"job{'s' if jobs != 1 else ''})...", file=sys.stderr)
        delta = delta_scan(baseline, args.days, jobs=args.jobs, perf=perf)
        aggregates = delta.aggregates
        delta.baseline.save(args.baseline)
        print(f"reused {delta.ranges_reused} rank ranges, rescanned "
              f"{delta.ranges_rescanned}; baseline updated: "
              f"{args.baseline}", file=sys.stderr)
    elif args.baseline:
        print(f"streaming scan of ranks 1..{args.ranks} at churn day "
              f"{args.days} ({jobs} job{'s' if jobs != 1 else ''}), "
              f"building baseline...", file=sys.stderr)
        baseline = build_scan_baseline(
            args.seed, args.ranks, range_width=args.range_width,
            day=args.days, churn_rate=args.churn_rate, jobs=args.jobs,
            perf=perf)
        baseline.save(args.baseline)
        aggregates = baseline.total()
        print(f"baseline written: {args.baseline} "
              f"({len(baseline.ranges)} rank ranges)", file=sys.stderr)
    else:
        print(f"streaming scan of ranks 1..{args.ranks} "
              f"({jobs} job{'s' if jobs != 1 else ''})...", file=sys.stderr)
        if plan is not None or args.checkpoint:
            result = run_resilient_scan(args.seed, args.ranks,
                                        jobs=args.jobs, fault_plan=plan,
                                        checkpoint_path=args.checkpoint,
                                        perf=perf)
            aggregates = result.aggregates
            for line in result.summary_lines():
                print(line, file=sys.stderr)
        else:
            churn = ()
            if args.days:
                schedule = ChurnSchedule(args.seed, args.ranks,
                                         args.churn_rate)
                churn = tuple(sorted(
                    schedule.generations(args.days).items()))
            aggregates = run_sharded_scan(args.seed, args.ranks,
                                          jobs=args.jobs, churn=churn,
                                          perf=perf)
    print(f"{aggregates.generated_count} gtypos enumerated; "
          f"{aggregates.registered_count} registered ctypos")
    print("Table 4 — observed SMTP support:")
    for support, percent in aggregates.support_percentages().items():
        print(f"  {support.value:25s} {percent:5.1f}%")
    mx_total = sum(aggregates.mx_domain_counts.values())
    if mx_total:
        print("Table 6 — MX concentration (top 8 operator domains):")
        for host, count in aggregates.mx_domain_counts.most_common(8):
            print(f"  {host:25s} {count:8d}  {100.0 * count / mx_total:5.1f}%")
    print(f"aggregate digest: sha256:{aggregates.digest()}")
    _print_scan_perf(perf)
    if result is not None and result.degraded:
        from repro.util.errors import DegradedRunError

        ranges = ", ".join(f"[{start},{stop})" for start, stop
                           in result.unscanned_ranges)
        raise DegradedRunError(
            f"scan completed DEGRADED: rank ranges {ranges} were never "
            f"scanned (shards exhausted their retries); the aggregates "
            f"above are partial")
    return 0


def _cmd_honey(args: argparse.Namespace) -> int:
    from repro.ecosystem import EcosystemScanner, InternetConfig, build_internet
    from repro.honey import HoneyCampaign
    from repro.util import SeededRng

    rng = SeededRng(args.seed, name="honey-cli")
    internet = build_internet(rng.child("world"),
                              InternetConfig(num_filler_targets=args.targets))
    scan = EcosystemScanner(internet).scan()
    campaign = HoneyCampaign(internet, rng.child("campaign"))
    probe = campaign.run_probe_campaign(
        campaign.probe_targets_from_scan(scan))
    print(f"probed {probe.domains_probed} domains; "
          f"{len(probe.accepting_domains)} accepted")
    full = campaign.run_token_campaign(probe.accepting_domains)
    print(f"honey tokens: {full.emails_sent} sent, "
          f"{full.emails_accepted} accepted, {full.emails_opened} opened")
    print(f"domains with reads: {len(full.domains_read)}; "
          f"with bait access: {len(full.domains_acted)}")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.ecosystem import InternetConfig, build_internet
    from repro.experiment import ExperimentConfig, StudyRunner
    from repro.extrapolate import ProjectionExperiment, RegressionObservation
    from repro.extrapolate.projection import PROJECTION_TARGETS
    from repro.util import SeededRng

    print("running the study for seed measurements...", file=sys.stderr)
    config = ExperimentConfig(seed=args.seed, spam_scale=args.spam_scale)
    results = StudyRunner(config).run()
    volumes = results.per_domain_yearly_true_typos()

    internet = build_internet(SeededRng(args.seed, name="world"),
                              InternetConfig(num_filler_targets=args.targets))
    observations = []
    for domain in results.corpus.by_purpose("receiver"):
        if domain.target not in PROJECTION_TARGETS or domain.candidate is None:
            continue
        rank = internet.alexa_rank(domain.target)
        if rank is None:
            continue
        observations.append(RegressionObservation(
            domain=domain.domain, target=domain.target,
            yearly_emails=volumes.get(domain.domain, 0.0),
            alexa_rank=rank,
            normalized_visual=domain.candidate.normalized_visual,
            fat_finger=domain.candidate.is_fat_finger))

    experiment = ProjectionExperiment(internet,
                                      SeededRng(args.seed, name="proj"))
    report = experiment.run(observations,
                            exclude_domains=results.corpus.domain_names())
    for line in report.summary_lines():
        print(line)
    return 0


def _cmd_typos(args: argparse.Namespace) -> int:
    from repro.core import TypoGenerator

    generator = TypoGenerator(fat_finger_only=args.fat_finger_only)
    candidates = generator.generate(args.domain)
    candidates.sort(key=lambda c: c.visual)
    print(f"{len(candidates)} DL-1 candidates of {args.domain} "
          f"(showing {min(args.limit, len(candidates))}, most "
          "visually-confusable first)")
    print(f"{'domain':24s} {'edit':14s} {'ff':>3s} {'visual':>7s}")
    for candidate in candidates[:args.limit]:
        print(f"{candidate.domain:24s} {candidate.edit_type:14s} "
              f"{'y' if candidate.is_fat_finger else 'n':>3s} "
              f"{candidate.visual:7.2f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.defenses import TypoCorrector

    corrector = TypoCorrector()
    if "@" in args.value:
        suggestion = corrector.check_address(args.value)
    else:
        suggestion = corrector.check_domain(args.value)
    if suggestion is None:
        print(f"{args.value}: looks fine")
        return 0
    print(f"{args.value}: likely typo "
          f"(confidence {suggestion.confidence:.0%})")
    print(f"  {suggestion.render()}")
    return 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    """``repro doctor FILE...``: validate artifacts, worst finding wins."""
    from repro.doctor import diagnose_paths, exit_code_for

    diagnoses = diagnose_paths(args.paths)
    for diagnosis in diagnoses:
        print(diagnosis.summary_line())
        for problem in diagnosis.problems[1:]:
            print(f"       - {problem}")
    bad = [d for d in diagnoses if not d.ok]
    if bad:
        print(f"{len(bad)} of {len(diagnoses)} artifacts failed "
              f"validation", file=sys.stderr)
    return exit_code_for(diagnoses)


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """``repro serve-bench``: time the resident query service."""
    from repro.service import (RiskEngine, TypoRiskIndex, record_query_service,
                               run_serve_bench)

    if args.chaos or args.fault_plan:
        return _serve_bench_chaos(args)
    model = None
    if args.score_mode == "learned":
        from repro.learned.model import load_model
        from repro.util.errors import ConfigError

        if not args.model:
            raise ConfigError("--score-mode learned requires --model "
                              "PATH (train one with `repro train`)")
        model = load_model(args.model)
    engine = None
    if args.load_index:
        index = TypoRiskIndex.load(args.load_index)
        print(f"loaded index {args.load_index}: seed={index.seed} "
              f"ranks={index.max_rank} day={index.day}", file=sys.stderr)
    elif args.save_index:
        index = TypoRiskIndex(args.seed, args.ranks)
    else:
        index = None  # run_serve_bench builds (and times) its own
    if index is not None:
        engine = RiskEngine(
            index, max_cached_verdicts=max(1 << 15, 8 * args.pool_size),
            scorer=args.score_mode, model=model)
    result = run_serve_bench(
        args.seed, args.ranks, lookups=args.lookups,
        pool_size=args.pool_size, warmup=not args.no_warmup,
        parity=args.parity, engine=engine,
        score_mode=args.score_mode, model=model)
    for line in result.report_lines():
        print(line)
    if args.save_index:
        index.save(args.save_index)
        print(f"index saved to {args.save_index}", file=sys.stderr)
    if args.bench_out:
        record_query_service(result.entry(), args.bench_out)
        print(f"recorded query_service entry in {args.bench_out}",
              file=sys.stderr)
    return 0


def _serve_bench_chaos(args: argparse.Namespace) -> int:
    """``repro serve-bench --chaos/--fault-plan``: resilient serving.

    Runs the workload through the fault-injecting resilient layer and
    reports per-lane throughput/latency, shed/degraded/recovered
    counts, and the replay digest; ``--bench-out`` records the run into
    the ``service_chaos`` section.
    """
    from repro.faultsim import FaultPlan
    from repro.service import record_service_chaos, run_serve_chaos_bench
    from repro.util.errors import ConfigError

    if args.fault_plan:
        plan = _load_fault_plan(args)
    else:
        try:
            plan = FaultPlan.service_chaos_demo(args.seed,
                                                lookups=args.lookups)
        except ValueError as error:
            raise ConfigError(str(error)) from error
    result = run_serve_chaos_bench(
        args.seed, args.ranks, lookups=args.lookups,
        pool_size=args.pool_size, plan=plan)
    for line in result.report_lines():
        print(line)
    if args.bench_out:
        record_service_chaos(result.entry(), args.bench_out)
        print(f"recorded service_chaos entry in {args.bench_out}",
              file=sys.stderr)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: fit both lanes and persist the artifact."""
    from time import perf_counter

    from repro.learned import save_model, train_typo_model

    print(f"training the learned detector (seed={args.seed}, "
          f"ranks={args.ranks}, corpus={args.dataset_size}/profile)...",
          file=sys.stderr)
    start = perf_counter()
    model, stats = train_typo_model(
        args.seed, ranks=args.ranks, dataset_size=args.dataset_size,
        jobs=args.jobs)
    elapsed = perf_counter() - start
    digest = save_model(model, args.out)
    print(f"trained in {elapsed:.1f}s: domain lane on "
          f"{stats['domain_rows']:,} registered typos "
          f"({stats['domain_positives']:,} squatted), message lane on "
          f"{stats['message_rows']:,} emails "
          f"({stats['message_positives']:,} spam)")
    print(f"model written to {args.out} (digest sha256:{digest})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    """``repro evaluate``: the Table-3-style detector comparison."""
    from repro.learned import evaluate_model
    from repro.learned.model import load_model

    model = load_model(args.model)
    print(f"evaluating model sha256:{model.digest()[:12]}... "
          f"(train seed {model.seed}) against the rule funnel",
          file=sys.stderr)
    report = evaluate_model(model, args.seed,
                            dataset_size=args.dataset_size)
    print(report.format_table())
    print(f"metrics digest: sha256:{report.metrics_digest()}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiment import ExperimentConfig, run_seed_sweep

    print(f"running the study under {len(args.seeds)} seeds...",
          file=sys.stderr)
    summary = run_seed_sweep(
        args.seeds, base_config=ExperimentConfig(spam_scale=args.spam_scale),
        jobs=args.jobs)
    print(f"{'headline':34s} {'mean':>14s} {'95% CI':>30s}")
    for name, distribution in summary.headlines.items():
        ci = f"[{distribution.ci_low:,.0f}, {distribution.ci_high:,.0f}]"
        print(f"{name:34s} {distribution.mean:14,.0f} {ci:>30s}")
    accuracy_low = min(summary.funnel_accuracies)
    print(f"funnel accuracy across seeds: >= {accuracy_low:.1%}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
